//! # BTWC — Better Than Worst-Case decoding for quantum error correction
//!
//! A from-scratch Rust reproduction of *"Better Than Worst-Case Decoding
//! for Quantum Error Correction"* (ASPLOS 2023): a lightweight on-chip
//! **Clique** predecoder for surface codes that resolves the trivial,
//! over-90%-common-case error signatures at the cryogenic stage, statistical
//! provisioning of the off-chip decode link, and decode-overflow
//! execution stalling — together with every substrate the paper's
//! evaluation depends on (rotated surface codes, phenomenological noise,
//! an exact space-time MWPM baseline, AFS syndrome compression, and an
//! ERSFQ synthesis/cost flow).
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`lattice`] | Rotated surface code geometry, detector graphs, logical operators |
//! | [`noise`] | Phenomenological noise model, deterministic forkable RNG |
//! | [`syndrome`] | Word-packed syndrome rounds ([`syndrome::PackedBits`]), machine-wide transposed batches ([`syndrome::SyndromeBatch`]), sticky filtering, detection events, corrections |
//! | [`clique`] | The Clique decoder (paper contribution 1) |
//! | [`mwpm`] | Exact blossom matching (reusable decode scratch) + space-time MWPM baseline |
//! | [`sparse`] | Sparse-blossom off-chip decoder: region growth + per-cluster exact matching |
//! | [`afs`] | AFS sparse syndrome compression baseline |
//! | [`sfq`] | ERSFQ cell library, netlist synthesis, power/area/latency |
//! | [`bandwidth`] | Statistical link provisioning + overflow stalling (contributions 2–3) |
//! | [`sim`] | Allocation-free Monte Carlo lifetime / logical-error-rate engines |
//! | [`pool`] | Work-stealing thread pool with deterministic sharded map/reduce |
//! | [`core`] | The assembled BTWC pipeline and machine tier (`BtwcDecoder`, `BtwcMachine`, the `DecoderBackend` registry) |
//! | [`telemetry`] | Zero-cost-when-disabled metrics: deterministic cycle-domain counters/histograms/span timers, JSON snapshots |
//! | [`uf`] | Union-find decoder (the Sec. 8.1 hierarchical-decoding extension) |
//! | [`lut`] | Lookup-table decoder for small distances (LILLIPUT-style baseline) |
//!
//! ## Quickstart
//!
//! ```
//! use btwc::core::{BtwcDecoder, BtwcOutcome, StabilizerType, SurfaceCode};
//!
//! let code = SurfaceCode::new(5);
//! let mut decoder = BtwcDecoder::builder(&code, StabilizerType::X).build();
//! let mut errors = vec![false; code.num_data_qubits()];
//! errors[12] = true; // a single Z error on the central data qubit
//!
//! // Feed raw syndrome rounds; the two-round filter confirms, then
//! // Clique corrects on-chip without touching the off-chip link:
//! let round = code.syndrome_of(StabilizerType::X, &errors);
//! assert_eq!(decoder.process_round(&round), BtwcOutcome::Quiet);
//! match decoder.process_round(&round) {
//!     BtwcOutcome::OnChip(c) => c.apply_to(&mut errors),
//!     other => panic!("expected on-chip fix, got {other:?}"),
//! }
//! assert!(errors.iter().all(|&e| !e));
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the harness that regenerates every table and figure of the paper.

pub use btwc_afs as afs;
pub use btwc_bandwidth as bandwidth;
pub use btwc_clique as clique;
pub use btwc_core as core;
pub use btwc_lattice as lattice;
pub use btwc_lut as lut;
pub use btwc_mwpm as mwpm;
pub use btwc_noise as noise;
pub use btwc_pool as pool;
pub use btwc_sfq as sfq;
pub use btwc_sim as sim;
pub use btwc_sparse as sparse;
pub use btwc_syndrome as syndrome;
pub use btwc_telemetry as telemetry;
pub use btwc_uf as uf;
