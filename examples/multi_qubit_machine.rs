//! A whole machine: 32 logical qubits behind one provisioned off-chip
//! link, driven through the batched machine tier — packed
//! [`SyndromeBatch`] ingestion, one word-parallel sticky-filter pass
//! per cycle, every escalation framed as real wire bytes, and
//! decode-overflow stalling — with the off-chip backend picked from the
//! unified [`DecoderBackend`] registry.
//!
//! Run with: `cargo run --release --example multi_qubit_machine`

use btwc::bandwidth::IoModel;
use btwc::core::{BtwcMachine, DecoderBackend, StabilizerType, SurfaceCode, SyndromeBatch};
use btwc::noise::{NoiseModel, PhenomenologicalNoise, SimRng};

fn main() {
    let d = 7u16;
    let p = 5e-3;
    let num_qubits = 32;
    let bandwidth = 3; // decodes/cycle across the whole machine
    let cycles = 3_000;

    let code = SurfaceCode::new(d);
    let ty = StabilizerType::X;
    let mut machine = BtwcMachine::builder(&code, ty, num_qubits, bandwidth)
        .backend(DecoderBackend::SparseBlossom)
        .build();
    let noise = PhenomenologicalNoise::uniform(p);
    let mut rng = SimRng::from_seed(0xFEED);

    let mut errors = vec![vec![false; code.num_data_qubits()]; num_qubits];
    let mut meas = vec![false; code.num_ancillas(ty)];
    let mut batch = SyndromeBatch::new(num_qubits, code.num_ancillas(ty));
    let mut peak_requests = 0usize;

    for _ in 0..cycles {
        for (q, e) in errors.iter_mut().enumerate() {
            noise.sample_data_into(&mut rng, e);
            noise.sample_measurement_into(&mut rng, &mut meas);
            let mut round = code.syndrome_of(ty, e);
            for (r, &m) in round.iter_mut().zip(&meas) {
                *r ^= m;
            }
            batch.set_qubit_round_bools(q, &round);
        }
        let cycle = machine.step(&batch);
        peak_requests = peak_requests.max(cycle.offchip_requests);
        for (e, out) in errors.iter_mut().zip(&cycle.outcomes) {
            if let Some(c) = out.correction() {
                c.apply_to(e);
            }
        }
    }

    let stats = machine.stats();
    println!("machine : {num_qubits} logical qubits, d={d}, p={p:.0e}");
    println!("backend : {}", machine.backend_name());
    println!("link    : {bandwidth} decodes/cycle provisioned");
    println!("cycles  : {} total, {} stalls", stats.cycles, stats.stalls);
    println!("slowdown: {:.2}% execution-time increase", stats.execution_time_increase() * 100.0);
    println!(
        "off-chip: {} requests total, peak {} in one cycle, peak backlog {}",
        stats.offchip_requests, peak_requests, stats.peak_backlog
    );
    println!(
        "wire    : {} frame bytes total ({:.1} bytes/request)",
        stats.frame_bytes,
        stats.frame_bytes as f64 / (stats.offchip_requests.max(1)) as f64
    );
    println!("coverage: {:.2}% mean across qubits", machine.mean_coverage() * 100.0);

    let io = IoModel::for_distance(d);
    println!(
        "I/O     : {:.3} Gbps provisioned vs {:.2} Gbps unmitigated ({:.0}x reduction)",
        io.gbps(bandwidth as f64),
        io.full_stream_gbps(num_qubits),
        io.full_stream_gbps(num_qubits) / io.gbps(bandwidth as f64)
    );

    // Sanity: the machine is actually correcting — all syndromes drain
    // under a quiet tail.
    let mut residual = 0usize;
    for e in &errors {
        residual += code.syndrome_of(ty, e).iter().filter(|&&s| s).count();
    }
    println!("residual lit ancillas after run: {residual} (in-flight only)");
}
