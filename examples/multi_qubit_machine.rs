//! A whole machine: 32 logical qubits behind one provisioned off-chip
//! link, driven through the batched machine tier — packed
//! [`SyndromeBatch`] ingestion, one word-parallel sticky-filter pass
//! per cycle, every escalation framed as real wire bytes, and
//! decode-overflow stalling — with the off-chip backend picked from the
//! unified [`DecoderBackend`] registry.
//!
//! Run with: `cargo run --release --example multi_qubit_machine`
//!
//! With `BTWC_TELEMETRY=1` the run also attaches a
//! [`btwc::telemetry::MetricsRegistry`], prints the escalation-latency
//! percentiles it recorded, writes the cycle-domain snapshot to
//! `TELEMETRY_machine.json`, and re-reads that file to check it is
//! valid JSON carrying the expected `machine.*`/`sparse.*` metrics.

use btwc::bandwidth::IoModel;
use btwc::core::{BtwcMachine, DecoderBackend, StabilizerType, SurfaceCode, SyndromeBatch};
use btwc::noise::{NoiseModel, PhenomenologicalNoise, SimRng};
use btwc::telemetry::{Domain, MetricValue, MetricsRegistry};

/// Writes the cycle-domain snapshot next to `BENCH_decoders.json` and
/// proves the emitted file is machine-readable: it must parse as strict
/// JSON and contain every key a decode-farm dashboard would scrape.
fn export_and_check_snapshot(registry: &MetricsRegistry) {
    let path = "TELEMETRY_machine.json";
    let snapshot = registry.snapshot_domains(&[Domain::Cycles]);
    snapshot.write_json(path.as_ref()).expect("write telemetry snapshot");
    let raw = std::fs::read_to_string(path).expect("re-read telemetry snapshot");
    if let Err(e) = btwc::telemetry::json::validate(&raw) {
        panic!("{path} is not valid JSON: {e}");
    }
    for key in [
        "\"schema\":\"btwc-telemetry-v1\"",
        "\"machine.cycles\"",
        "\"machine.stall_cycles\"",
        "\"machine.offchip_requests\"",
        "\"machine.frame_bytes\"",
        "\"machine.queue_depth\"",
        "\"machine.escalation_latency_cycles\"",
        "\"machine.qubit_offchip_requests\"",
        "\"machine.qubit_stall_cycles\"",
        "\"sparse.clusters_solved\"",
        "\"sparse.stream.rebuilds\"",
    ] {
        assert!(raw.contains(key), "{path} is missing {key}");
    }
    println!("telemetry: wrote {path} ({} bytes, valid JSON, all keys present)", raw.len());
}

fn main() {
    let telemetry_on = std::env::var("BTWC_TELEMETRY").is_ok_and(|v| v == "1");
    let d = 7u16;
    let p = 5e-3;
    let num_qubits = 32;
    let bandwidth = 3; // decodes/cycle across the whole machine
    let cycles = 3_000;

    let code = SurfaceCode::new(d);
    let ty = StabilizerType::X;
    let registry = MetricsRegistry::new();
    let mut builder = BtwcMachine::builder(&code, ty, num_qubits, bandwidth)
        .backend(DecoderBackend::SparseBlossom);
    if telemetry_on {
        builder = builder.telemetry(&registry);
    }
    let mut machine = builder.build();
    let noise = PhenomenologicalNoise::uniform(p);
    let mut rng = SimRng::from_seed(0xFEED);

    let mut errors = vec![vec![false; code.num_data_qubits()]; num_qubits];
    let mut meas = vec![false; code.num_ancillas(ty)];
    let mut batch = SyndromeBatch::new(num_qubits, code.num_ancillas(ty));
    let mut peak_requests = 0usize;

    for _ in 0..cycles {
        for (q, e) in errors.iter_mut().enumerate() {
            noise.sample_data_into(&mut rng, e);
            noise.sample_measurement_into(&mut rng, &mut meas);
            let mut round = code.syndrome_of(ty, e);
            for (r, &m) in round.iter_mut().zip(&meas) {
                *r ^= m;
            }
            batch.set_qubit_round_bools(q, &round);
        }
        let cycle = machine.step(&batch);
        peak_requests = peak_requests.max(cycle.offchip_requests);
        for (e, out) in errors.iter_mut().zip(&cycle.outcomes) {
            if let Some(c) = out.correction() {
                c.apply_to(e);
            }
        }
    }

    let stats = machine.stats();
    println!("machine : {num_qubits} logical qubits, d={d}, p={p:.0e}");
    println!("backend : {}", machine.backend_name());
    println!("link    : {bandwidth} decodes/cycle provisioned");
    println!("cycles  : {} total, {} stalls", stats.cycles, stats.stalls);
    println!("slowdown: {:.2}% execution-time increase", stats.execution_time_increase() * 100.0);
    println!(
        "off-chip: {} requests total, peak {} in one cycle, peak backlog {}",
        stats.offchip_requests, peak_requests, stats.peak_backlog
    );
    println!(
        "wire    : {} frame bytes total ({:.1} bytes/request)",
        stats.frame_bytes,
        stats.frame_bytes as f64 / (stats.offchip_requests.max(1)) as f64
    );
    println!("coverage: {:.2}% mean across qubits", machine.mean_coverage() * 100.0);

    let io = IoModel::for_distance(d);
    println!(
        "I/O     : {:.3} Gbps provisioned vs {:.2} Gbps unmitigated ({:.0}x reduction)",
        io.gbps(bandwidth as f64),
        io.full_stream_gbps(num_qubits),
        io.full_stream_gbps(num_qubits) / io.gbps(bandwidth as f64)
    );

    if telemetry_on {
        let snap = registry.snapshot_domains(&[Domain::Cycles]);
        if let Some(MetricValue::Histogram { p50, p90, p99, .. }) =
            snap.get("machine.escalation_latency_cycles")
        {
            println!(
                "latency : escalation (syndrome arrival → correction commit) \
                 p50≤{p50} p90≤{p90} p99≤{p99} cycles"
            );
        }
        export_and_check_snapshot(&registry);
    }

    // Sanity: the machine is actually correcting — all syndromes drain
    // under a quiet tail.
    let mut residual = 0usize;
    for e in &errors {
        residual += code.syndrome_of(ty, e).iter().filter(|&&s| s).count();
    }
    println!("residual lit ancillas after run: {residual} (in-flight only)");
}
