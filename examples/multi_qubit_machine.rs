//! A whole machine: 32 logical qubits behind one provisioned off-chip
//! link, with decode-overflow stalling — the full Fig. 2 architecture
//! driven end to end, including the hierarchy ablation (MWPM vs
//! union-find as the heavyweight tier).
//!
//! Run with: `cargo run --release --example multi_qubit_machine`

use btwc::bandwidth::IoModel;
use btwc::core::{BtwcSystem, StabilizerType, SurfaceCode};
use btwc::noise::{NoiseModel, PhenomenologicalNoise, SimRng};

fn main() {
    let d = 7u16;
    let p = 5e-3;
    let num_qubits = 32;
    let bandwidth = 3; // decodes/cycle across the whole machine
    let cycles = 3_000;

    let code = SurfaceCode::new(d);
    let ty = StabilizerType::X;
    let mut system = BtwcSystem::new(&code, ty, num_qubits, bandwidth);
    let noise = PhenomenologicalNoise::uniform(p);
    let mut rng = SimRng::from_seed(0xFEED);

    let mut errors = vec![vec![false; code.num_data_qubits()]; num_qubits];
    let mut meas = vec![false; code.num_ancillas(ty)];
    let mut peak_requests = 0usize;

    for _ in 0..cycles {
        let rounds: Vec<Vec<bool>> = errors
            .iter_mut()
            .map(|e| {
                noise.sample_data_into(&mut rng, e);
                noise.sample_measurement_into(&mut rng, &mut meas);
                let mut round = code.syndrome_of(ty, e);
                for (r, &m) in round.iter_mut().zip(&meas) {
                    *r ^= m;
                }
                round
            })
            .collect();
        let cycle = system.step(&rounds);
        peak_requests = peak_requests.max(cycle.offchip_requests);
        for (e, out) in errors.iter_mut().zip(&cycle.outcomes) {
            if let Some(c) = out.correction() {
                c.apply_to(e);
            }
        }
    }

    let stats = system.stats();
    println!("machine: {num_qubits} logical qubits, d={d}, p={p:.0e}");
    println!("link   : {bandwidth} decodes/cycle provisioned");
    println!("cycles : {} total, {} stalls", stats.cycles, stats.stalls);
    println!("slowdown: {:.2}% execution-time increase", stats.execution_time_increase() * 100.0);
    println!(
        "off-chip: {} requests total, peak {} in one cycle",
        stats.offchip_requests, peak_requests
    );
    let mean_cov: f64 = (0..num_qubits).map(|q| system.decoder(q).stats().coverage()).sum::<f64>()
        / num_qubits as f64;
    println!("coverage: {:.2}% mean across qubits", mean_cov * 100.0);

    let io = IoModel::for_distance(d);
    println!(
        "I/O     : {:.3} Gbps provisioned vs {:.2} Gbps unmitigated ({:.0}x reduction)",
        io.gbps(bandwidth as f64),
        io.full_stream_gbps(num_qubits),
        io.full_stream_gbps(num_qubits) / io.gbps(bandwidth as f64)
    );

    // Sanity: the machine is actually correcting — all syndromes drain
    // under a quiet tail.
    let mut residual = 0usize;
    for e in &errors {
        residual += code.syndrome_of(ty, e).iter().filter(|&&s| s).count();
    }
    println!("residual lit ancillas after run: {residual} (in-flight only)");
}
