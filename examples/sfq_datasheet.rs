//! SFQ datasheet: synthesize the Clique decoder for a range of code
//! distances and print the hardware costs a cryo-architect needs —
//! gate/JJ counts, power, area, latency, refrigerator capacity, and the
//! NISQ+ comparison (paper Fig. 15 / Sec. 7.4).
//!
//! Run with: `cargo run --release --example sfq_datasheet`

use btwc::lattice::{StabilizerType, SurfaceCode};
use btwc::sfq::{nisq_plus_anchor, synthesize_clique, to_verilog, CellKind, CostModel};

fn main() {
    let model = CostModel::default();
    println!("Clique decoder ERSFQ datasheet (per logical qubit, one stabilizer type)");
    println!(
        "{:>4} {:>7} {:>8} {:>8} {:>8} {:>9} {:>9} {:>10}",
        "d", "gates", "DFFs", "splits", "JJs", "power", "area", "latency"
    );
    for d in [3u16, 5, 7, 9, 11, 13, 15, 17, 19, 21] {
        let code = SurfaceCode::new(d);
        let synth = synthesize_clique(&code, StabilizerType::X, 2);
        let nl = synth.netlist();
        let r = model.report(nl);
        println!(
            "{:>4} {:>7} {:>8} {:>8} {:>8} {:>6.1} µW {:>5.2} mm² {:>7.3} ns",
            d,
            r.gate_count,
            nl.count(CellKind::Dff),
            nl.count(CellKind::Split),
            r.jj_count,
            r.power_uw,
            r.area_mm2,
            r.latency_ns
        );
    }

    // Refrigerator budget check (Sec. 7.4: ~1 W of cooling at 4 K).
    let d21 = synthesize_clique(&SurfaceCode::new(21), StabilizerType::X, 2);
    let r21 = model.report(d21.netlist());
    println!("\n1 W @ 4K supports ~{} logical qubits at d=21", (1e6 / r21.power_uw) as u64);
    let d3 = synthesize_clique(&SurfaceCode::new(3), StabilizerType::X, 2);
    let r3 = model.report(d3.netlist());
    println!("1 W @ 4K supports ~{} logical qubits at d=3", (1e6 / r3.power_uw) as u64);

    // NISQ+ comparison at the paper's d=9 anchor point.
    let d9 = synthesize_clique(&SurfaceCode::new(9), StabilizerType::X, 2);
    let r9 = model.report(d9.netlist());
    let anchor = nisq_plus_anchor();
    println!("\nNISQ+ comparison at d=9 (paper Sec. 7.4 anchors):");
    println!(
        "  power  : Clique {:.1} µW vs NISQ+ ~{:.0} µW ({}x)",
        r9.power_uw,
        r9.power_uw * anchor.power_ratio,
        anchor.power_ratio
    );
    println!(
        "  area   : Clique {:.2} mm² vs NISQ+ ~{:.1} mm² ({}x)",
        r9.area_mm2,
        r9.area_mm2 * anchor.area_ratio,
        anchor.area_ratio
    );
    println!(
        "  latency: Clique {:.3} ns vs NISQ+ ~{:.2} ns avg ({}x, {}x more in worst case)",
        r9.latency_ns,
        r9.latency_ns * anchor.latency_ratio,
        anchor.latency_ratio,
        anchor.worst_case_latency_factor
    );

    // Structural Verilog export (the paper's synthesis input format).
    let d3_verilog = to_verilog(d3.netlist(), "clique_d3");
    let path = std::env::temp_dir().join("clique_d3.v");
    if std::fs::write(&path, &d3_verilog).is_ok() {
        println!(
            "
Wrote {} lines of structural Verilog to {}",
            d3_verilog.lines().count(),
            path.display()
        );
        for line in d3_verilog.lines().take(6) {
            println!("  | {line}");
        }
    }

    // Ablation: the cost of extra measurement-filter rounds.
    println!("\nSticky-filter depth ablation at d=9:");
    for k in 1..=4 {
        let synth = synthesize_clique(&SurfaceCode::new(9), StabilizerType::X, k);
        let r = model.report(synth.netlist());
        println!("  k={k}: {:>6} JJs, {:>6.1} µW, {:.3} ns", r.jj_count, r.power_uw, r.latency_ns);
    }
}
