//! Bandwidth planner: provision the refrigerator I/O for a 1000-qubit
//! machine (the paper's Sec. 5 workflow, end to end).
//!
//! 1. Measure the per-qubit off-chip decode probability by lifetime
//!    simulation (Clique coverage).
//! 2. Sweep provisioning percentiles and simulate the stall queue.
//! 3. Print the Fig. 16-style trade-off table and a recommendation at
//!    the paper's "10% execution-time increase" operating point.
//!
//! Run with: `cargo run --release --example bandwidth_planner`

use btwc::bandwidth::{sweep_tradeoff, ArrivalModel, IoModel};
use btwc::noise::SimRng;
use btwc::sim::{offchip_probability, LifetimeConfig};

fn main() {
    let num_qubits = 1000;
    let scenarios = [(1e-3, 11u16), (5e-4, 9u16), (5e-3, 13u16)];

    for (p, d) in scenarios {
        println!("== p={p:.0e}, d={d}, {num_qubits} logical qubits ==");
        let cfg = LifetimeConfig::new(d, p).with_cycles(150_000).with_seed(42);
        let q = offchip_probability(&cfg);
        println!("Clique coverage: {:.3}% (q = {q:.5})", (1.0 - q) * 100.0);

        let model = ArrivalModel::bernoulli(num_qubits, q.max(1e-6));
        let mut rng = SimRng::from_seed(7);
        let percentiles = [0.50, 0.90, 0.99, 0.999, 0.9999];
        let points = sweep_tradeoff(&model, &mut rng, &percentiles, 50_000);

        println!(
            "{:>8} {:>10} {:>11} {:>12} {:>8}",
            "pct", "bandwidth", "reduction", "exec+%", "stall%"
        );
        let mut recommended = None;
        for pt in &points {
            println!(
                "{:>8.4} {:>10} {:>10.1}x {:>11.2}% {:>7.2}%",
                pt.percentile,
                pt.bandwidth,
                pt.reduction,
                pt.execution_time_increase * 100.0,
                pt.stall_fraction * 100.0
            );
            if pt.execution_time_increase <= 0.10 && recommended.is_none() {
                recommended = Some(*pt);
            }
        }
        let io = IoModel::for_distance(d);
        match recommended {
            Some(pt) => println!(
                "-> provision {} decodes/cycle ({:.2} Gbps vs {:.1} Gbps unmitigated): \
                 {:.0}x reduction at {:.1}% slowdown\n",
                pt.bandwidth,
                io.gbps(pt.bandwidth as f64),
                io.full_stream_gbps(num_qubits),
                pt.reduction,
                pt.execution_time_increase * 100.0
            ),
            None => println!("-> no point met the 10% slowdown budget; provision higher\n"),
        }
    }
}
