//! Fault-tolerant transport under a lossy refrigerator link: sweeps
//! the link fault rate × provisioned bandwidth over the same machine
//! workload and prints what reliability costs — retransmission
//! pressure, execution-time increase (the Fig. 16 axis, now also a
//! function of link quality), degraded decodes, and the end-of-run
//! error-control impact.
//!
//! Every escalation crosses the link as a CRC-protected v2 frame;
//! corrupted/dropped/reordered frames are NACKed and retransmitted
//! with exponential backoff, and escalations that blow the retry or
//! deadline budget fall back to the on-chip emergency correction
//! (graceful degradation) instead of stalling the machine forever.
//!
//! Run with: `cargo run --release --example fault_sweep`

use btwc::core::LinkFaultModel;
use btwc::sim::{machine_fault_sweep, LifetimeConfig};

fn main() {
    let d = 5u16;
    let p = 8e-3;
    let num_qubits = 16;
    let cycles = 4_000;
    let fault_rates = [0.0, 1e-3, 1e-2, 5e-2, 2e-1];
    let bandwidths = [2usize, 4];
    let link_seed = 0xB7C2;

    println!("BTWC fault-tolerant transport sweep");
    println!(
        "d={d}, p={p:.0e}, {num_qubits} qubits, {cycles} cycles/point, link seed {link_seed:#x}"
    );
    println!("fault model: LinkFaultModel::uniform(rate) — drop/flip/truncate/dup/reorder/delay");
    println!();

    for &bandwidth in &bandwidths {
        let cfg = LifetimeConfig::new(d, p).with_cycles(cycles).with_seed(0xFA57);
        let sweep = machine_fault_sweep(&cfg, num_qubits, bandwidth, &fault_rates, link_seed);
        println!("bandwidth {bandwidth} decodes/cycle:");
        println!(
            "  {:>10} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9} {:>8}",
            "fault rate",
            "requests",
            "retrans",
            "degraded",
            "stalls",
            "exec+%",
            "residual",
            "logical"
        );
        for point in &sweep {
            println!(
                "  {:>10.0e} {:>9} {:>9} {:>9} {:>9} {:>9.2}% {:>9} {:>8}",
                point.fault_rate,
                point.stats.offchip_requests,
                point.transport.retransmitted_frames,
                point.transport.degraded_decodes,
                point.stats.stalls,
                point.execution_time_increase * 100.0,
                point.residual_syndrome_weight,
                point.logical_errors,
            );
        }
        // The contract the fault_injection test suite pins: a zero-rate
        // sweep point observes no faults at all, and every point keeps
        // the accounting exact (escalations resolve off-chip or as
        // counted degradations — never silently).
        assert_eq!(sweep[0].transport.retransmitted_frames, 0);
        assert_eq!(sweep[0].transport.degraded_decodes, 0);
        let zero = LinkFaultModel::uniform(0.0);
        assert!(zero.is_none(), "uniform(0) must be the draw-free perfect link");
        println!();
    }

    println!("reading the table:");
    println!("- retransmissions consume real link bandwidth: at tight provisioning the");
    println!("  stall count rises with the fault rate, not just the retry counters;");
    println!("- degraded decodes trade a best-effort on-chip correction for forward");
    println!("  progress when the link is hopeless — residual weight (and eventually");
    println!("  logical errors) is the price of that trade.");
}
