//! Logical memory experiment: measure the logical error rate of a
//! surface-code memory under the BTWC proposal versus the full MWPM
//! baseline (the paper's Fig. 14 accuracy claim, at example scale).
//!
//! Also demonstrates the accuracy knob the paper discusses: adding
//! sticky-filter rounds recovers baseline accuracy at higher distances.
//!
//! Run with: `cargo run --release --example logical_memory`

use btwc::sim::{logical_error_rate_parallel, DecoderKind, ShotConfig};

fn main() {
    let p = 6e-3;
    let shots = 20_000;
    println!("Logical memory at p={p:.0e}, {shots} shots per point, d rounds per shot");
    println!("{:>4} {:>14} {:>18} {:>12}", "d", "MWPM baseline", "Clique+MWPM (k=2)", "off-chip %");
    for d in [3u16, 5, 7] {
        let cfg = ShotConfig::new(d, p).with_shots(shots).with_seed(u64::from(d));
        let base = logical_error_rate_parallel(&cfg, DecoderKind::MwpmOnly, 4);
        let btwc = logical_error_rate_parallel(&cfg, DecoderKind::CliquePlusMwpm, 4);
        println!(
            "{:>4} {:>14.5} {:>18.5} {:>11.2}%",
            d,
            base.rate(),
            btwc.rate(),
            btwc.offchip_shots as f64 / btwc.shots as f64 * 100.0
        );
    }
    println!(
        "\nBoth columns should fall with distance; the Clique column should\n\
         track the baseline closely at these distances (paper Sec. 7.3)."
    );
}
