//! Quickstart: one logical qubit protected by the full BTWC pipeline.
//!
//! Simulates a distance-5 surface code under phenomenological noise and
//! shows the common-case / rare-case split the paper is built on: the
//! Clique predecoder keeps the overwhelming majority of decode cycles
//! on-chip, while chains and sticky measurement errors fall back to the
//! exact MWPM decoder.
//!
//! Run with: `cargo run --release --example quickstart`

use btwc::core::{BtwcDecoder, BtwcOutcome, StabilizerType, SurfaceCode};
use btwc::noise::{NoiseModel, PhenomenologicalNoise, SimRng};

fn main() {
    let distance = 5;
    let p = 2e-3;
    let cycles = 200_000;

    let code = SurfaceCode::new(distance);
    let ty = StabilizerType::X;
    let mut decoder = BtwcDecoder::builder(&code, ty).build();
    let noise = PhenomenologicalNoise::uniform(p);
    let mut rng = SimRng::from_seed(2023);

    println!("BTWC quickstart: d={distance}, p={p:.0e}, {cycles} cycles");
    println!("lattice:\n{}", code.render());

    let mut errors = vec![false; code.num_data_qubits()];
    let mut meas = vec![false; code.num_ancillas(ty)];
    let mut onchip_flips = 0u64;
    let mut offchip_flips = 0u64;

    for _ in 0..cycles {
        noise.sample_data_into(&mut rng, &mut errors);
        noise.sample_measurement_into(&mut rng, &mut meas);
        let mut round = code.syndrome_of(ty, &errors);
        for (r, &m) in round.iter_mut().zip(&meas) {
            *r ^= m;
        }
        match decoder.process_round(&round) {
            BtwcOutcome::Quiet => {}
            BtwcOutcome::OnChip(c) => {
                onchip_flips += c.weight() as u64;
                c.apply_to(&mut errors);
            }
            BtwcOutcome::OffChip(c) => {
                offchip_flips += c.weight() as u64;
                c.apply_to(&mut errors);
            }
            // Only BtwcMachine with a faulty link degrades; a standalone
            // pipeline never emits this.
            BtwcOutcome::Degraded(c) => c.apply_to(&mut errors),
        }
    }

    let stats = decoder.stats();
    println!("cycles processed      : {}", stats.cycles);
    println!("quiet / on-chip / off : {} / {} / {}", stats.quiet, stats.onchip, stats.offchip);
    println!("Clique coverage       : {:.3}%", stats.coverage() * 100.0);
    println!(
        "bandwidth elimination : {:.1}% of cycles never leave the fridge",
        stats.coverage() * 100.0
    );
    println!("data flips applied    : {onchip_flips} on-chip, {offchip_flips} off-chip");

    let residual_syndrome = code.syndrome_of(ty, &errors).iter().filter(|&&s| s).count();
    println!("residual lit ancillas : {residual_syndrome} (in-flight errors only)");
}
