//! Cross-crate integration tests: the full BTWC pipeline driven through
//! the public facade, exercising every subsystem together.

use btwc::core::{BtwcDecoder, StabilizerType, SurfaceCode};
use btwc::noise::{NoiseModel, PhenomenologicalNoise, SimRng};

/// Drives a decoder against live noise and returns (coverage, final
/// syndrome weight).
fn drive(d: u16, p: f64, cycles: usize, seed: u64) -> (f64, usize) {
    let code = SurfaceCode::new(d);
    let ty = StabilizerType::X;
    let mut decoder = BtwcDecoder::builder(&code, ty).build();
    let noise = PhenomenologicalNoise::uniform(p);
    let mut rng = SimRng::from_seed(seed);
    let mut errors = vec![false; code.num_data_qubits()];
    let mut meas = vec![false; code.num_ancillas(ty)];
    for _ in 0..cycles {
        noise.sample_data_into(&mut rng, &mut errors);
        noise.sample_measurement_into(&mut rng, &mut meas);
        let mut round = code.syndrome_of(ty, &errors);
        for (r, &m) in round.iter_mut().zip(&meas) {
            *r ^= m;
        }
        if let Some(c) = decoder.process_round(&round).correction() {
            c.apply_to(&mut errors);
        }
    }
    let weight = code.syndrome_of(ty, &errors).iter().filter(|&&s| s).count();
    (decoder.stats().coverage(), weight)
}

#[test]
fn pipeline_controls_errors_across_distances() {
    for (d, p) in [(3u16, 3e-3), (5, 3e-3), (7, 5e-3), (9, 5e-3)] {
        let (coverage, weight) = drive(d, p, 20_000, 0xE2E + u64::from(d));
        assert!(coverage > 0.80, "d={d} p={p}: coverage {coverage} too low");
        assert!(weight <= 8, "d={d} p={p}: decode loop lost control, syndrome weight {weight}");
    }
}

#[test]
fn coverage_ordering_matches_paper_trends() {
    // Coverage falls with p at fixed d, and with d at fixed p (Fig. 11).
    let (c_low_p, _) = drive(7, 1e-3, 30_000, 1);
    let (c_high_p, _) = drive(7, 8e-3, 30_000, 1);
    assert!(c_low_p > c_high_p, "{c_low_p} vs {c_high_p}");
    let (c_low_d, _) = drive(3, 5e-3, 30_000, 2);
    let (c_high_d, _) = drive(11, 5e-3, 30_000, 2);
    assert!(c_low_d > c_high_d, "{c_low_d} vs {c_high_d}");
}

#[test]
fn onchip_and_offchip_corrections_commute_with_stabilizers() {
    // Whatever mix of Clique and MWPM corrections the pipeline applies,
    // the cumulative correction must always explain the observed
    // syndromes: after any quiet stretch the syndrome returns to zero.
    let code = SurfaceCode::new(5);
    let ty = StabilizerType::X;
    let mut decoder = BtwcDecoder::builder(&code, ty).build();
    let noise = PhenomenologicalNoise::uniform(1e-2);
    let mut rng = SimRng::from_seed(99);
    let mut errors = vec![false; code.num_data_qubits()];
    let mut meas = vec![false; code.num_ancillas(ty)];
    // Noisy burst...
    for _ in 0..500 {
        noise.sample_data_into(&mut rng, &mut errors);
        noise.sample_measurement_into(&mut rng, &mut meas);
        let mut round = code.syndrome_of(ty, &errors);
        for (r, &m) in round.iter_mut().zip(&meas) {
            *r ^= m;
        }
        if let Some(c) = decoder.process_round(&round).correction() {
            c.apply_to(&mut errors);
        }
    }
    // ...then quiet: within a few cycles everything must be resolved.
    for _ in 0..20 {
        let round = code.syndrome_of(ty, &errors);
        if let Some(c) = decoder.process_round(&round).correction() {
            c.apply_to(&mut errors);
        }
    }
    let weight = code.syndrome_of(ty, &errors).iter().filter(|&&s| s).count();
    assert_eq!(weight, 0, "quiet stream must drain all defects");
}

#[test]
fn clique_agrees_with_mwpm_on_trivial_signatures() {
    // The paper's Fig. 8a claim: for isolated errors, the lightweight
    // decoder's correction is equivalent to the heavyweight one's.
    use btwc::clique::{CliqueDecision, CliqueDecoder};
    use btwc::mwpm::MwpmDecoder;
    use btwc::syndrome::{RoundHistory, Syndrome};

    let code = SurfaceCode::new(7);
    let ty = StabilizerType::X;
    let clique = CliqueDecoder::new(&code, ty);
    let mwpm = MwpmDecoder::new(&code, ty);
    let mut rng = SimRng::from_seed(4242);
    let noise = PhenomenologicalNoise::new(3e-3, 0.0);
    let mut checked = 0;
    for _ in 0..5_000 {
        let mut errors = vec![false; code.num_data_qubits()];
        noise.sample_data_into(&mut rng, &mut errors);
        let bits = code.syndrome_of(ty, &errors);
        let syndrome = Syndrome::from_bits(bits.clone());
        if let CliqueDecision::Trivial(c_clique) = clique.decode(&syndrome) {
            let mut window = RoundHistory::new(bits.len(), 2);
            window.push(&bits);
            window.push(&bits);
            let c_mwpm = mwpm.decode_window(&window);
            // Both corrections must cancel the error up to stabilizers.
            for c in [&c_clique, &c_mwpm] {
                let mut residual = errors.clone();
                c.apply_to(&mut residual);
                assert!(code.syndrome_of(ty, &residual).iter().all(|&s| !s));
                assert!(!code.is_logical_error(ty, &residual));
            }
            // And they must be equivalent to each other.
            let mut combined = vec![false; code.num_data_qubits()];
            c_clique.apply_to(&mut combined);
            c_mwpm.apply_to(&mut combined);
            assert!(
                !code.is_logical_error(ty, &combined),
                "clique and mwpm disagree by a logical on {errors:?}"
            );
            checked += 1;
        }
    }
    assert!(checked > 200, "exercised {checked} trivial signatures");
}

#[test]
fn deterministic_replay_across_the_facade() {
    let a = drive(5, 4e-3, 10_000, 7);
    let b = drive(5, 4e-3, 10_000, 7);
    assert_eq!(a, b);
}
