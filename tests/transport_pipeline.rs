//! Integration: the off-chip path end to end — a complex signature is
//! framed for the wire, crosses the (simulated) refrigerator boundary,
//! is parsed back, and decoded by the room-temperature MWPM decoder.

use btwc::bandwidth::{DecodeRequest, IoModel};
use btwc::core::{StabilizerType, SurfaceCode};
use btwc::mwpm::MwpmDecoder;
use btwc::syndrome::RoundHistory;

#[test]
fn framed_window_decodes_identically_after_the_wire() {
    let code = SurfaceCode::new(7);
    let ty = StabilizerType::X;
    let decoder = MwpmDecoder::new(&code, ty);

    // A chain the Clique predecoder would ship off-chip.
    let mut errors = vec![false; code.num_data_qubits()];
    errors[3 * 7 + 3] = true;
    errors[4 * 7 + 3] = true;
    let round = code.syndrome_of(ty, &errors);
    let rounds = vec![round.clone(), round.clone(), round];

    // On-chip side: frame and "transmit".
    let request = DecodeRequest::new(42, 1_000_000, rounds.clone());
    let wire = request.encode();

    // Off-chip side: parse and decode.
    let received = DecodeRequest::decode(&wire).expect("frame parses");
    assert_eq!(received.qubit, 42);
    let mut window = RoundHistory::new(received.bits_per_round(), received.rounds.len());
    for r in &received.rounds {
        window.push(r);
    }
    let via_wire = decoder.decode_window(&window);

    // Reference: decode the same window without the wire trip.
    let mut direct = RoundHistory::new(rounds[0].len(), rounds.len());
    for r in &rounds {
        direct.push(r);
    }
    assert_eq!(via_wire, decoder.decode_window(&direct));

    // And the correction actually resolves the chain.
    let mut residual = errors;
    via_wire.apply_to(&mut residual);
    assert!(code.syndrome_of(ty, &residual).iter().all(|&s| !s));
    assert!(!code.is_logical_error(ty, &residual));
}

#[test]
fn frame_size_matches_io_budgeting() {
    // The Gbps model and the wire format must agree on per-request cost
    // (modulo the fixed header and byte padding).
    let d = 9u16;
    let code = SurfaceCode::new(d);
    let n_anc = code.num_ancillas(StabilizerType::X);
    let rounds = vec![vec![false; n_anc]; 2];
    let request = DecodeRequest::new(0, 0, rounds);
    let payload_bits = 2 * n_anc.div_ceil(8) * 8;
    assert_eq!(request.frame_len() * 8, 16 * 8 + payload_bits);
    // IoModel defaults count raw syndrome bits for both planes; the
    // framed payload for one plane over two rounds stays within 2x of
    // that accounting.
    let io = IoModel::for_distance(d);
    assert!(request.frame_len() * 8 <= 2 * io.bits_per_decode + 16 * 8);
}

#[test]
fn dual_decoder_demand_feeds_the_provisioner() {
    use btwc::core::DualBtwcDecoder;
    use btwc::noise::{NoiseModel, PhenomenologicalNoise, SimRng};

    let code = SurfaceCode::new(5);
    let mut dec = DualBtwcDecoder::new(&code);
    let noise = PhenomenologicalNoise::uniform(5e-3);
    let mut rng = SimRng::from_seed(0x77);
    let mut z_err = vec![false; code.num_data_qubits()];
    let mut x_err = vec![false; code.num_data_qubits()];
    let mut offchip_cycles = 0usize;
    let cycles = 10_000;
    for _ in 0..cycles {
        noise.sample_data_into(&mut rng, &mut z_err);
        noise.sample_data_into(&mut rng, &mut x_err);
        let xr = code.syndrome_of(StabilizerType::X, &z_err);
        let zr = code.syndrome_of(StabilizerType::Z, &x_err);
        let out = dec.process_rounds(&xr, &zr);
        offchip_cycles += usize::from(out.went_offchip());
        if let Some(c) = out.z_correction() {
            c.apply_to(&mut z_err);
        }
        if let Some(c) = out.x_correction() {
            c.apply_to(&mut x_err);
        }
    }
    // The dual off-chip rate is bounded by the sum of the plane rates
    // and bounded below by each individual plane's rate.
    let (sx, sz) = dec.stats();
    let dual_rate = offchip_cycles as f64 / cycles as f64;
    let x_rate = sx.offchip as f64 / cycles as f64;
    let z_rate = sz.offchip as f64 / cycles as f64;
    assert!(dual_rate >= x_rate.max(z_rate) - 1e-12);
    assert!(dual_rate <= x_rate + z_rate + 1e-12);
}
