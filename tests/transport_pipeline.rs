//! Integration: the off-chip path end to end — a complex signature is
//! framed for the wire, crosses the (simulated) refrigerator boundary,
//! is parsed back, and decoded by the room-temperature MWPM decoder —
//! and the same loop driven at machine scale through [`BtwcMachine`],
//! from raw syndromes to Fig. 16-style execution-time increase.

use btwc::bandwidth::{DecodeRequest, IoModel};
use btwc::core::{BtwcMachine, DecoderBackend, StabilizerType, SurfaceCode, SyndromeBatch};
use btwc::mwpm::MwpmDecoder;
use btwc::syndrome::RoundHistory;

#[test]
fn framed_window_decodes_identically_after_the_wire() {
    let code = SurfaceCode::new(7);
    let ty = StabilizerType::X;
    let decoder = MwpmDecoder::new(&code, ty);

    // A chain the Clique predecoder would ship off-chip.
    let mut errors = vec![false; code.num_data_qubits()];
    errors[3 * 7 + 3] = true;
    errors[4 * 7 + 3] = true;
    let round = code.syndrome_of(ty, &errors);
    let rounds = vec![round.clone(), round.clone(), round];

    // On-chip side: frame and "transmit".
    let request = DecodeRequest::new(42, 1_000_000, rounds.clone());
    let wire = request.encode();

    // Off-chip side: parse and decode.
    let received = DecodeRequest::decode(&wire).expect("frame parses");
    assert_eq!(received.qubit, 42);
    let mut window = RoundHistory::new(received.bits_per_round(), received.rounds.len());
    for r in &received.rounds {
        window.push(r);
    }
    let via_wire = decoder.decode_window(&window);

    // Reference: decode the same window without the wire trip.
    let mut direct = RoundHistory::new(rounds[0].len(), rounds.len());
    for r in &rounds {
        direct.push(r);
    }
    assert_eq!(via_wire, decoder.decode_window(&direct));

    // And the correction actually resolves the chain.
    let mut residual = errors;
    via_wire.apply_to(&mut residual);
    assert!(code.syndrome_of(ty, &residual).iter().all(|&s| !s));
    assert!(!code.is_logical_error(ty, &residual));
}

#[test]
fn frame_size_matches_io_budgeting() {
    // The Gbps model and the wire format must agree on per-request cost
    // (modulo the fixed header and byte padding).
    let d = 9u16;
    let code = SurfaceCode::new(d);
    let n_anc = code.num_ancillas(StabilizerType::X);
    let rounds = vec![vec![false; n_anc]; 2];
    let request = DecodeRequest::new(0, 0, rounds);
    let payload_bits = 2 * n_anc.div_ceil(8) * 8;
    assert_eq!(request.frame_len() * 8, 16 * 8 + payload_bits);
    // IoModel defaults count raw syndrome bits for both planes; the
    // framed payload for one plane over two rounds stays within 2x of
    // that accounting.
    let io = IoModel::for_distance(d);
    assert!(request.frame_len() * 8 <= 2 * io.bits_per_decode + 16 * 8);
}

/// Drives a machine end to end: sampled noise → batched packed rounds
/// → word-parallel filtering → framed off-chip decodes over the shared
/// link → corrections → the error state. Returns the machine.
fn drive_machine(bandwidth: usize, backend: DecoderBackend, cycles: usize) -> BtwcMachine {
    use btwc::noise::{PhenomenologicalNoise, SimRng};
    use btwc_testutil::noisy_round;

    let code = SurfaceCode::new(5);
    let ty = StabilizerType::X;
    let num_qubits = 24;
    let mut machine =
        BtwcMachine::builder(&code, ty, num_qubits, bandwidth).backend(backend).build();
    let noise = PhenomenologicalNoise::uniform(8e-3);
    let mut rng = SimRng::from_seed(0xF16);
    let mut errors = vec![vec![false; code.num_data_qubits()]; num_qubits];
    let mut meas = vec![false; code.num_ancillas(ty)];
    let mut batch = SyndromeBatch::new(num_qubits, code.num_ancillas(ty));
    for _ in 0..cycles {
        for (q, e) in errors.iter_mut().enumerate() {
            let round = noisy_round(&code, ty, &noise, &mut rng, e, &mut meas);
            batch.set_qubit_round_bools(q, &round);
        }
        let cycle = machine.step(&batch);
        for (e, out) in errors.iter_mut().zip(&cycle.outcomes) {
            if let Some(c) = out.correction() {
                c.apply_to(e);
            }
        }
    }
    // The decode loop kept control: residual syndromes stay bounded.
    for e in &errors {
        let weight = code.syndrome_of(ty, e).iter().filter(|&&s| s).count();
        assert!(weight <= 8, "runaway syndrome weight {weight}");
    }
    machine
}

#[test]
fn machine_executes_the_whole_loop_and_reports_fig16_style_stalling() {
    // A starved link must stall and stretch execution; a generous link
    // must not — the Fig. 16 trade-off reproduced from raw syndromes
    // (not from an arrival model) with every escalation crossing the
    // wire as a real frame.
    let tight = drive_machine(1, DecoderBackend::DenseMwpm, 3_000);
    let ts = tight.stats();
    assert!(ts.offchip_requests > 0, "noisy machine must escalate");
    assert!(ts.frame_bytes >= 16 * ts.offchip_requests, "every escalation ships a frame");
    assert!(ts.stalls > 0, "bandwidth 1 for 24 qubits must stall");
    assert!(ts.peak_backlog > 0);
    assert!(ts.execution_time_increase() > 0.0);

    let wide = drive_machine(24, DecoderBackend::DenseMwpm, 3_000);
    let ws = wide.stats();
    assert_eq!(ws.stalls, 0, "a machine-wide link never overflows");
    assert!(ws.execution_time_increase().abs() < 1e-12);
    assert!(
        ts.execution_time_increase() > ws.execution_time_increase(),
        "stalling must fall with provisioned bandwidth"
    );
    // Same noise stream, same decode behavior: provisioning changes
    // stalling, never demand.
    assert_eq!(ts.offchip_requests, ws.offchip_requests);
    assert_eq!(ts.frame_bytes, ws.frame_bytes);
    assert!(wide.mean_coverage() > 0.8, "coverage {}", wide.mean_coverage());
}

#[test]
fn machine_transport_loop_works_for_every_builtin_backend() {
    for backend in [
        DecoderBackend::DenseMwpm,
        DecoderBackend::SparseBlossom,
        DecoderBackend::UnionFind,
        DecoderBackend::Lut,
    ] {
        let machine = drive_machine(4, backend, 600);
        let stats = machine.stats();
        assert!(
            stats.offchip_requests > 0,
            "backend {backend:?} never exercised the transport path"
        );
        assert!(stats.frame_bytes >= 16 * stats.offchip_requests);
        assert_eq!(machine.backend_name(), backend.name());
    }
}

#[test]
fn dual_decoder_demand_feeds_the_provisioner() {
    use btwc::core::DualBtwcDecoder;
    use btwc::noise::{NoiseModel, PhenomenologicalNoise, SimRng};

    let code = SurfaceCode::new(5);
    let mut dec = DualBtwcDecoder::new(&code);
    let noise = PhenomenologicalNoise::uniform(5e-3);
    let mut rng = SimRng::from_seed(0x77);
    let mut z_err = vec![false; code.num_data_qubits()];
    let mut x_err = vec![false; code.num_data_qubits()];
    let mut offchip_cycles = 0usize;
    let cycles = 10_000;
    for _ in 0..cycles {
        noise.sample_data_into(&mut rng, &mut z_err);
        noise.sample_data_into(&mut rng, &mut x_err);
        let xr = code.syndrome_of(StabilizerType::X, &z_err);
        let zr = code.syndrome_of(StabilizerType::Z, &x_err);
        let out = dec.process_rounds(&xr, &zr);
        offchip_cycles += usize::from(out.went_offchip());
        if let Some(c) = out.z_correction() {
            c.apply_to(&mut z_err);
        }
        if let Some(c) = out.x_correction() {
            c.apply_to(&mut x_err);
        }
    }
    // The dual off-chip rate is bounded by the sum of the plane rates
    // and bounded below by each individual plane's rate.
    let (sx, sz) = dec.stats();
    let dual_rate = offchip_cycles as f64 / cycles as f64;
    let x_rate = sx.offchip as f64 / cycles as f64;
    let z_rate = sz.offchip as f64 / cycles as f64;
    assert!(dual_rate >= x_rate.max(z_rate) - 1e-12);
    assert!(dual_rate <= x_rate + z_rate + 1e-12);
}
