//! Integration tests pinning the paper's headline claims, at test-suite
//! scale. Each test names the claim it guards; EXPERIMENTS.md holds the
//! full-scale numbers.

use btwc::bandwidth::{sweep_tradeoff, ArrivalModel};
use btwc::lattice::{StabilizerType, SurfaceCode};
use btwc::noise::SimRng;
use btwc::sfq::{nisq_plus_anchor, synthesize_clique, CostModel};
use btwc::sim::{
    afs_comparison, logical_error_rate, offchip_probability, DecoderKind, LifetimeConfig,
    LifetimeSim, ShotConfig,
};

/// Abstract (claim 1): "70–99+% off-chip bandwidth elimination across a
/// range of logical and physical error rates".
#[test]
fn claim_bandwidth_elimination_70_to_99_percent() {
    // Easy regime: ~99+%.
    let easy = LifetimeSim::new(&LifetimeConfig::new(5, 1e-3).with_cycles(40_000)).run();
    assert!(easy.coverage() > 0.99, "easy regime coverage {}", easy.coverage());
    // Hard regime (near threshold, large distance): still well above 50%.
    let hard = LifetimeSim::new(&LifetimeConfig::new(13, 8e-3).with_cycles(20_000)).run();
    assert!(hard.coverage() > 0.70, "hard regime coverage {}", hard.coverage());
}

/// Abstract (claim 2): "10–10000x bandwidth reduction over prior
/// off-chip bandwidth reduction techniques (AFS)".
#[test]
fn claim_clique_beats_afs_by_an_order_of_magnitude() {
    let cfg = LifetimeConfig::new(9, 1e-3).with_cycles(60_000).with_seed(2);
    let stats = LifetimeSim::new(&cfg).run();
    let cmp = afs_comparison(9, 1e-3, &stats);
    assert!(
        cmp.clique_reduction > 10.0 * cmp.afs_reduction,
        "clique {}x vs AFS {}x",
        cmp.clique_reduction,
        cmp.afs_reduction
    );
}

/// Abstract (claim 3): "15–37x resource overhead reduction compared to
/// prior on-chip-only decoding (NISQ+)" — encoded via the published
/// anchors, with our synthesized absolute numbers in the paper's range.
#[test]
fn claim_nisq_plus_resource_reduction() {
    let anchor = nisq_plus_anchor();
    assert!(anchor.power_ratio >= 15.0 && anchor.power_ratio <= 37.0 + 1e-9);
    let report = CostModel::default()
        .report(synthesize_clique(&SurfaceCode::new(9), StabilizerType::X, 2).netlist());
    // Paper text: 10 µW (d=3) … 500 µW (d=21); d=9 sits inside.
    assert!(report.power_uw > 10.0 && report.power_uw < 500.0, "d=9 power {} µW", report.power_uw);
}

/// Sec. 7.3: Clique+baseline accuracy tracks the baseline ("almost
/// exactly equivalent" at d=3/5/7).
#[test]
fn claim_accuracy_tracks_baseline_at_low_distance() {
    let cfg = ShotConfig::new(3, 1e-2).with_shots(4_000).with_seed(3);
    let base = logical_error_rate(&cfg, DecoderKind::MwpmOnly);
    let btwc = logical_error_rate(&cfg, DecoderKind::CliquePlusMwpm);
    assert!(base.failures > 5, "baseline must be measurable");
    let ratio = btwc.rate() / base.rate();
    assert!(
        (0.5..2.5).contains(&ratio),
        "accuracy ratio {ratio} (base {} vs clique {})",
        base.rate(),
        btwc.rate()
    );
}

/// Sec. 5 / Fig. 9: provisioning at the average rate diverges;
/// 99th-percentile provisioning keeps the execution-time increase small.
#[test]
fn claim_statistical_provisioning_beats_average() {
    let cfg = LifetimeConfig::new(9, 5e-3).with_cycles(50_000).with_seed(4);
    let q = offchip_probability(&cfg);
    assert!(q > 0.0, "need a nonzero off-chip rate");
    let model = ArrivalModel::bernoulli(1000, q);
    let mut rng = SimRng::from_seed(5);
    let pts = sweep_tradeoff(&model, &mut rng, &[0.50, 0.999], 20_000);
    let mean_pt = &pts[0];
    let p999_pt = &pts[1];
    assert!(
        mean_pt.execution_time_increase > 0.5,
        "average provisioning should stall badly, got {}",
        mean_pt.execution_time_increase
    );
    assert!(
        p999_pt.execution_time_increase < 0.10,
        "p99.9 provisioning increase {}",
        p999_pt.execution_time_increase
    );
    assert!(p999_pt.reduction > 2.0, "reduction {}", p999_pt.reduction);
}

/// Sec. 7.4: Clique latency is ~0.1–0.3 ns and nearly flat across
/// distances — fast enough for per-cycle decoding.
#[test]
fn claim_subnanosecond_flat_latency() {
    let model = CostModel::default();
    let mut latencies = Vec::new();
    for d in [3u16, 9, 15, 21] {
        let r =
            model.report(synthesize_clique(&SurfaceCode::new(d), StabilizerType::X, 2).netlist());
        latencies.push(r.latency_ns);
    }
    for &l in &latencies {
        assert!((0.02..0.6).contains(&l), "latency {l} ns");
    }
    let spread = latencies.iter().cloned().fold(0.0f64, f64::max)
        / latencies.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 3.0, "latency must be nearly flat, spread {spread}x");
}

/// Fig. 12's point: near threshold, going off-chip for everything that
/// is not all-zeros would forfeit most of the benefit — Clique handles
/// nearly all non-zero signatures on-chip.
#[test]
fn claim_nonzero_signatures_dominate_onchip_traffic_near_threshold() {
    let stats =
        LifetimeSim::new(&LifetimeConfig::new(11, 8e-3).with_cycles(30_000).with_seed(6)).run();
    // (The 2-round filter books each error's confirmation cycle as the
    // error cycle, so roughly half the on-chip decodes carry errors at
    // this operating point; the fraction keeps rising with p·d².)
    assert!(
        stats.nonzero_onchip_fraction() > 0.4,
        "non-zero on-chip fraction {}",
        stats.nonzero_onchip_fraction()
    );
    // And the naive "ship everything non-zero" policy would ship far
    // more than Clique does.
    let nonzero_fraction = 1.0 - stats.raw_all_zero_fraction();
    assert!(
        nonzero_fraction > 2.0 * stats.offchip_fraction(),
        "naive non-zero shipping {} vs clique off-chip {}",
        nonzero_fraction,
        stats.offchip_fraction()
    );
}
