//! Vendored mini benchmark harness, API-compatible with the subset of
//! `criterion` this workspace uses (no network access at build time, so
//! the real crate is unavailable).
//!
//! This is a *real* harness, not a no-op: every benchmark is warmed up,
//! then timed over enough iterations to fill a measurement window, and
//! the median of several samples is reported as
//! `name  time: <t>/iter  thrpt: <n> iter/s` on stdout. Use it through
//! the usual `criterion_group!` / `criterion_main!` pair with
//! `harness = false` bench targets.
//!
//! Environment knobs:
//!
//! * `BENCH_MEASURE_MS` — per-sample measurement window in ms (default 60);
//! * `BENCH_SAMPLES` — samples per benchmark, before `sample_size` caps
//!   (default 11).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One recorded benchmark result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function` or `group/param`).
    pub id: String,
    /// Median time per iteration.
    pub per_iter: Duration,
    /// Iterations per second implied by `per_iter`.
    pub per_sec: f64,
}

/// The top-level harness.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

fn measure_ms() -> u64 {
    std::env::var("BENCH_MEASURE_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(60)
}

fn samples_default() -> usize {
    std::env::var("BENCH_SAMPLES").ok().and_then(|v| v.parse().ok()).unwrap_or(11)
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let result = run_bench(name, samples_default(), &mut f);
        self.results.push(result);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_owned(), samples: samples_default() }
    }

    /// All results recorded so far (used by JSON emitters).
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(3, 101);
        self
    }

    /// Sets the measurement window (accepted for API compatibility; the
    /// window is controlled by `BENCH_MEASURE_MS` here).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl ToString,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, name.to_string());
        let result = run_bench(&id, self.samples, &mut f);
        self.parent.results.push(result);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.param);
        let result = run_bench(&id, self.samples, &mut |b: &mut Bencher| f(b, input));
        self.parent.results.push(result);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifier of one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    param: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    #[must_use]
    pub fn new(name: impl ToString, param: impl ToString) -> Self {
        Self { param: format!("{}/{}", name.to_string(), param.to_string()) }
    }

    /// Id from a parameter alone.
    #[must_use]
    pub fn from_parameter(param: impl ToString) -> Self {
        Self { param: param.to_string() }
    }
}

/// Batch sizing for [`Bencher::iter_batched`] (accepted for API
/// compatibility; batches are sized per-iteration here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Measured (total, iterations) per sample.
    samples: Vec<(Duration, u64)>,
    target: Duration,
}

impl Bencher {
    /// Times `routine` over a measurement window.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibrate: grow the iteration count until the window is filled.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target {
                self.samples.push((elapsed, iters));
                return;
            }
            let grow = if elapsed.is_zero() {
                8.0
            } else {
                (self.target.as_secs_f64() / elapsed.as_secs_f64() * 1.2).clamp(1.5, 16.0)
            };
            iters = ((iters as f64) * grow).ceil() as u64;
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target {
                self.samples.push((elapsed, iters));
                return;
            }
            let grow = if elapsed.is_zero() {
                8.0
            } else {
                (self.target.as_secs_f64() / elapsed.as_secs_f64() * 1.2).clamp(1.5, 16.0)
            };
            iters = ((iters as f64) * grow).ceil() as u64;
        }
    }
}

fn run_bench(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) -> BenchResult {
    let target = Duration::from_millis(measure_ms());
    // Warm-up pass (cheap: one short window).
    let mut warm = Bencher { samples: Vec::new(), target: target / 4 };
    f(&mut warm);
    // Measured samples.
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut b = Bencher { samples: Vec::new(), target };
        f(&mut b);
        for (total, iters) in b.samples {
            per_iter.push(total.as_secs_f64() / iters as f64);
        }
    }
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let result = BenchResult {
        id: id.to_owned(),
        per_iter: Duration::from_secs_f64(median),
        per_sec: 1.0 / median,
    };
    println!(
        "{:<44} time: {:>10}/iter   thrpt: {:>14.1} iter/s",
        result.id,
        fmt_duration(result.per_iter),
        result.per_sec
    );
    result
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_reports() {
        std::env::set_var("BENCH_MEASURE_MS", "2");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(c.results().len(), 3);
        assert!(c.results().iter().all(|r| r.per_sec > 0.0));
        assert_eq!(c.results()[1].id, "grp/4");
    }
}
