//! Vendored, dependency-free stand-in for the `serde` facade (no
//! network access at build time). Exposes the `Serialize` trait name and
//! the derive macro under the same paths as the real crate, so the
//! workspace compiles identically against either.

/// Marker trait standing in for `serde::Serialize`.
///
/// The derive emits no impl — nothing in the workspace serializes
/// through serde; JSON artifacts are hand-rolled by `btwc-bench`.
pub trait Serialize {}

pub use serde_derive::Serialize;
