//! Vendored mini property-testing harness, API-compatible with the
//! subset of `proptest` this workspace uses (the build environment has
//! no network access, so the real crate is unavailable).
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases`
//! iterations (default 256), sampling every argument strategy from a
//! deterministic per-test RNG (seeded from the test's module path and
//! case index), and executes the body. There is no shrinking — a
//! failing case panics with the sampled values still bound, so the
//! assertion message plus the deterministic seed make failures
//! reproducible.
//!
//! Supported strategy surface: integer/float ranges, `Just`,
//! `any::<bool/u8/u16/u32/u64/usize/i64>()`, tuples (arity 2–4),
//! `collection::vec` (exact or ranged length), `bool::weighted`,
//! `option::weighted`, `prop_map`, `prop_flat_map`, `prop_oneof!`, and
//! boxed trait-object strategies.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test RNG (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case, derived from the test name and case index.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Bernoulli draw.
    pub fn weighted_bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases sampled per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy derived from each sampled value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy producing exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Occasionally pin the endpoints: boundary values are where
        // `p == 0` / `p == 1` style special cases live.
        match rng.below(32) {
            0 => *self.start(),
            1 => *self.end(),
            _ => self.start() + rng.unit_f64() * (self.end() - self.start()),
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u64>()`, …).
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over all values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec`s of `element` values with the given length (spec).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// See [`weighted`].
    #[derive(Debug, Clone)]
    pub struct WeightedBool {
        p: f64,
    }

    impl Strategy for WeightedBool {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.weighted_bool(self.p)
        }
    }

    /// `true` with probability `p`.
    #[must_use]
    pub fn weighted(p: f64) -> WeightedBool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        WeightedBool { p }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`weighted`].
    #[derive(Debug, Clone)]
    pub struct WeightedOption<S> {
        p_some: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            rng.weighted_bool(self.p_some).then(|| self.inner.sample(rng))
        }
    }

    /// `Some(inner)` with probability `p_some`, else `None`.
    pub fn weighted<S: Strategy>(p_some: f64, inner: S) -> WeightedOption<S> {
        assert!((0.0..=1.0).contains(&p_some), "probability {p_some} out of [0,1]");
        WeightedOption { p_some, inner }
    }
}

/// Uniform choice between boxed alternative strategies (built by
/// [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Tuples of same-valued strategies, convertible into a [`Union`]
/// (what [`prop_oneof!`] expands through — going via a tuple rather
/// than per-arm trait-object casts lets integer literals in later arms
/// unify with the first arm's value type).
pub trait IntoUnion {
    /// The common value type of all arms.
    type Value;

    /// Collapses the arms into a uniform-choice union.
    fn into_union(self) -> Union<Self::Value>;
}

macro_rules! impl_into_union {
    ($(($($name:ident),+ $(,)?)),+ $(,)?) => {$(
        impl<V, $($name),+> IntoUnion for ($($name,)+)
        where
            $($name: Strategy<Value = V> + 'static),+
        {
            type Value = V;

            fn into_union(self) -> Union<V> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Union::new(vec![$(Box::new($name) as Box<dyn Strategy<Value = V>>),+])
            }
        }
    )+};
}

impl_into_union!(
    (A,),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H),
);

/// Everything a `proptest!` test body usually needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Uniform choice among strategy expressions producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::IntoUnion::into_union(($($arm,)+))
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    (@munch ($cfg:expr); ) => {};
    (@munch ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0i64..40) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0..40).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_spec(
            exact in crate::collection::vec(any::<bool>(), 6),
            ranged in crate::collection::vec(0usize..10, 1..8),
        ) {
            prop_assert_eq!(exact.len(), 6);
            prop_assert!((1..8).contains(&ranged.len()));
        }

        #[test]
        fn oneof_and_tuples_compose(
            d in prop_oneof![Just(3u16), Just(5), Just(7)],
            (a, b) in (Just(1u8), 0usize..4),
        ) {
            prop_assert!([3, 5, 7].contains(&d));
            prop_assert_eq!(a, 1);
            prop_assert!(b < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Config headers parse and cap the case count.
        #[test]
        fn flat_map_sees_dependent_size(n in 1usize..9) {
            let s = Just(n).prop_flat_map(|n| crate::collection::vec(any::<bool>(), n));
            let mut rng = crate::TestRng::for_case("inner", 0);
            prop_assert_eq!(crate::Strategy::sample(&s, &mut rng).len(), n);
        }
    }

    #[test]
    fn deterministic_sampling() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
