//! Vendored, dependency-free stand-in for the parts of the `rand` crate
//! this workspace uses (the build environment has no network access, so
//! crates.io is unavailable).
//!
//! Provides [`rngs::SmallRng`] backed by xoshiro256++ — the same family
//! the real `rand::rngs::SmallRng` uses on 64-bit targets — plus the
//! `Rng` / `SeedableRng` trait surface consumed by `btwc-noise`:
//! `seed_from_u64`, `random::<f64>()`, `random::<u64>()`,
//! `random_bool(p)`, and `random_range(0..n)`.
//!
//! The streams are deterministic functions of the seed, which is the
//! only property the Monte Carlo engine relies on; they make no attempt
//! to be bit-compatible with any published `rand` release.

/// Seedable generators.
pub mod rngs {
    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        pub(crate) fn next_raw(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }
}

/// Types samplable uniformly from a generator ("standard" distribution).
pub trait StandardSample {
    fn sample_from(rng: &mut rngs::SmallRng) -> Self;
}

impl StandardSample for u64 {
    #[inline]
    fn sample_from(rng: &mut rngs::SmallRng) -> Self {
        rng.next_raw()
    }
}

impl StandardSample for f64 {
    #[inline]
    fn sample_from(rng: &mut rngs::SmallRng) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by `random_range`.
pub trait SampleRange {
    type Output;
    fn sample_from(self, rng: &mut rngs::SmallRng) -> Self::Output;
}

impl SampleRange for core::ops::Range<usize> {
    type Output = usize;
    #[inline]
    fn sample_from(self, rng: &mut rngs::SmallRng) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        // Multiply-shift bounded sampling (Lemire); the slight modulo
        // bias of the naive approach is irrelevant for simulation but
        // this is just as cheap.
        let hi = ((u128::from(rng.next_raw()) * u128::from(span)) >> 64) as u64;
        self.start + hi as usize
    }
}

/// The sampling trait surface used by `btwc-noise`.
pub trait Rng {
    /// Uniform sample of `T`'s standard distribution.
    fn random<T: StandardSample>(&mut self) -> T;
    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool;
    /// Uniform draw from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output;
}

impl Rng for rngs::SmallRng {
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_from(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        self.random::<f64>() < p
    }

    #[inline]
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u = rng.random::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn bool_mean_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let mean = hits as f64 / 100_000.0;
        assert!((mean - 0.3).abs() < 0.01, "mean {mean}");
    }
}
