//! Vendored no-op `#[derive(Serialize)]` (the build environment has no
//! network access, so the real `serde_derive` is unavailable).
//!
//! The workspace only uses `Serialize` as a forward-compatibility
//! marker on result structs — nothing serializes through serde at
//! runtime (the `bench` binaries hand-roll their JSON) — so deriving
//! nothing is sufficient for the code to compile unchanged against the
//! real crate later.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
