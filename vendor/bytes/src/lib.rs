//! Vendored, dependency-free stand-in for the parts of the `bytes`
//! crate this workspace uses (offline build): big-endian `Buf`/`BufMut`
//! accessors and the `Bytes`/`BytesMut` owner pair.

use std::ops::Deref;

/// An immutable byte buffer (here: a plain `Vec<u8>` behind `Deref`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with `cap` bytes reserved.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Converts into an immutable buffer without copying.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Write-side accessors (big endian, matching the real crate).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Read-side accessors consuming from the front (big endian).
///
/// # Panics
///
/// Like the real crate, the `get_*` methods panic when the buffer has
/// fewer bytes than requested — callers bounds-check first.
pub trait Buf {
    /// Discards the next `n` bytes.
    fn advance(&mut self, n: usize);

    /// Next `N` bytes as an array, consumed.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads a single byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let (head, rest) = self.split_at(N);
        *self = rest;
        head.try_into().expect("split_at returned N bytes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_header_fields() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32(7);
        buf.put_u64(123_456);
        buf.put_u16(3);
        buf.put_slice(&[0xAB, 0xCD]);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 16);
        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_u32(), 7);
        assert_eq!(rd.get_u64(), 123_456);
        assert_eq!(rd.get_u16(), 3);
        assert_eq!(rd, &[0xAB, 0xCD]);
        let mut rd2: &[u8] = &frozen;
        rd2.advance(14);
        assert_eq!(rd2.get_u16(), 0xABCD);
    }
}
