//! Frozen metric values and their canonical JSON form.
//!
//! The JSON emitted here is integer-only and sorted by metric name, so two
//! snapshots with identical metric state serialize to identical bytes — the
//! property the cycle-domain determinism pins compare.

use std::fmt::Write as _;
use std::sync::atomic::Ordering;

use crate::metrics::{bucket_upper, HISTOGRAM_BUCKETS};
use crate::registry::{Domain, Entry, MetricKind};

/// Value of one metric at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram {
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        p50: u64,
        p90: u64,
        p99: u64,
        /// Non-empty buckets as `(bucket upper bound, sample count)`.
        buckets: Vec<(u64, u64)>,
    },
    /// Counter family, one slot per index.
    Values(Vec<u64>),
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSnapshot {
    pub name: String,
    pub domain: Domain,
    pub value: MetricValue,
}

impl MetricSnapshot {
    pub(crate) fn capture(entry: &Entry) -> Self {
        let value = match &entry.kind {
            MetricKind::Counter(c) => MetricValue::Counter(c.get()),
            MetricKind::Gauge(g) => MetricValue::Gauge(g.get()),
            MetricKind::Histogram(h) => {
                let buckets = (0..HISTOGRAM_BUCKETS)
                    .filter_map(|b| {
                        // det: snapshots read quiesced counters (after
                        // pool joins); relaxed loads see final sums.
                        let n = h.0.buckets[b].load(Ordering::Relaxed);
                        (n != 0).then(|| (bucket_upper(b), n))
                    })
                    .collect();
                MetricValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    min: h.min(),
                    max: h.max(),
                    p50: h.percentile(50),
                    p90: h.percentile(90),
                    p99: h.percentile(99),
                    buckets,
                }
            }
            MetricKind::Family(f) => {
                // det: snapshots read quiesced counters (after pool
                // joins); relaxed loads see final sums.
                MetricValue::Values(f.0.iter().map(|c| c.load(Ordering::Relaxed)).collect())
            }
        };
        MetricSnapshot { name: entry.name.clone(), domain: entry.domain, value }
    }
}

/// A frozen, name-sorted set of metrics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    pub(crate) metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    pub fn metrics(&self) -> &[MetricSnapshot] {
        &self.metrics
    }

    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|m| m.name == name).map(|m| &m.value)
    }

    pub fn get_counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Keeps only metrics whose name starts with `prefix` — e.g.
    /// restrict a snapshot to the `machine.` namespace before pinning
    /// it against a run whose other components were instrumented
    /// differently. Name order (and so JSON byte-identity) is
    /// preserved.
    pub fn retain_prefix(&mut self, prefix: &str) {
        self.metrics.retain(|m| m.name.starts_with(prefix));
    }

    /// Canonical JSON: `{"schema":"btwc-telemetry-v1","metrics":{...}}` with
    /// metric names sorted, integer values only, no whitespace.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.metrics.len() * 64);
        out.push_str("{\"schema\":\"btwc-telemetry-v1\",\"metrics\":{");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", json_string(&m.name));
            let _ = write!(out, "{{\"domain\":\"{}\",", m.domain.as_str());
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"type\":\"counter\",\"value\":{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"type\":\"gauge\",\"value\":{v}");
                }
                MetricValue::Histogram { count, sum, min, max, p50, p90, p99, buckets } => {
                    let _ = write!(
                        out,
                        "\"type\":\"histogram\",\"count\":{count},\"sum\":{sum},\
                         \"min\":{min},\"max\":{max},\"p50\":{p50},\"p90\":{p90},\
                         \"p99\":{p99},\"buckets\":["
                    );
                    for (j, (upper, n)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{upper},{n}]");
                    }
                    out.push(']');
                }
                MetricValue::Values(vs) => {
                    out.push_str("\"type\":\"counter_family\",\"values\":[");
                    for (j, v) in vs.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{v}");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Folds `other` into `self`, metric by metric — the decode farm's
    /// fleet view over per-tenant registries.
    ///
    /// Same-name metrics aggregate by kind: counters and gauges sum
    /// (a fleet queue-depth gauge is the sum of tenant depths),
    /// histograms merge bucket-wise (count/sum add, min/max widen,
    /// percentiles recomputed from the merged buckets — exactly what
    /// one histogram fed both sample streams would report), counter
    /// families sum element-wise with the shorter side zero-padded.
    /// Metrics present only in `other` are inserted; a same-name
    /// kind or domain mismatch keeps `self`'s value (the inputs
    /// disagree about what the metric *is*, so no merge is
    /// meaningful). The result stays name-sorted, so `to_json` of a
    /// merged snapshot is canonical like any other.
    pub fn merge(&mut self, other: &Snapshot) {
        for m in &other.metrics {
            match self.metrics.binary_search_by(|probe| probe.name.as_str().cmp(&m.name)) {
                Err(pos) => self.metrics.insert(pos, m.clone()),
                Ok(pos) => {
                    let mine = &mut self.metrics[pos];
                    if mine.domain != m.domain {
                        continue;
                    }
                    match (&mut mine.value, &m.value) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                            *a = a.saturating_add(*b);
                        }
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => {
                            *a = a.saturating_add(*b);
                        }
                        (
                            MetricValue::Histogram { count, sum, min, max, p50, p90, p99, buckets },
                            MetricValue::Histogram {
                                count: c2,
                                sum: s2,
                                min: min2,
                                max: max2,
                                buckets: b2,
                                ..
                            },
                        ) => {
                            merge_buckets(buckets, b2);
                            if *count == 0 {
                                *min = *min2;
                                *max = *max2;
                            } else if *c2 > 0 {
                                *min = (*min).min(*min2);
                                *max = (*max).max(*max2);
                            }
                            *count = count.saturating_add(*c2);
                            *sum = sum.saturating_add(*s2);
                            *p50 = bucket_percentile(buckets, *count, *max, 50);
                            *p90 = bucket_percentile(buckets, *count, *max, 90);
                            *p99 = bucket_percentile(buckets, *count, *max, 99);
                        }
                        (MetricValue::Values(a), MetricValue::Values(b)) => {
                            if a.len() < b.len() {
                                a.resize(b.len(), 0);
                            }
                            for (slot, v) in a.iter_mut().zip(b) {
                                *slot = slot.saturating_add(*v);
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// Write [`Snapshot::to_json`] (plus a trailing newline) to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut text = self.to_json();
        text.push('\n');
        std::fs::write(path, text)
    }
}

/// Sums `extra`'s sparse `(upper, n)` buckets into `mine`, keeping the
/// upper bounds sorted (both sides come out of the same log₂ bucket
/// grid, so equal uppers are the same bucket).
fn merge_buckets(mine: &mut Vec<(u64, u64)>, extra: &[(u64, u64)]) {
    for &(upper, n) in extra {
        match mine.binary_search_by(|&(u, _)| u.cmp(&upper)) {
            Ok(pos) => mine[pos].1 = mine[pos].1.saturating_add(n),
            Err(pos) => mine.insert(pos, (upper, n)),
        }
    }
}

/// Percentile over sparse `(upper, n)` buckets — the same
/// rank-into-bucket-upper rule `Histogram::percentile` applies to its
/// dense bucket array.
fn bucket_percentile(buckets: &[(u64, u64)], count: u64, max: u64, pct: u64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((u128::from(count) * u128::from(pct)).div_ceil(100) as u64).max(1);
    let mut seen = 0u64;
    for &(upper, n) in buckets {
        seen += n;
        if seen >= rank {
            return upper;
        }
    }
    max
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn merge_matches_single_registry_fed_both_streams() {
        // Two tenant registries vs one registry fed both sample
        // streams: the merged snapshot must serialize identically.
        let combined = MetricsRegistry::new();
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        for (reg, lat_samples, depth) in
            [(&a, &[3u64, 17, 900][..], 2i64), (&b, &[1, 4, 4, 65_000][..], 5)]
        {
            reg.counter("farm.submissions", Domain::Cycles).add(lat_samples.len() as u64);
            combined.counter("farm.submissions", Domain::Cycles).add(lat_samples.len() as u64);
            let h = reg.histogram("farm.latency", Domain::Cycles);
            let hc = combined.histogram("farm.latency", Domain::Cycles);
            for &s in lat_samples {
                h.record(s);
                hc.record(s);
            }
            reg.gauge("farm.queue_depth", Domain::Cycles).set(depth);
            let f = reg.counter_family("farm.per_qubit", Domain::Cycles, 3);
            let fc = combined.counter_family("farm.per_qubit", Domain::Cycles, 3);
            f.add(1, depth as u64);
            fc.add(1, depth as u64);
        }
        combined.gauge("farm.queue_depth", Domain::Cycles).set(7); // 2 + 5
                                                                   // A tenant-only metric must survive the merge.
        b.counter("tenant.only", Domain::Cycles).add(9);
        combined.counter("tenant.only", Domain::Cycles).add(9);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.to_json(), combined.snapshot().to_json());
    }

    #[test]
    fn merge_empty_histogram_takes_other_side() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        let _ = a.histogram("h", Domain::Cycles);
        let hb = b.histogram("h", Domain::Cycles);
        hb.record(12);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.to_json(), b.snapshot().to_json());
    }

    #[test]
    fn json_is_sorted_valid_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last", Domain::Cycles).add(3);
        reg.counter("a.first", Domain::Cycles).inc();
        let h = reg.histogram("m.hist", Domain::Cycles);
        h.record(0);
        h.record(5);
        let f = reg.counter_family("m.family", Domain::Cycles, 3);
        f.add(1, 7);
        let json = reg.snapshot().to_json();
        crate::json::validate(&json).expect("snapshot JSON must parse");
        let a = json.find("a.first").unwrap();
        let m = json.find("m.hist").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < m && m < z, "metrics must be name-sorted");
        assert_eq!(json, reg.snapshot().to_json(), "same state, same bytes");
        assert!(json.contains("\"values\":[0,7,0]"));
        assert!(json.contains("\"buckets\":[[0,1],[7,1]]"));
    }
}
