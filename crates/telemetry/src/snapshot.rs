//! Frozen metric values and their canonical JSON form.
//!
//! The JSON emitted here is integer-only and sorted by metric name, so two
//! snapshots with identical metric state serialize to identical bytes — the
//! property the cycle-domain determinism pins compare.

use std::fmt::Write as _;
use std::sync::atomic::Ordering;

use crate::metrics::{bucket_upper, HISTOGRAM_BUCKETS};
use crate::registry::{Domain, Entry, MetricKind};

/// Value of one metric at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram {
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        p50: u64,
        p90: u64,
        p99: u64,
        /// Non-empty buckets as `(bucket upper bound, sample count)`.
        buckets: Vec<(u64, u64)>,
    },
    /// Counter family, one slot per index.
    Values(Vec<u64>),
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSnapshot {
    pub name: String,
    pub domain: Domain,
    pub value: MetricValue,
}

impl MetricSnapshot {
    pub(crate) fn capture(entry: &Entry) -> Self {
        let value = match &entry.kind {
            MetricKind::Counter(c) => MetricValue::Counter(c.get()),
            MetricKind::Gauge(g) => MetricValue::Gauge(g.get()),
            MetricKind::Histogram(h) => {
                let buckets = (0..HISTOGRAM_BUCKETS)
                    .filter_map(|b| {
                        // det: snapshots read quiesced counters (after
                        // pool joins); relaxed loads see final sums.
                        let n = h.0.buckets[b].load(Ordering::Relaxed);
                        (n != 0).then(|| (bucket_upper(b), n))
                    })
                    .collect();
                MetricValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    min: h.min(),
                    max: h.max(),
                    p50: h.percentile(50),
                    p90: h.percentile(90),
                    p99: h.percentile(99),
                    buckets,
                }
            }
            MetricKind::Family(f) => {
                // det: snapshots read quiesced counters (after pool
                // joins); relaxed loads see final sums.
                MetricValue::Values(f.0.iter().map(|c| c.load(Ordering::Relaxed)).collect())
            }
        };
        MetricSnapshot { name: entry.name.clone(), domain: entry.domain, value }
    }
}

/// A frozen, name-sorted set of metrics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    pub(crate) metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    pub fn metrics(&self) -> &[MetricSnapshot] {
        &self.metrics
    }

    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|m| m.name == name).map(|m| &m.value)
    }

    pub fn get_counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Canonical JSON: `{"schema":"btwc-telemetry-v1","metrics":{...}}` with
    /// metric names sorted, integer values only, no whitespace.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.metrics.len() * 64);
        out.push_str("{\"schema\":\"btwc-telemetry-v1\",\"metrics\":{");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", json_string(&m.name));
            let _ = write!(out, "{{\"domain\":\"{}\",", m.domain.as_str());
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"type\":\"counter\",\"value\":{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"type\":\"gauge\",\"value\":{v}");
                }
                MetricValue::Histogram { count, sum, min, max, p50, p90, p99, buckets } => {
                    let _ = write!(
                        out,
                        "\"type\":\"histogram\",\"count\":{count},\"sum\":{sum},\
                         \"min\":{min},\"max\":{max},\"p50\":{p50},\"p90\":{p90},\
                         \"p99\":{p99},\"buckets\":["
                    );
                    for (j, (upper, n)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{upper},{n}]");
                    }
                    out.push(']');
                }
                MetricValue::Values(vs) => {
                    out.push_str("\"type\":\"counter_family\",\"values\":[");
                    for (j, v) in vs.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{v}");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Write [`Snapshot::to_json`] (plus a trailing newline) to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut text = self.to_json();
        text.push('\n');
        std::fs::write(path, text)
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn json_is_sorted_valid_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last", Domain::Cycles).add(3);
        reg.counter("a.first", Domain::Cycles).inc();
        let h = reg.histogram("m.hist", Domain::Cycles);
        h.record(0);
        h.record(5);
        let f = reg.counter_family("m.family", Domain::Cycles, 3);
        f.add(1, 7);
        let json = reg.snapshot().to_json();
        crate::json::validate(&json).expect("snapshot JSON must parse");
        let a = json.find("a.first").unwrap();
        let m = json.find("m.hist").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < m && m < z, "metrics must be name-sorted");
        assert_eq!(json, reg.snapshot().to_json(), "same state, same bytes");
        assert!(json.contains("\"values\":[0,7,0]"));
        assert!(json.contains("\"buckets\":[[0,1],[7,1]]"));
    }
}
