//! Metric handles: cheap `Clone`able wrappers over shared atomics.
//!
//! All recording paths use relaxed atomic RMWs. Counter and histogram
//! updates are commutative, so totals are independent of the interleaving of
//! recording threads — the property the cycle-domain determinism pins rely
//! on.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log2 buckets in a [`Histogram`]: bucket 0 holds exact zeros,
/// bucket `b >= 1` holds values in `[2^(b-1), 2^b - 1]`, bucket 64 tops out
/// at `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Monotonically increasing event count.
#[derive(Clone, Debug)]
pub struct Counter(pub(crate) Arc<AtomicU64>);

impl Counter {
    pub(crate) fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    #[inline]
    pub fn inc(&self) {
        // det: fetch_add commutes — any interleaving yields the same sum.
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            // det: fetch_add commutes — any interleaving yields the same sum.
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        // det: read after pool quiescence; relaxed sees the final sum.
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (last write wins).
#[derive(Clone, Debug)]
pub struct Gauge(pub(crate) Arc<AtomicI64>);

impl Gauge {
    pub(crate) fn new() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        // det: gauges are set from single-owner cycle code (last write
        // wins is single-writer in practice); never feeds results.
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        // det: fetch_add commutes — any interleaving yields the same sum.
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        // det: read after pool quiescence; relaxed sees the final value.
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCells {
    pub(crate) buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    /// `u64::MAX` while empty.
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
}

/// Log2-bucketed distribution of `u64` samples.
///
/// Bucket boundaries are powers of two, so recording costs one
/// `leading_zeros` plus a handful of relaxed RMWs, and reported percentiles
/// are deterministic integers (the upper bound of the bucket the requested
/// rank falls in).
#[derive(Clone, Debug)]
pub struct Histogram(pub(crate) Arc<HistogramCells>);

/// Bucket index for a sample value.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Largest value stored in bucket `b`.
pub(crate) fn bucket_upper(b: usize) -> u64 {
    match b {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Histogram(Arc::new(HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    #[inline]
    pub fn record(&self, v: u64) {
        let cells = &*self.0;
        // det: every RMW below commutes (fetch_add sums, fetch_min/max
        // extrema), so the quiesced histogram is interleaving-free.
        cells.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // det: fetch_add commutes — any interleaving yields the same sum.
        cells.count.fetch_add(1, Ordering::Relaxed);
        // Gate the remaining RMWs behind relaxed loads: on steady-state hot
        // paths (e.g. a queue-depth histogram recording 0 every machine
        // cycle) min/max/sum almost never change, and a load that skips the
        // RMW keeps the cache line shared instead of bouncing it. The
        // load-then-RMW race is benign — the update itself is still
        // `fetch_min`/`fetch_max`, so the final extrema are exact.
        if v != 0 {
            // det: fetch_add commutes — any interleaving yields the same sum.
            cells.sum.fetch_add(v, Ordering::Relaxed);
        }
        // det: the gating load is an optimization only — a stale read
        // skips straight to the commuting fetch_min, so extrema are exact.
        if cells.min.load(Ordering::Relaxed) > v {
            // det: fetch_min commutes — the final minimum is order-free.
            cells.min.fetch_min(v, Ordering::Relaxed);
        }
        // det: the gating load is an optimization only — a stale read
        // skips straight to the commuting fetch_max, so extrema are exact.
        if cells.max.load(Ordering::Relaxed) < v {
            // det: fetch_max commutes — the final maximum is order-free.
            cells.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    pub fn count(&self) -> u64 {
        // det: read after pool quiescence; relaxed sees the final sum.
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        // det: read after pool quiescence; relaxed sees the final sum.
        self.0.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        // det: read after pool quiescence; relaxed sees the final extremum.
        self.0.max.load(Ordering::Relaxed)
    }

    pub fn min(&self) -> u64 {
        // det: read after pool quiescence; relaxed sees the final extremum.
        let m = self.0.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Upper bound of the bucket containing the `pct`-th percentile sample
    /// (rank `ceil(count * pct / 100)`), or 0 for an empty histogram.
    ///
    /// Integer-only, so the result is identical however the samples were
    /// interleaved across threads.
    pub fn percentile(&self, pct: u64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((u128::from(count) * u128::from(pct)).div_ceil(100) as u64).max(1);
        let mut seen = 0u64;
        for b in 0..HISTOGRAM_BUCKETS {
            // det: read after pool quiescence; relaxed sees final counts.
            seen += self.0.buckets[b].load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        self.max()
    }
}

/// Fixed-size family of counters indexed by a small integer id (per-qubit,
/// per-worker). Out-of-range indices are silently dropped so hot paths never
/// branch on ids the registrant did not size for.
#[derive(Clone, Debug)]
pub struct CounterFamily(pub(crate) Arc<Vec<AtomicU64>>);

impl CounterFamily {
    pub(crate) fn new(len: usize) -> Self {
        CounterFamily(Arc::new((0..len).map(|_| AtomicU64::new(0)).collect()))
    }

    #[inline]
    pub fn inc(&self, idx: usize) {
        if let Some(c) = self.0.get(idx) {
            // det: fetch_add commutes — any interleaving yields the same sum.
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, idx: usize, n: u64) {
        if n != 0 {
            if let Some(c) = self.0.get(idx) {
                // det: fetch_add commutes — any interleaving yields the same sum.
                c.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    pub fn get(&self, idx: usize) -> u64 {
        // det: read after pool quiescence; relaxed sees the final sum.
        self.0.get(idx).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// A two-domain span timer: a deterministic cycle-latency histogram plus an
/// optional wall-time histogram (nanoseconds, `wall-time` feature only).
#[derive(Clone, Debug)]
pub struct SpanTimer {
    pub(crate) cycles: Histogram,
    #[cfg(feature = "wall-time")]
    pub(crate) wall: Histogram,
}

impl SpanTimer {
    /// Record a span in machine cycles from `start_cycle` to `end_cycle`
    /// inclusive bounds chosen by the caller; saturates if reversed.
    #[inline]
    pub fn record_span(&self, start_cycle: u64, end_cycle: u64) {
        self.cycles.record(end_cycle.saturating_sub(start_cycle));
    }

    /// Record an already-computed latency in cycles.
    #[inline]
    pub fn record_latency(&self, cycles: u64) {
        self.cycles.record(cycles);
    }

    /// Deterministic cycle-domain histogram of this timer.
    pub fn cycles(&self) -> &Histogram {
        &self.cycles
    }

    /// Start a wall-clock measurement that records into the wall histogram
    /// when dropped. Compiles to a no-op without the `wall-time` feature.
    #[inline]
    pub fn wall_guard(&self) -> WallGuard {
        WallGuard {
            #[cfg(feature = "wall-time")]
            hist: self.wall.clone(),
            #[cfg(feature = "wall-time")]
            start: std::time::Instant::now(),
        }
    }
}

/// RAII guard returned by [`SpanTimer::wall_guard`]. Records the elapsed
/// wall time in nanoseconds on drop when the `wall-time` feature is enabled;
/// otherwise a zero-sized no-op.
#[must_use = "the span is measured from guard creation to drop"]
pub struct WallGuard {
    #[cfg(feature = "wall-time")]
    hist: Histogram,
    #[cfg(feature = "wall-time")]
    start: std::time::Instant,
}

impl Drop for WallGuard {
    fn drop(&mut self) {
        #[cfg(feature = "wall-time")]
        {
            let ns = self.start.elapsed().as_nanos();
            self.hist.record(u64::try_from(ns).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 5, 1023, 1024, u64::MAX] {
            assert!(v <= bucket_upper(bucket_index(v)));
        }
    }

    #[test]
    fn histogram_stats_and_percentiles() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50), 0);
        for v in [1u64, 1, 2, 3, 8, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 115);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        // rank(p50) = 3 -> third sample (2 or 3) -> bucket [2,3] -> 3
        assert_eq!(h.percentile(50), 3);
        // rank(p99) = 6 -> 100 -> bucket [64,127] -> 127
        assert_eq!(h.percentile(99), 127);
    }

    #[test]
    fn family_ignores_out_of_range() {
        let f = CounterFamily::new(2);
        f.inc(0);
        f.add(1, 5);
        f.inc(7);
        assert_eq!(f.get(0), 1);
        assert_eq!(f.get(1), 5);
        assert_eq!(f.get(7), 0);
        assert_eq!(f.len(), 2);
    }
}
