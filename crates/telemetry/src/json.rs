//! A minimal JSON syntax validator.
//!
//! The CI examples job needs to check that an emitted telemetry snapshot is
//! well-formed JSON without shelling out to `jq` or pulling a parser crate.
//! This is a strict recursive-descent validator over RFC 8259 grammar; it
//! does not build a document tree.

/// Validate that `s` is exactly one well-formed JSON value (plus surrounding
/// whitespace). Returns the byte offset of the first error.
pub fn validate(s: &str) -> Result<(), String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.depth += 1;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.depth += 1;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn digits(&mut self) -> Result<(), String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            Err(self.err("expected digits"))
        } else {
            Ok(())
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits()?,
            _ => return Err(self.err("bad number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_valid_json() {
        for s in [
            "null",
            "true",
            "-12.5e+3",
            "\"a\\n\\u0041\"",
            "[]",
            "[1,2,[3]]",
            "{}",
            r#"{"a":1,"b":{"c":[true,null]}}"#,
            "  { \"x\" : [ 1 , 2 ] }  ",
        ] {
            validate(s).unwrap_or_else(|e| panic!("rejected {s:?}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for s in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "\"\\x\"",
            "\"unterminated",
            "nulL",
            "{} extra",
            "{\"a\":1,}",
        ] {
            assert!(validate(s).is_err(), "accepted {s:?}");
        }
    }
}
