//! Deterministic observability for the btwc stack.
//!
//! The crate provides a [`MetricsRegistry`] into which components register
//! counters, gauges, log-bucketed histograms, and indexed counter families.
//! Handles are cheap `Clone`s over shared atomics: recording a value is a
//! single relaxed atomic RMW, registration is the only operation that takes a
//! lock. Components hold `Option<...>` handles, so a detached component pays
//! nothing beyond a branch on `None`.
//!
//! # Clock domains
//!
//! Every metric lives in one of three [`Domain`]s:
//!
//! * [`Domain::Cycles`] — values derived from the deterministic machine cycle
//!   counter (latencies in cycles, queue depths, event counts). All updates
//!   are commutative atomic increments, so cycle-domain snapshots are
//!   bit-identical for any `BTWC_WORKERS` and safe to pin in tests.
//! * [`Domain::Scheduling`] — values that depend on thread scheduling (tasks
//!   stolen, per-worker load). Real, but not reproducible across runs; they
//!   are excluded from determinism snapshots.
//! * [`Domain::Wall`] — wall-clock timings. Only populated when the
//!   `wall-time` cargo feature is enabled; never part of pinned snapshots.
//!
//! # Span timers
//!
//! A [`SpanTimer`] bundles a cycle-domain latency histogram with an optional
//! wall-time histogram. Cycle latencies are recorded explicitly via
//! [`SpanTimer::record_span`]; wall time is captured by the RAII
//! [`WallGuard`], which compiles to a no-op without the `wall-time` feature.
//!
//! # Snapshots
//!
//! [`MetricsRegistry::snapshot`] freezes every metric into a [`Snapshot`]
//! whose JSON form ([`Snapshot::to_json`]) is integer-only and sorted by
//! metric name, so identical metric states serialize to identical bytes.
//! [`MetricsRegistry::snapshot_domains`] restricts the snapshot to chosen
//! domains (determinism tests use `&[Domain::Cycles]`).

mod metrics;
mod registry;
mod snapshot;

pub mod json;

pub use metrics::{
    Counter, CounterFamily, Gauge, Histogram, SpanTimer, WallGuard, HISTOGRAM_BUCKETS,
};
pub use registry::{Domain, MetricsRegistry};
pub use snapshot::{MetricSnapshot, MetricValue, Snapshot};
