//! The metric registry: names, domains, and snapshotting.

use std::sync::{Arc, Mutex, PoisonError};

use crate::metrics::{Counter, CounterFamily, Gauge, Histogram, SpanTimer};
use crate::snapshot::{MetricSnapshot, Snapshot};

/// Clock/validity domain of a metric. See the crate docs for semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Domain {
    /// Derived from the deterministic machine cycle counter; bit-reproducible
    /// for any worker count.
    Cycles,
    /// Depends on thread scheduling (work stealing, per-worker load);
    /// excluded from determinism snapshots.
    Scheduling,
    /// Wall-clock time; only populated with the `wall-time` feature.
    Wall,
}

impl Domain {
    pub fn as_str(self) -> &'static str {
        match self {
            Domain::Cycles => "cycles",
            Domain::Scheduling => "scheduling",
            Domain::Wall => "wall",
        }
    }
}

#[derive(Clone)]
pub(crate) enum MetricKind {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    Family(CounterFamily),
}

pub(crate) struct Entry {
    pub(crate) name: String,
    pub(crate) domain: Domain,
    pub(crate) kind: MetricKind,
}

/// Shared, cheaply clonable registry of named metrics.
///
/// Registration takes a lock; the returned handles do not. Registering an
/// existing name with a matching metric kind returns a handle to the same
/// underlying cells, so repeated `attach_telemetry` calls accumulate into one
/// metric rather than shadowing it.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Vec<Entry>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let metrics = self.inner.lock().expect("registry poisoned").len();
        f.debug_struct("MetricsRegistry").field("metrics", &metrics).finish()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn register<T: Clone>(
        &self,
        name: &str,
        domain: Domain,
        make: impl FnOnce() -> (T, MetricKind),
        reuse: impl Fn(&MetricKind) -> Option<T>,
    ) -> T {
        // Registration mutates no metric values, so a poisoned lock
        // (a panicked registrant) leaves the registry fully usable.
        let mut entries = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match reuse(&e.kind) {
                Some(handle) => return handle,
                None => panic!("metric `{name}` re-registered with a different kind"),
            }
        }
        let (handle, kind) = make();
        entries.push(Entry { name: name.to_string(), domain, kind });
        handle
    }

    pub fn counter(&self, name: &str, domain: Domain) -> Counter {
        self.register(
            name,
            domain,
            || {
                let c = Counter::new();
                (c.clone(), MetricKind::Counter(c))
            },
            |k| match k {
                MetricKind::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    pub fn gauge(&self, name: &str, domain: Domain) -> Gauge {
        self.register(
            name,
            domain,
            || {
                let g = Gauge::new();
                (g.clone(), MetricKind::Gauge(g))
            },
            |k| match k {
                MetricKind::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    pub fn histogram(&self, name: &str, domain: Domain) -> Histogram {
        self.register(
            name,
            domain,
            || {
                let h = Histogram::new();
                (h.clone(), MetricKind::Histogram(h))
            },
            |k| match k {
                MetricKind::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Register a counter family of `len` slots (indices `0..len`).
    /// Re-registering reuses the existing family regardless of `len`.
    pub fn counter_family(&self, name: &str, domain: Domain, len: usize) -> CounterFamily {
        self.register(
            name,
            domain,
            || {
                let f = CounterFamily::new(len);
                (f.clone(), MetricKind::Family(f))
            },
            |k| match k {
                MetricKind::Family(f) => Some(f.clone()),
                _ => None,
            },
        )
    }

    /// Register a span timer: a `{name}_cycles` histogram in
    /// [`Domain::Cycles`] plus, with the `wall-time` feature, a
    /// `{name}_wall_ns` histogram in [`Domain::Wall`].
    pub fn span_timer(&self, name: &str) -> SpanTimer {
        let cycles = self.histogram(&format!("{name}_cycles"), Domain::Cycles);
        #[cfg(feature = "wall-time")]
        let wall = self.histogram(&format!("{name}_wall_ns"), Domain::Wall);
        SpanTimer {
            cycles,
            #[cfg(feature = "wall-time")]
            wall,
        }
    }

    /// Freeze every registered metric (all domains) into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        self.snapshot_filtered(|_| true)
    }

    /// Freeze only the metrics whose domain is in `domains`. Determinism
    /// pins use `&[Domain::Cycles]`.
    pub fn snapshot_domains(&self, domains: &[Domain]) -> Snapshot {
        self.snapshot_filtered(|d| domains.contains(&d))
    }

    fn snapshot_filtered(&self, keep: impl Fn(Domain) -> bool) -> Snapshot {
        // Snapshots only read; a poisoned lock cannot corrupt them.
        let entries = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut metrics: Vec<MetricSnapshot> =
            entries.iter().filter(|e| keep(e.domain)).map(MetricSnapshot::capture).collect();
        metrics.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn re_registration_shares_cells() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x", Domain::Cycles);
        let b = reg.counter("x", Domain::Cycles);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x", Domain::Cycles);
        let _ = reg.histogram("x", Domain::Cycles);
    }

    #[test]
    fn domain_filter() {
        let reg = MetricsRegistry::new();
        reg.counter("a", Domain::Cycles).inc();
        reg.counter("b", Domain::Scheduling).inc();
        let cyc = reg.snapshot_domains(&[Domain::Cycles]);
        assert!(cyc.get_counter("a").is_some());
        assert!(cyc.get_counter("b").is_none());
        let all = reg.snapshot();
        assert!(all.get_counter("b").is_some());
    }
}
