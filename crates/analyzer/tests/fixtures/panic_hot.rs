// PANIC-HOT fixture: positives on lines 5, 9, 14, and 22; negatives
// elsewhere.

fn positive_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn positive_expect(v: Option<u32>) -> u32 {
    v.expect("present")
}

fn positive_panic(v: Option<u32>) -> u32 {
    match v {
        None => panic!("missing"),
        Some(x) => x,
    }
}

fn positive_unreachable(v: u32) -> u32 {
    match v {
        0 => 1,
        _ => unreachable!(),
    }
}

fn negative(v: Option<u32>) -> u32 {
    // "v.unwrap()" in a comment or string must not fire, and `expect`
    // as a plain identifier (no `.`/`(` shape) must not either.
    let expect = v.unwrap_or(0);
    expect
}

#[cfg(test)]
mod tests {
    #[test]
    #[should_panic(expected = "missing")]
    fn tests_may_panic() {
        super::positive_panic(None);
    }
}
