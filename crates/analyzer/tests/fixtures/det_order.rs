// DET-ORDER fixture: positives on lines 3 and 7, negatives elsewhere.

use std::collections::HashMap;

fn positive() {
    // A "HashMap" in a comment or string must not fire.
    let m: HashMap<u32, u32> = Default::default();
    let _ = ("HashMap", m);
}

fn negative() {
    let m: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    let _ = m;
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_hash_types() {
        let m: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let _ = m;
    }
}
