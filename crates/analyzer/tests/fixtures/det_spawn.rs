// DET-SPAWN fixture: positives on lines 4 and 9, negative elsewhere.

fn positive_spawn() {
    let handle = std::thread::spawn(|| 1 + 1);
    let _ = handle.join();
}

fn positive_scope() {
    std::thread::scope(|s| {
        let _ = s;
    });
}

fn negative() {
    // thread::spawn named in a comment must not fire, nor must an
    // unrelated path like wakeup::spawn.
    let _ = "std::thread::spawn";
}
