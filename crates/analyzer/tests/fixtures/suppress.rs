// Suppression fixture: a used standalone allow, a used trailing allow,
// an unused allow (ALLOW-UNUSED), a missing reason (ALLOW-MALFORMED),
// and an unknown lint id (ALLOW-MALFORMED).

use std::collections::BTreeMap;

fn suppressed_standalone() {
    // btwc-allow(DET-ORDER): fixture demonstrates the standalone form
    let m: HashMap<u32, u32> = Default::default();
    let _ = m;
}

fn suppressed_trailing(v: Option<u32>) -> u32 {
    v.unwrap() // btwc-allow(PANIC-HOT): fixture demonstrates the trailing form
}

fn unused_allow() -> BTreeMap<u32, u32> {
    // btwc-allow(DET-WALL): nothing on the next line reads the clock
    BTreeMap::new()
}

fn missing_reason() {
    // btwc-allow(DET-ORDER)
    let m: HashMap<u32, u32> = Default::default();
    let _ = m;
}

fn unknown_lint(v: Option<u32>) -> u32 {
    // btwc-allow(NOT-A-LINT): no such lint exists
    v.unwrap_or(0)
}
