// DET-RNG fixture: positive on line 5, negatives elsewhere.

fn positive(pool: &Pool, tasks: &[u32], seed: u64) {
    let _ = pool.map(tasks, |i, _t| {
        let mut rng = SimRng::from_seed(seed);
        rng.next_u64() + i as u64
    });
}

fn negative_forked(pool: &Pool, tasks: &[u32], base: &SimRng) {
    let _ = pool.map(tasks, |i, _t| {
        let mut rng = SimRng::from_seed(base.fork(i as u64));
        rng.next_u64()
    });
}

fn negative_grid(pool: &Pool, points: &[u32], seed: u64) {
    let _ = pool.map_indices(points.len(), |i| {
        let mut rng = SimRng::new(grid_point_seed(seed, i));
        rng.next_u64()
    });
}

fn negative_outside_pool(seed: u64) -> u64 {
    // Seeding outside a pooled closure is the sanctioned single-stream
    // pattern.
    let mut rng = SimRng::from_seed(seed);
    rng.next_u64()
}
