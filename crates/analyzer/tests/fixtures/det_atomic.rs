// DET-ATOMIC fixture: positive on line 6, negatives elsewhere.

use std::sync::atomic::{AtomicU64, Ordering};

fn positive(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

fn negative_trailing(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed); // det: fetch_add commutes
}

fn negative_above(c: &AtomicU64) -> u64 {
    // det: read after quiescence; relaxed sees the final sum.
    c.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_need_no_justification() {
        let c = AtomicU64::new(0);
        c.store(7, Ordering::SeqCst);
    }
}
