// Clean fixture: near-miss spellings of every lint pattern; the
// analyzer must report nothing here.

use std::collections::BTreeMap;

/// Mentions of HashMap, Instant::now(), thread::spawn, and .unwrap()
/// in docs and comments are invisible to the lexer-based scan.
fn near_misses(v: Option<u32>) -> u32 {
    let banned = "HashMap Instant thread::spawn Ordering::Relaxed .unwrap()";
    let raw = r#"SystemTime::now() panic! unreachable!"#;
    let m: BTreeMap<&str, &str> = BTreeMap::new();
    let _ = (banned, raw, m);
    // unwrap_or / unwrap_or_else / expected are different identifiers.
    v.unwrap_or_else(|| 0)
}

fn lifetime_not_char<'a>(x: &'a u32) -> &'a u32 {
    x
}
