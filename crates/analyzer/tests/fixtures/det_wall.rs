// DET-WALL fixture: positive on line 4, negatives elsewhere.

fn positive() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}

#[cfg(feature = "wall-time")]
fn negative_gated() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}

#[cfg(feature = "wall-time")]
struct NegativeGatedStruct {
    started: std::time::SystemTime,
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time_things() {
        let _ = std::time::Instant::now();
    }
}
