//! Pins the exact finding set for the fixture corpus: one positive and
//! one negative case per lint, plus suppression hygiene (used,
//! trailing, unused, malformed). Any change to lint behavior must show
//! up here as an explicit diff.

use std::path::Path;
use std::process::Command;

use btwc_analyzer::analyze_root;

fn fixtures_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixture_corpus_findings_are_exact() {
    let report = analyze_root(&fixtures_dir()).expect("fixture scan succeeds");
    let got: Vec<(String, u32, String)> =
        report.findings.iter().map(|f| (f.file.clone(), f.line, f.lint.clone())).collect();
    let want: Vec<(String, u32, String)> = [
        ("det_atomic.rs", 6, "DET-ATOMIC"),
        ("det_order.rs", 3, "DET-ORDER"),
        ("det_order.rs", 7, "DET-ORDER"),
        ("det_rng.rs", 5, "DET-RNG"),
        ("det_spawn.rs", 4, "DET-SPAWN"),
        ("det_spawn.rs", 9, "DET-SPAWN"),
        ("det_wall.rs", 4, "DET-WALL"),
        ("panic_hot.rs", 5, "PANIC-HOT"),
        ("panic_hot.rs", 9, "PANIC-HOT"),
        ("panic_hot.rs", 14, "PANIC-HOT"),
        ("panic_hot.rs", 22, "PANIC-HOT"),
        ("suppress.rs", 18, "ALLOW-UNUSED"),
        ("suppress.rs", 23, "ALLOW-MALFORMED"),
        ("suppress.rs", 24, "DET-ORDER"),
        ("suppress.rs", 29, "ALLOW-MALFORMED"),
    ]
    .iter()
    .map(|(f, l, id)| (f.to_string(), *l, id.to_string()))
    .collect();
    assert_eq!(got, want, "fixture corpus finding set drifted");
    assert_eq!(report.files_scanned, 8, "fixture file count");
    assert_eq!(
        report.suppressions_used, 2,
        "the standalone and trailing btwc-allow forms must both be honored"
    );
}

#[test]
fn clean_fixture_stays_clean() {
    let report = analyze_root(&fixtures_dir()).expect("fixture scan succeeds");
    assert!(
        report.findings.iter().all(|f| f.file != "clean.rs"),
        "near-miss spellings in clean.rs must not fire: {:?}",
        report.findings.iter().filter(|f| f.file == "clean.rs").collect::<Vec<_>>()
    );
}

/// The CI gate contract: the binary exits 1 on a seeded-violation tree
/// and emits `btwc-analyzer-v1` JSON naming every finding.
#[test]
fn cli_gate_fails_on_seeded_violations_with_json() {
    let out = Command::new(env!("CARGO_BIN_EXE_btwc-analyzer"))
        .args(["--root"])
        .arg(fixtures_dir())
        .args(["--format", "json"])
        .output()
        .expect("analyzer binary runs");
    assert_eq!(out.status.code(), Some(1), "seeded violations must fail the gate");
    let json = String::from_utf8(out.stdout).expect("utf-8 report");
    assert!(json.contains("\"version\": \"btwc-analyzer-v1\""));
    assert!(json.contains("\"finding_count\": 15"));
    assert!(json.contains("\"lint\": \"DET-RNG\""));
    assert!(json.contains("\"file\": \"suppress.rs\""));
}

/// The workspace itself must be analyzer-clean: zero unsuppressed
/// findings, and every suppression carries a reason (malformed ones are
/// findings, so `is_clean` covers both halves of the contract).
#[test]
fn workspace_is_analyzer_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = analyze_root(&root).expect("workspace scan succeeds");
    assert!(report.is_clean(), "workspace has unsuppressed findings:\n{}", report.to_text());
    assert!(report.files_scanned > 50, "workspace scan saw too few files");
}
