//! `btwc-analyzer` — the workspace invariant linter.
//!
//! The repo's two load-bearing guarantees are *bit-identical results
//! for any `BTWC_WORKERS`* and *the machine never panics on a hostile
//! link*. Both are pinned dynamically by differential and fault-fuzz
//! tests, which can only catch a regression when the right interleaving
//! or fault fires. This crate makes the invariants statically
//! checkable: a small hand-rolled Rust lexer (comments, strings, char
//! literals, raw strings, and attributes handled correctly — this is
//! not grep) walks every workspace `.rs` file and enforces the project
//! lint catalog.
//!
//! # Lint catalog
//!
//! | Lint | Rationale |
//! |------|-----------|
//! | `DET-ORDER` | `HashMap`/`HashSet` iterate in randomized order, so any result assembled by iteration diverges run-to-run. Deterministic lib crates must use `BTreeMap`/`BTreeSet`/`Vec`. |
//! | `DET-WALL` | `Instant`/`SystemTime` leak wall time into results. Only `#[cfg(feature = "wall-time")]`-gated telemetry code (and bench binaries, which are out of scope) may read the clock; the default build is wall-clock-free. |
//! | `DET-SPAWN` | Raw `thread::spawn`/`thread::scope`/`thread::Builder` bypasses the pool's deterministic sharding; `btwc-pool` is the single crate allowed to touch `std::thread`. |
//! | `DET-RNG` | Seeding a `SimRng` inside a closure passed to a pool `map`/`map_indices`/`map_reduce`/`scope`/`spawn` call without `fork`/`grid_point_seed` replays one stream across every shard — the PR-3 sweep bug class. |
//! | `DET-ATOMIC` | Shared-atomic updates are only deterministic when they commute (order-independent). Every `Ordering::` site must carry a `// det:` comment justifying commutativity (or why ordering cannot reach results). |
//! | `PANIC-HOT` | The machine receive path, the transport/fault layer, and the sparse solver promise graceful degradation on hostile input. `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` are denied there; return typed errors or justify the invariant. |
//! | `ALLOW-UNUSED` | A `btwc-allow` that matched no finding — stale suppressions are findings so the allow inventory cannot rot. |
//! | `ALLOW-MALFORMED` | A `btwc-allow` missing its mandatory `: reason`, or naming an unknown lint. |
//!
//! # Suppression
//!
//! A finding is suppressed per site with
//! `// btwc-allow(LINT-ID): reason` — trailing on the offending line,
//! or standalone on the line(s) directly above it. The reason is
//! mandatory, and a suppression that stops matching anything becomes an
//! `ALLOW-UNUSED` finding itself.
//!
//! # Scope
//!
//! In workspace mode (the root contains a `[workspace]` manifest) the
//! scan covers `src/` and every `crates/*/src/`; vendored stand-ins
//! (`vendor/`), tool crates (`bench`, `testutil`, `analyzer`), tests,
//! examples, and `#[cfg(test)]` modules are out of scope. Pointed at
//! any other directory (fixture corpora), every lint applies to every
//! `.rs` file found.

pub mod config;
pub mod lexer;
pub mod lints;
pub mod report;

use std::fs;
use std::path::{Path, PathBuf};

pub use lints::{analyze_source, FileOutcome, FileSpec, LINTS};
pub use report::{Finding, Report};

/// Errors from a filesystem scan.
#[derive(Debug)]
pub enum ScanError {
    /// A directory or file could not be read.
    Io(PathBuf, std::io::Error),
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::Io(p, e) => write!(f, "cannot read {}: {e}", p.display()),
        }
    }
}

impl std::error::Error for ScanError {}

/// Whether `root` is a workspace root (its `Cargo.toml` declares
/// `[workspace]`). Decides scoping: workspace layout vs. fixture
/// corpus (all lints on every file).
#[must_use]
pub fn is_workspace_root(root: &Path) -> bool {
    fs::read_to_string(root.join("Cargo.toml")).map(|s| s.contains("[workspace]")).unwrap_or(false)
}

/// Recursively collects `.rs` files under `dir`, sorted by path so the
/// report order is deterministic.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), ScanError> {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .map_err(|e| ScanError::Io(dir.to_path_buf(), e))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated.
fn rel_str(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Scans `root` and returns the aggregated report.
///
/// # Errors
///
/// [`ScanError`] if a directory or source file cannot be read.
pub fn analyze_root(root: &Path) -> Result<Report, ScanError> {
    let workspace = is_workspace_root(root);
    let mut files = Vec::new();
    collect_rs(root, &mut files)?;
    let mut report = Report::default();
    for path in files {
        let rel = rel_str(root, &path);
        let spec = if workspace {
            match config::classify(&rel) {
                Some(spec) => spec,
                None => continue,
            }
        } else {
            FileSpec::all()
        };
        let src = fs::read_to_string(&path).map_err(|e| ScanError::Io(path.clone(), e))?;
        let outcome = analyze_source(&rel, &src, &spec);
        report.files_scanned += 1;
        report.suppressions_used += outcome.suppressions_used;
        report.findings.extend(outcome.findings);
    }
    report.findings.sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    Ok(report)
}
