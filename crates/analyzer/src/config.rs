//! Workspace scoping: which lints apply to which files.
//!
//! The determinism lints are properties of the *library* crates every
//! simulation result flows through. Tool crates (bench, testutil, the
//! analyzer itself), vendored dependency stand-ins, and test/example
//! code are out of scope — benches legitimately read the wall clock,
//! tests legitimately unwrap.

use crate::lints::FileSpec;

/// Tool crates: not part of the deterministic result path, skipped
/// entirely (their hygiene is covered by clippy, not by this gate).
const TOOL_CRATES: &[&str] = &["crates/bench/", "crates/testutil/", "crates/analyzer/"];

/// The no-panic hot paths: the machine receive path, the transport /
/// fault layer every frame crosses, the farm's admission + dispatch
/// path every escalation is serviced by, and the whole sparse solver.
const PANIC_HOT_FILES: &[&str] = &[
    "crates/core/src/machine.rs",
    "crates/bandwidth/src/transport.rs",
    "crates/bandwidth/src/fault.rs",
    "crates/farm/src/farm.rs",
];
const PANIC_HOT_PREFIXES: &[&str] = &["crates/sparse/src/"];

/// Classifies a workspace-relative path (`/`-separated). `None` means
/// the file is out of scope and is not scanned.
#[must_use]
pub fn classify(rel: &str) -> Option<FileSpec> {
    if rel.starts_with("vendor/") || rel.starts_with("target/") {
        return None;
    }
    if TOOL_CRATES.iter().any(|p| rel.starts_with(p)) {
        return None;
    }
    // Library sources only: integration tests, examples, and benches
    // may unwrap and time things freely.
    let in_lib_src = rel.starts_with("src/")
        || (rel.starts_with("crates/") && rel.split('/').nth(2) == Some("src"));
    if !in_lib_src {
        return None;
    }
    Some(FileSpec {
        determinism: true,
        // btwc-pool is the one crate allowed to touch std::thread.
        det_spawn: !rel.starts_with("crates/pool/"),
        panic_hot: PANIC_HOT_FILES.contains(&rel)
            || PANIC_HOT_PREFIXES.iter().any(|p| rel.starts_with(p)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_matches_the_lint_catalog() {
        assert!(classify("vendor/rand/src/lib.rs").is_none());
        assert!(classify("crates/bench/src/bin/bench.rs").is_none());
        assert!(classify("crates/analyzer/src/lints.rs").is_none());
        assert!(classify("crates/sparse/tests/properties.rs").is_none());
        assert!(classify("examples/quickstart.rs").is_none());

        let core = classify("crates/core/src/machine.rs").expect("in scope");
        assert!(core.panic_hot && core.determinism && core.det_spawn);
        let sparse = classify("crates/sparse/src/blossom.rs").expect("in scope");
        assert!(sparse.panic_hot);
        let pool = classify("crates/pool/src/pool.rs").expect("in scope");
        assert!(!pool.det_spawn && pool.determinism && !pool.panic_hot);
        let farm = classify("crates/farm/src/farm.rs").expect("in scope");
        assert!(farm.panic_hot && farm.determinism && farm.det_spawn);
        let root = classify("src/lib.rs").expect("in scope");
        assert!(root.determinism && !root.panic_hot);
    }
}
