//! Findings and the text / JSON report formats.

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the scanned root, `/`-separated.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Lint id (e.g. `PANIC-HOT`).
    pub lint: String,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {} {}", self.file, self.line, self.lint, self.message)
    }
}

/// Whole-run report.
#[derive(Debug, Default)]
pub struct Report {
    /// All unsuppressed findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// `btwc-allow` suppressions that matched a finding.
    pub suppressions_used: usize,
}

impl Report {
    /// Whether the scan is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// `file:line: LINT-ID message` lines plus a summary trailer.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "btwc-analyzer: {} file(s) scanned, {} finding(s), {} suppression(s) honored\n",
            self.files_scanned,
            self.findings.len(),
            self.suppressions_used
        ));
        out
    }

    /// Machine-readable report (`btwc-analyzer-v1` schema), hand-rolled
    /// so the gate tool itself carries no dependencies.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": \"btwc-analyzer-v1\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"suppressions_used\": {},\n", self.suppressions_used));
        out.push_str(&format!("  \"finding_count\": {},\n", self.findings.len()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"lint\": {}, \"message\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(&f.lint),
                json_str(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_renders_both_formats() {
        let r = Report {
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                lint: "DET-ORDER".into(),
                message: "HashMap".into(),
            }],
            files_scanned: 3,
            suppressions_used: 1,
        };
        assert!(r.to_text().contains("crates/x/src/lib.rs:7: DET-ORDER HashMap"));
        let json = r.to_json();
        assert!(json.contains("\"version\": \"btwc-analyzer-v1\""));
        assert!(json.contains("\"finding_count\": 1"));
        assert!(!r.is_clean());
    }
}
