//! The lint engine: walks one file's token stream and produces
//! findings, honoring `#[cfg(test)]` exclusion, `wall-time` feature
//! gating, and `// btwc-allow(LINT-ID): reason` suppressions.

use crate::lexer::{lex, TokKind, Token};
use crate::report::Finding;

/// Project lints, in catalog order. See the crate docs for the full
/// rationale of each.
pub const LINTS: &[(&str, &str)] = &[
    (
        "DET-ORDER",
        "HashMap/HashSet iteration order is nondeterministic; deterministic lib crates must \
         use BTreeMap/BTreeSet/Vec",
    ),
    (
        "DET-WALL",
        "Instant/SystemTime reads wall time; only `wall-time`-gated telemetry code and bench \
         binaries may touch the wall clock",
    ),
    (
        "DET-SPAWN",
        "raw std::thread spawning bypasses the deterministic pool; only btwc-pool may spawn \
         threads",
    ),
    (
        "DET-RNG",
        "constructing a SimRng from an unforked seed inside a pooled closure repeats the \
         stream across shards (the PR-3 bug class); derive shard seeds via fork/grid_point_seed",
    ),
    (
        "DET-ATOMIC",
        "every atomic Ordering site must carry a `// det:` comment justifying why the access \
         commutes (or why ordering cannot affect deterministic results)",
    ),
    (
        "PANIC-HOT",
        "unwrap/expect/panic!/unreachable!/todo!/unimplemented! are denied in the machine \
         receive path, the bandwidth transport/fault layer, and the sparse solver — the \
         no-panic-on-hostile-input contract",
    ),
    ("ALLOW-UNUSED", "a btwc-allow suppression that matched no finding"),
    (
        "ALLOW-MALFORMED",
        "a btwc-allow suppression missing its mandatory reason or naming an unknown lint",
    ),
];

/// The suppressible lints (`ALLOW-*` hygiene findings cannot themselves
/// be suppressed — fix the comment instead).
const SUPPRESSIBLE: &[&str] =
    &["DET-ORDER", "DET-WALL", "DET-SPAWN", "DET-RNG", "DET-ATOMIC", "PANIC-HOT"];

/// Which lints apply to one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileSpec {
    /// DET-ORDER, DET-WALL, DET-RNG, DET-ATOMIC (the deterministic-lib
    /// lint family).
    pub determinism: bool,
    /// DET-SPAWN (off inside btwc-pool, the one crate allowed to spawn).
    pub det_spawn: bool,
    /// PANIC-HOT (hot-path files only in workspace mode).
    pub panic_hot: bool,
}

impl FileSpec {
    /// Every lint on — fixture corpora and unknown layouts.
    #[must_use]
    pub fn all() -> Self {
        FileSpec { determinism: true, det_spawn: true, panic_hot: true }
    }
}

/// Outcome of analyzing one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Unsuppressed findings, in source order.
    pub findings: Vec<Finding>,
    /// Number of `btwc-allow` suppressions that matched a finding.
    pub suppressions_used: usize,
}

/// A parsed `// btwc-allow(LINT-ID): reason` comment.
#[derive(Debug)]
struct Suppression {
    line: u32,
    target_line: u32,
    lint: String,
    /// `None` when the mandatory reason is missing or blank.
    reason: Option<String>,
    used: bool,
}

/// Significant (non-comment) token with region flags.
struct Sig<'a> {
    kind: &'a TokKind,
    line: u32,
    /// Index into the raw token stream (comments included).
    raw: usize,
    in_attr: bool,
    in_test: bool,
    in_wall: bool,
}

/// Analyzes one file's source text under `spec`.
#[must_use]
pub fn analyze_source(file: &str, src: &str, spec: &FileSpec) -> FileOutcome {
    let tokens = lex(src);
    let mut sigs: Vec<Sig> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.kind.is_comment())
        .map(|(raw, t)| Sig {
            kind: &t.kind,
            line: t.line,
            raw,
            in_attr: false,
            in_test: false,
            in_wall: false,
        })
        .collect();
    let test_raw_spans = mark_regions(&mut sigs);

    let code_lines = code_lines(&sigs);
    let mut suppressions = collect_suppressions(&tokens, &test_raw_spans, &code_lines);

    let mut findings = run_lints(file, &sigs, &tokens, spec);

    // Apply suppressions: a finding is dropped when a well-formed
    // btwc-allow for its lint targets its line.
    let mut used = 0usize;
    findings.retain(|f| {
        for s in suppressions.iter_mut() {
            if s.reason.is_some() && s.lint == f.lint && s.target_line == f.line {
                s.used = true;
                used += 1;
                return false;
            }
        }
        true
    });

    // Suppression hygiene: malformed comments and unused suppressions
    // are findings themselves, so the allow inventory can never rot.
    for s in &suppressions {
        match &s.reason {
            None => findings.push(Finding {
                file: file.to_string(),
                line: s.line,
                lint: "ALLOW-MALFORMED".into(),
                message: format!("btwc-allow({}) is missing its mandatory `: reason`", s.lint),
            }),
            Some(_) if !SUPPRESSIBLE.contains(&s.lint.as_str()) => findings.push(Finding {
                file: file.to_string(),
                line: s.line,
                lint: "ALLOW-MALFORMED".into(),
                message: format!("btwc-allow names unknown lint `{}`", s.lint),
            }),
            Some(_) if !s.used => findings.push(Finding {
                file: file.to_string(),
                line: s.line,
                lint: "ALLOW-UNUSED".into(),
                message: format!(
                    "btwc-allow({}) matched no finding on line {} — remove it",
                    s.lint, s.target_line
                ),
            }),
            Some(_) => {}
        }
    }

    findings.sort_by(|a, b| (a.line, &a.lint).cmp(&(b.line, &b.lint)));
    FileOutcome { findings, suppressions_used: used }
}

/// Lines that contain at least one significant token (attributes count
/// as code; comments do not).
fn code_lines(sigs: &[Sig]) -> Vec<u32> {
    let mut lines: Vec<u32> = sigs.iter().map(|s| s.line).collect();
    lines.dedup();
    lines
}

/// Attribute parse result.
struct AttrInfo {
    /// Significant-index of the closing `]`.
    end: usize,
    /// Inner attribute (`#![...]`) — applies to the enclosing scope,
    /// never gates the next item.
    inner: bool,
    /// Contains a bare `test` cfg predicate (not under `not(...)`), or
    /// is `#[test]` itself.
    test: bool,
    /// Is `#[cfg(feature = "wall-time")]`-shaped (any cfg attribute
    /// naming the wall-time feature).
    wall: bool,
}

/// Parses the attribute starting at `sigs[k]` (`#`). Returns `None` if
/// `k` does not start an attribute.
fn parse_attr(sigs: &[Sig], k: usize) -> Option<AttrInfo> {
    if !matches!(sigs[k].kind, TokKind::Punct('#')) {
        return None;
    }
    let (inner, open) = match sigs.get(k + 1).map(|s| s.kind) {
        Some(TokKind::Punct('[')) => (false, k + 1),
        Some(TokKind::Punct('!')) => match sigs.get(k + 2).map(|s| s.kind) {
            Some(TokKind::Punct('[')) => (true, k + 2),
            _ => return None,
        },
        _ => return None,
    };
    let mut depth = 0i32;
    let mut end = open;
    let mut has_cfg = false;
    let mut has_feature = false;
    let mut wall_str = false;
    let mut test = false;
    let mut j = open;
    while j < sigs.len() {
        match sigs[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    end = j;
                    break;
                }
            }
            TokKind::Ident(id) => match id.as_str() {
                "cfg" | "cfg_attr" => has_cfg = true,
                "feature" => has_feature = true,
                // `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ..))]`
                // — but not `#[cfg(not(test))]`.
                "test" if !preceded_by_not(sigs, open, j) => test = true,
                _ => {}
            },
            TokKind::Str(s) if s == "wall-time" || s == "wall_time" => wall_str = true,
            _ => {}
        }
        j += 1;
    }
    if j >= sigs.len() {
        end = sigs.len() - 1;
    }
    Some(AttrInfo { end, inner, test, wall: has_cfg && has_feature && wall_str })
}

/// Whether the ident at `at` sits inside a `not(...)` group of the
/// attribute that opened at `open`.
fn preceded_by_not(sigs: &[Sig], open: usize, at: usize) -> bool {
    // Walk back through currently-open parens; if any opener is
    // preceded by the ident `not`, the predicate is negated.
    let mut depth = 0i32;
    let mut j = at;
    while j > open {
        j -= 1;
        match sigs[j].kind {
            TokKind::Punct(')') => depth += 1,
            TokKind::Punct('(') => {
                if depth == 0 {
                    if let Some(TokKind::Ident(id)) = j.checked_sub(1).map(|p| sigs[p].kind) {
                        if id == "not" {
                            return true;
                        }
                    }
                    // Keep scanning outward for enclosing groups.
                } else {
                    depth -= 1;
                }
            }
            _ => {}
        }
    }
    false
}

/// End (inclusive, significant index) of the item starting at `start`:
/// the first `,` or `;` at bracket depth zero, or the close of the
/// first top-level `{ ... }` block. Known approximation: a `,` inside
/// the generic parameters of a gated item terminates the span early
/// (angle brackets are not bracket tokens); gated items in this
/// workspace carry no generics, and the failure mode is a false
/// *positive*, never a silently-missed finding.
fn item_end(sigs: &[Sig], start: usize) -> usize {
    let mut depth = 0i32;
    let mut brace_open = false;
    let mut k = start;
    while k < sigs.len() {
        match sigs[k].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct('{') => {
                if depth == 0 {
                    brace_open = true;
                }
                depth += 1;
            }
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 && brace_open {
                    return k;
                }
            }
            TokKind::Punct(',') | TokKind::Punct(';') if depth == 0 => return k,
            _ => {}
        }
        k += 1;
    }
    sigs.len().saturating_sub(1)
}

/// Marks attribute interiors, `#[cfg(test)]`/`#[test]`-gated items, and
/// `wall-time`-gated items on the significant token stream. Returns the
/// test-gated spans as raw-token-index ranges (inclusive) so comment
/// tokens inside them can be identified too.
fn mark_regions(sigs: &mut [Sig]) -> Vec<(usize, usize)> {
    let mut test_raw_spans = Vec::new();
    let mut k = 0usize;
    while k < sigs.len() {
        let Some(info) = parse_attr(sigs, k) else {
            k += 1;
            continue;
        };
        for s in sigs[k..=info.end].iter_mut() {
            s.in_attr = true;
        }
        if info.inner || (!info.test && !info.wall) {
            k = info.end + 1;
            continue;
        }
        // Merge gating across the chained attribute run, marking the
        // chained attributes as attributes as we go.
        let mut test = info.test;
        let mut wall = info.wall;
        let mut m = info.end + 1;
        while m < sigs.len() {
            let Some(next) = parse_attr(sigs, m) else { break };
            for s in sigs[m..=next.end].iter_mut() {
                s.in_attr = true;
            }
            test |= next.test;
            wall |= next.wall;
            m = next.end + 1;
        }
        if m >= sigs.len() {
            break;
        }
        let end = item_end(sigs, m);
        if test {
            test_raw_spans.push((sigs[m].raw, sigs[end].raw));
            for s in sigs[m..=end].iter_mut() {
                s.in_test = true;
            }
        }
        if wall {
            for s in sigs[m..=end].iter_mut() {
                s.in_wall = true;
            }
        }
        // Continue scanning *inside* the item: nested attributes (and
        // nested test mods inside wall spans, etc.) still need marking.
        k = m;
    }
    test_raw_spans
}

/// Extracts `btwc-allow` suppressions from comments outside test code.
fn collect_suppressions(
    tokens: &[Token],
    test_raw_spans: &[(usize, usize)],
    code_lines: &[u32],
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (raw, tok) in tokens.iter().enumerate() {
        let Some(text) = tok.kind.comment_text() else { continue };
        if test_raw_spans.iter().any(|&(s, e)| raw >= s && raw <= e) {
            continue;
        }
        let mut rest = text;
        while let Some(at) = rest.find("btwc-allow(") {
            rest = &rest[at + "btwc-allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let lint = rest[..close].trim().to_string();
            let after = &rest[close + 1..];
            let reason = after
                .strip_prefix(':')
                .map(str::trim)
                .filter(|r| !r.is_empty())
                .map(str::to_string);
            let target_line = match code_lines.binary_search(&tok.line) {
                // Trailing comment: it covers its own line of code.
                Ok(_) => tok.line,
                // Standalone comment: it covers the next line of code.
                Err(pos) => code_lines.get(pos).copied().unwrap_or(tok.line),
            };
            out.push(Suppression { line: tok.line, target_line, lint, reason, used: false });
            rest = after;
        }
    }
    out
}

/// Runs the pattern lints over the significant token stream.
fn run_lints(file: &str, sigs: &[Sig], tokens: &[Token], spec: &FileSpec) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut det_atomic_lines: Vec<u32> = Vec::new();
    // DET-RNG bookkeeping: parenthesis depth, and the depth at which
    // each active pooled-call argument list opened.
    let mut paren_depth = 0i32;
    let mut pooled_calls: Vec<i32> = Vec::new();

    let ident = |k: usize| -> Option<&str> {
        match sigs.get(k).map(|s| s.kind) {
            Some(TokKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let punct = |k: usize, c: char| matches!(sigs.get(k).map(|s| s.kind), Some(TokKind::Punct(p)) if *p == c);
    let path_sep = |k: usize| punct(k, ':') && punct(k + 1, ':');

    let mut push = |lint: &str, line: u32, message: String| {
        findings.push(Finding { file: file.to_string(), line, lint: lint.to_string(), message });
    };

    for k in 0..sigs.len() {
        let s = &sigs[k];
        // Track call regions even inside skipped code so depths stay
        // consistent.
        match s.kind {
            TokKind::Punct('(') => {
                if !s.in_test
                    && !s.in_attr
                    && k >= 2
                    && punct(k.wrapping_sub(2), '.')
                    && matches!(
                        ident(k - 1),
                        Some("map" | "map_indices" | "map_reduce" | "spawn" | "scope")
                    )
                {
                    pooled_calls.push(paren_depth);
                }
                paren_depth += 1;
            }
            TokKind::Punct(')') => {
                paren_depth -= 1;
                while pooled_calls.last().is_some_and(|&d| d >= paren_depth) {
                    pooled_calls.pop();
                }
            }
            _ => {}
        }
        if s.in_test || s.in_attr {
            continue;
        }
        let TokKind::Ident(id) = s.kind else { continue };
        match id.as_str() {
            "HashMap" | "HashSet" if spec.determinism => {
                push(
                    "DET-ORDER",
                    s.line,
                    format!("{id} iterates in nondeterministic order; use BTreeMap/BTreeSet/Vec"),
                );
            }
            "Instant" | "SystemTime" if spec.determinism && !s.in_wall => {
                push(
                    "DET-WALL",
                    s.line,
                    format!(
                        "{id} reads the wall clock outside `wall-time`-gated code; \
                         deterministic builds must be wall-clock-free"
                    ),
                );
            }
            "thread" if spec.det_spawn && path_sep(k + 1) => {
                if let Some(m @ ("spawn" | "scope" | "Builder")) = ident(k + 3) {
                    push(
                        "DET-SPAWN",
                        s.line,
                        format!(
                            "thread::{m} outside btwc-pool; route parallelism through the \
                             deterministic pool"
                        ),
                    );
                }
            }
            "SimRng"
                if spec.determinism
                    && !pooled_calls.is_empty()
                    && path_sep(k + 1)
                    && matches!(ident(k + 3), Some("from_seed" | "new"))
                    && punct(k + 4, '(') =>
            {
                // Inspect the seed expression: forked or grid-derived
                // seeds are the sanctioned shard pattern.
                let mut depth = 0i32;
                let mut j = k + 4;
                let mut sanctioned = false;
                while j < sigs.len() {
                    match sigs[j].kind {
                        TokKind::Punct('(') => depth += 1,
                        TokKind::Punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        TokKind::Ident(arg) if arg == "fork" || arg == "grid_point_seed" => {
                            sanctioned = true;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if !sanctioned {
                    push(
                        "DET-RNG",
                        s.line,
                        "SimRng seeded inside a pooled closure without fork/grid_point_seed; \
                         every shard would replay the same stream"
                            .to_string(),
                    );
                }
            }
            "Ordering"
                if spec.determinism
                    && path_sep(k + 1)
                    && det_atomic_lines.last() != Some(&s.line)
                    && !has_det_comment(tokens, sigs, s.line) =>
            {
                det_atomic_lines.push(s.line);
                push(
                    "DET-ATOMIC",
                    s.line,
                    "atomic Ordering site lacks a `// det:` commutativity justification"
                        .to_string(),
                );
            }
            "unwrap" | "expect"
                if spec.panic_hot && k >= 1 && punct(k - 1, '.') && punct(k + 1, '(') =>
            {
                push(
                    "PANIC-HOT",
                    s.line,
                    format!(".{id}() in a no-panic hot path; return a typed error or justify"),
                );
            }
            m @ ("panic" | "unreachable" | "todo" | "unimplemented")
                if spec.panic_hot && punct(k + 1, '!') =>
            {
                push(
                    "PANIC-HOT",
                    s.line,
                    format!("{m}! in a no-panic hot path; return a typed error or justify"),
                );
            }
            _ => {}
        }
    }
    findings
}

/// Whether line `line` carries a `det:` justification: a comment on the
/// same line, or in the contiguous run of comment-only lines directly
/// above it.
fn has_det_comment(tokens: &[Token], sigs: &[Sig], line: u32) -> bool {
    let has_code: std::collections::BTreeSet<u32> = sigs.iter().map(|s| s.line).collect();
    let det_on = |l: u32| {
        tokens
            .iter()
            .any(|t| t.line == l && t.kind.comment_text().is_some_and(|c| c.contains("det:")))
    };
    if det_on(line) {
        return true;
    }
    let comment_lines: std::collections::BTreeSet<u32> =
        tokens.iter().filter(|t| t.kind.is_comment()).map(|t| t.line).collect();
    let mut l = line;
    while l > 1 {
        l -= 1;
        if has_code.contains(&l) {
            return false;
        }
        if comment_lines.contains(&l) {
            if det_on(l) {
                return true;
            }
        } else {
            // Blank line breaks the run.
            return false;
        }
    }
    false
}
