//! CLI entry point: `btwc-analyzer [--root PATH] [--format text|json]
//! [--list-lints]`.
//!
//! Exit status 0 when the scan is clean, 1 when any unsuppressed
//! finding exists, 2 on usage or I/O errors — so CI can gate merges on
//! the bare invocation.

use std::path::PathBuf;
use std::process::ExitCode;

use btwc_analyzer::{analyze_root, LINTS};

enum Format {
    Text,
    Json,
}

fn usage() -> &'static str {
    "usage: btwc-analyzer [--root PATH] [--format text|json] [--list-lints]\n\
     \n\
     Scans the workspace (or a fixture directory) for violations of the\n\
     project invariant lints. Exits 0 when clean, 1 on findings."
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("unknown format {other:?}\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--list-lints" => {
                for (id, rationale) in LINTS {
                    println!("{id}: {rationale}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let report = match analyze_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("btwc-analyzer: {e}");
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Text => print!("{}", report.to_text()),
        Format::Json => print!("{}", report.to_json()),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
