//! A small hand-rolled Rust lexer — just enough token structure to lint
//! source text without being fooled by comments, string/char/byte
//! literals, raw strings, lifetimes, or raw identifiers.
//!
//! This is deliberately not a full Rust grammar: the linter only needs
//! a faithful *token* stream with line numbers, where everything inside
//! a comment or a literal can never be mistaken for code. Anything the
//! lexer does not recognize structurally (e.g. an exotic literal
//! suffix) degrades to single-character punctuation tokens, which the
//! lint patterns simply fail to match — lexing never panics and never
//! drops input on the floor.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword. Raw identifiers (`r#match`) are unescaped
    /// to their bare name.
    Ident(String),
    /// String literal (plain, raw, byte, or C). The carried text is the
    /// raw source between the quotes, escapes untouched — enough for
    /// `#[cfg(feature = "...")]` matching, where no escapes occur.
    Str(String),
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Numeric literal (value not interpreted).
    Num,
    /// Lifetime (`'a`, `'static`) — distinct from a char literal.
    Lifetime,
    /// Any single punctuation character.
    Punct(char),
    /// `// ...` comment (doc comments included); text excludes the
    /// leading slashes.
    LineComment(String),
    /// `/* ... */` comment (nesting respected); text excludes the
    /// delimiters.
    BlockComment(String),
}

impl TokKind {
    /// Whether this token is a comment.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self, TokKind::LineComment(_) | TokKind::BlockComment(_))
    }

    /// The comment text, if this is a comment token.
    #[must_use]
    pub fn comment_text(&self) -> Option<&str> {
        match self {
            TokKind::LineComment(t) | TokKind::BlockComment(t) => Some(t),
            _ => None,
        }
    }
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Infallible: unrecognized bytes
/// become punctuation tokens.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { chars: src.chars().collect(), i: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, line: u32) {
        self.out.push(Token { kind, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c.is_whitespace() => self.i += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(0),
                '\'' => self.char_or_lifetime(),
                c if is_ident_start(c) => self.ident_or_prefixed(),
                c if c.is_ascii_digit() => self.number(),
                other => {
                    self.push(TokKind::Punct(other), self.line);
                    self.i += 1;
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.i + 2;
        let mut j = start;
        while j < self.chars.len() && self.chars[j] != '\n' {
            j += 1;
        }
        let text: String = self.chars[start..j].iter().collect();
        self.push(TokKind::LineComment(text), line);
        self.i = j;
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.i + 2;
        let mut depth = 1usize;
        let mut j = start;
        while j < self.chars.len() && depth > 0 {
            match self.chars[j] {
                '\n' => {
                    self.line += 1;
                    j += 1;
                }
                '/' if self.chars.get(j + 1) == Some(&'*') => {
                    depth += 1;
                    j += 2;
                }
                '*' if self.chars.get(j + 1) == Some(&'/') => {
                    depth -= 1;
                    j += 2;
                }
                _ => j += 1,
            }
        }
        let end = if depth == 0 { j - 2 } else { j };
        let text: String = self.chars[start..end.max(start)].iter().collect();
        self.push(TokKind::BlockComment(text), line);
        self.i = j;
    }

    /// Plain (escaped) string literal; `self.i` is at the opening quote.
    /// `prefix_len` chars before it (e.g. the `b` of `b"..."`) are part
    /// of the token but already consumed by the caller.
    fn string(&mut self, _prefix_len: usize) {
        let line = self.line;
        let start = self.i + 1;
        let mut j = start;
        while j < self.chars.len() {
            match self.chars[j] {
                '\\' => {
                    if self.chars.get(j + 1) == Some(&'\n') {
                        self.line += 1;
                    }
                    j += 2;
                }
                '"' => break,
                '\n' => {
                    self.line += 1;
                    j += 1;
                }
                _ => j += 1,
            }
        }
        let end = j.min(self.chars.len());
        let text: String = self.chars[start..end.max(start)].iter().collect();
        self.push(TokKind::Str(text), line);
        self.i = end + 1;
    }

    /// Raw string body: `self.i` is at the opening quote, with `hashes`
    /// `#`s required after the closing quote.
    fn raw_string(&mut self, hashes: usize) {
        let line = self.line;
        let start = self.i + 1;
        let mut j = start;
        while j < self.chars.len() {
            if self.chars[j] == '\n' {
                self.line += 1;
                j += 1;
                continue;
            }
            if self.chars[j] == '"' && (1..=hashes).all(|h| self.chars.get(j + h) == Some(&'#')) {
                break;
            }
            j += 1;
        }
        let end = j.min(self.chars.len());
        let text: String = self.chars[start..end.max(start)].iter().collect();
        self.push(TokKind::Str(text), line);
        self.i = (end + 1 + hashes).min(self.chars.len());
    }

    /// `'` starts either a lifetime (`'a`) or a char literal (`'a'`,
    /// `'\n'`, `'\u{1F600}'`).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let next = self.peek(1);
        // Lifetime: identifier after the quote, not closed by another
        // quote right away ('a' is a char, 'a is a lifetime).
        if let Some(c) = next {
            if is_ident_start(c) && self.peek(2).is_some_and(|c2| c2 != '\'') {
                let mut j = self.i + 2;
                while j < self.chars.len() && is_ident_continue(self.chars[j]) {
                    j += 1;
                }
                self.push(TokKind::Lifetime, line);
                self.i = j;
                return;
            }
        }
        // Char literal: consume to the closing quote, honoring escapes.
        let mut j = self.i + 1;
        while j < self.chars.len() {
            match self.chars[j] {
                '\\' => j += 2,
                '\'' => break,
                '\n' => break, // malformed; don't eat the file
                _ => j += 1,
            }
        }
        self.push(TokKind::Char, line);
        self.i = (j + 1).min(self.chars.len());
    }

    /// Identifier, keyword, raw identifier, or a string-literal prefix
    /// (`r"`, `r#"`, `b"`, `br#"`, `b'`, `c"`).
    fn ident_or_prefixed(&mut self) {
        let c = self.chars[self.i];
        // r"..." / r#"..."# raw strings, and r#ident raw identifiers.
        if c == 'r' {
            let mut h = 0usize;
            while self.peek(1 + h) == Some('#') {
                h += 1;
            }
            if self.peek(1 + h) == Some('"') {
                self.i += 1 + h;
                self.raw_string(h);
                return;
            }
            if h == 1 && self.peek(2).is_some_and(is_ident_start) {
                // Raw identifier: skip `r#`, lex the bare name.
                self.i += 2;
                self.bare_ident();
                return;
            }
        }
        // b"...", br#"..."#, b'x', c"..." prefixes.
        if c == 'b' || c == 'c' {
            if self.peek(1) == Some('"') {
                self.i += 1;
                self.string(1);
                return;
            }
            if c == 'b' && self.peek(1) == Some('\'') {
                self.i += 1;
                self.char_or_lifetime();
                return;
            }
            if c == 'b' && self.peek(1) == Some('r') {
                let mut h = 0usize;
                while self.peek(2 + h) == Some('#') {
                    h += 1;
                }
                if self.peek(2 + h) == Some('"') {
                    self.i += 2 + h;
                    self.raw_string(h);
                    return;
                }
            }
        }
        self.bare_ident();
    }

    fn bare_ident(&mut self) {
        let line = self.line;
        let start = self.i;
        let mut j = start;
        while j < self.chars.len() && is_ident_continue(self.chars[j]) {
            j += 1;
        }
        let text: String = self.chars[start..j].iter().collect();
        self.push(TokKind::Ident(text), line);
        self.i = j;
    }

    fn number(&mut self) {
        let line = self.line;
        let mut j = self.i;
        while j < self.chars.len() {
            let c = self.chars[j];
            if c.is_ascii_alphanumeric() || c == '_' {
                j += 1;
            } else if c == '.' && self.chars.get(j + 1).is_some_and(char::is_ascii_digit) {
                // `1.5` continues the number; `0..n` does not.
                j += 2;
            } else {
                break;
            }
        }
        self.push(TokKind::Num, line);
        self.i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap in /* a nested */ block */
            let s = "HashMap in a string";
            let r = r#"HashMap in a raw "quoted" string"#;
            let b = b"HashMap bytes";
            let real = BTreeMap::new();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"BTreeMap".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; let n = '\\n'; x }";
        let toks = lex(src);
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 3);
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_identifiers_unescape() {
        assert_eq!(idents("r#match r#unwrap"), vec!["match", "unwrap"]);
    }

    #[test]
    fn line_numbers_track_every_literal_form() {
        let src = "let a = \"two\nlines\";\nlet b = 1;\n/* c\nc */\nlet d = 2;";
        let toks = lex(src);
        let d_line = toks.iter().find(|t| t.kind == TokKind::Ident("d".into())).map(|t| t.line);
        assert_eq!(d_line, Some(6));
    }

    #[test]
    fn number_ranges_do_not_eat_dots() {
        let src = "for i in 0..n { x += 1.5; }";
        let puncts: Vec<char> = lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Punct(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(puncts.iter().filter(|&&c| c == '.').count(), 2, "{puncts:?}");
    }
}
