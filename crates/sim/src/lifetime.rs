//! Cycle-by-cycle lifetime simulation of one logical qubit.

use btwc_clique::{CliqueDecision, CliqueFrontend};
use btwc_core::{ComplexDecoder, DecoderBackend};
use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_noise::{SimRng, SparseFlips};
use btwc_pool::Pool;
use btwc_syndrome::{PackedBits, RoundHistory};
use serde::Serialize;

use crate::tracker::ErrorTracker;

/// Cycles per deterministic work shard. Small enough that a sweep over
/// a mixed-distance grid yields many more shards than workers (so
/// stealing can balance cheap d = 3 shards against expensive d ≥ 13
/// ones), large enough that per-shard pipeline construction stays in
/// the noise.
pub(crate) const SHARD_CYCLES: u64 = 8_192;

/// Splits `cfg` into its fixed shard plan: shard count and sizes depend
/// only on `cfg.cycles` (never on the worker count), and each shard's
/// RNG stream is forked from the root seed by shard index (see
/// [`crate::shard`]). Merging the shard results in plan order therefore
/// reproduces the same [`LifetimeStats`] on any pool.
pub(crate) fn shard_plan(cfg: &LifetimeConfig) -> Vec<LifetimeConfig> {
    crate::shard::shard_streams(cfg.cycles, SHARD_CYCLES, cfg.seed, crate::shard::LIFETIME_STREAM)
        .into_iter()
        .map(|(cycles, rng)| {
            let mut shard = *cfg;
            shard.cycles = cycles;
            shard.seed = rng.seed();
            shard
        })
        .collect()
}

/// Parameters of a lifetime run (builder style).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LifetimeConfig {
    /// Code distance (odd, ≥ 3).
    pub distance: u16,
    /// Physical error rate `p` for data-qubit errors per cycle.
    pub physical_error_rate: f64,
    /// Measurement flip rate per cycle (defaults to `p`, the paper's
    /// single-parameter model; settable separately for ablations).
    pub measurement_error_rate: f64,
    /// Number of cycles to simulate.
    pub cycles: u64,
    /// Sticky-filter depth of the Clique frontend (paper default 2).
    pub clique_rounds: usize,
    /// Which off-chip decoder resolves complex windows (the unified
    /// [`DecoderBackend`] registry).
    pub backend: DecoderBackend,
    /// RNG seed.
    pub seed: u64,
}

impl LifetimeConfig {
    /// Defaults: 100k cycles, two filter rounds, seed 0.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` (distance is validated by
    /// [`SurfaceCode::new`] at simulation start).
    #[must_use]
    pub fn new(distance: u16, physical_error_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&physical_error_rate),
            "error rate {physical_error_rate} out of [0,1]"
        );
        Self {
            distance,
            physical_error_rate,
            measurement_error_rate: physical_error_rate,
            cycles: 100_000,
            clique_rounds: 2,
            backend: DecoderBackend::default(),
            seed: 0,
        }
    }

    /// Overrides the measurement flip rate (ablation: the paper's model
    /// ties it to the data rate).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    #[must_use]
    pub fn with_measurement_error_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of [0,1]");
        self.measurement_error_rate = rate;
        self
    }

    /// Sets the cycle count.
    #[must_use]
    pub fn with_cycles(mut self, cycles: u64) -> Self {
        self.cycles = cycles;
        self
    }

    /// Sets the sticky-filter depth.
    #[must_use]
    pub fn with_clique_rounds(mut self, rounds: usize) -> Self {
        self.clique_rounds = rounds;
        self
    }

    /// Selects the off-chip decoder backend for complex windows.
    #[must_use]
    pub fn with_backend(mut self, backend: DecoderBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Deprecated spelling of [`LifetimeConfig::with_backend`].
    #[deprecated(note = "use LifetimeConfig::with_backend")]
    #[must_use]
    pub fn with_offchip(self, backend: DecoderBackend) -> Self {
        self.with_backend(backend)
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Counters accumulated over a lifetime run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LifetimeStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Cycles whose (filtered) signature was all zeros.
    pub all_zeros: u64,
    /// Cycles decoded trivially on-chip (the paper's Local-1s).
    pub trivial: u64,
    /// Cycles flagged complex and shipped off-chip.
    pub complex: u64,
    /// Data-qubit flips applied by the on-chip Clique decoder.
    pub onchip_corrected_qubits: u64,
    /// Data-qubit flips applied by the off-chip MWPM decoder.
    pub offchip_corrected_qubits: u64,
    /// Histogram of the *raw* per-cycle syndrome weight
    /// (`raw_weight_histogram[w]` = cycles whose raw round had `w` lit
    /// ancillas) — feeds the AFS compression comparison.
    pub raw_weight_histogram: Vec<u64>,
    /// Number of ancillas per round (one stabilizer type).
    pub num_ancillas: usize,
}

impl LifetimeStats {
    fn new(num_ancillas: usize) -> Self {
        Self {
            cycles: 0,
            all_zeros: 0,
            trivial: 0,
            complex: 0,
            onchip_corrected_qubits: 0,
            offchip_corrected_qubits: 0,
            raw_weight_histogram: vec![0; num_ancillas + 1],
            num_ancillas,
        }
    }

    /// Fraction of decodes handled on-chip (Fig. 11's y-axis).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.cycles == 0 {
            return 1.0;
        }
        (self.all_zeros + self.trivial) as f64 / self.cycles as f64
    }

    /// Fraction of decodes that go off-chip (`1 - coverage`).
    #[must_use]
    pub fn offchip_fraction(&self) -> f64 {
        1.0 - self.coverage()
    }

    /// Of the on-chip decodes, the fraction that actually carried errors
    /// (Fig. 12's y-axis): all-zero handling needs no decoder at all,
    /// so this is the share of Clique's coverage that earns its keep.
    #[must_use]
    pub fn nonzero_onchip_fraction(&self) -> f64 {
        let onchip = self.all_zeros + self.trivial;
        if onchip == 0 {
            return 0.0;
        }
        self.trivial as f64 / onchip as f64
    }

    /// Fraction of cycles whose *raw* round was all zeros.
    #[must_use]
    pub fn raw_all_zero_fraction(&self) -> f64 {
        if self.cycles == 0 {
            return 1.0;
        }
        self.raw_weight_histogram[0] as f64 / self.cycles as f64
    }

    /// Merges another run's counters (e.g. from a worker thread).
    ///
    /// # Panics
    ///
    /// Panics if the ancilla counts differ.
    pub fn merge(&mut self, other: &LifetimeStats) {
        assert_eq!(self.num_ancillas, other.num_ancillas, "incompatible stats");
        self.cycles += other.cycles;
        self.all_zeros += other.all_zeros;
        self.trivial += other.trivial;
        self.complex += other.complex;
        self.onchip_corrected_qubits += other.onchip_corrected_qubits;
        self.offchip_corrected_qubits += other.offchip_corrected_qubits;
        for (a, b) in self.raw_weight_histogram.iter_mut().zip(&other.raw_weight_histogram) {
            *a += b;
        }
    }
}

/// The per-cycle decode pipeline of the paper's Fig. 2 for one logical
/// qubit: noise → syndrome round → Clique frontend → on-chip correction
/// or off-chip matching (dense MWPM or sparse-blossom, per
/// [`LifetimeConfig::with_backend`]).
pub struct LifetimeSim {
    cfg: LifetimeConfig,
    code: SurfaceCode,
    tracker: ErrorTracker,
    frontend: CliqueFrontend,
    /// The selected off-chip matcher, used through its `&mut` decode
    /// path (each worker owns its decoder, so no lock is ever
    /// contended).
    offchip: Box<dyn ComplexDecoder + Send + Sync>,
    window: RoundHistory,
    rng: SimRng,
    /// Reused packed buffer for the current raw measurement round.
    round: PackedBits,
    stats: LifetimeStats,
}

impl std::fmt::Debug for LifetimeSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LifetimeSim")
            .field("cfg", &self.cfg)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl LifetimeSim {
    /// Builds the pipeline for `cfg`.
    #[must_use]
    pub fn new(cfg: &LifetimeConfig) -> Self {
        let ty = StabilizerType::X;
        let code = SurfaceCode::new(cfg.distance);
        let tracker = ErrorTracker::new(&code, ty);
        let frontend = CliqueFrontend::with_rounds(&code, ty, cfg.clique_rounds);
        let offchip = cfg.backend.build(&code, ty);
        let n_anc = code.num_ancillas(ty);
        // Off-chip window: enough rounds for space-time matching; reset
        // when a complex decode resolves it, slid when it fills up.
        let window = RoundHistory::new(n_anc, usize::from(cfg.distance).max(4) * 4);
        let stats = LifetimeStats::new(n_anc);
        Self {
            cfg: *cfg,
            rng: SimRng::from_seed(cfg.seed),
            round: PackedBits::new(n_anc),
            code,
            tracker,
            frontend,
            offchip,
            window,
            stats,
        }
    }

    /// The code being simulated.
    #[must_use]
    pub fn code(&self) -> &SurfaceCode {
        &self.code
    }

    /// Advances one cycle; returns whether this cycle needed an off-chip
    /// decode.
    pub fn step(&mut self) -> bool {
        let p = self.cfg.physical_error_rate;
        // 1. Inject this cycle's data errors (accumulate, straight off
        //    the sparse sampler — no per-cycle allocation)...
        let n_data = self.code.num_data_qubits();
        for q in SparseFlips::new(&mut self.rng, n_data, p) {
            self.tracker.flip(q);
        }
        // 2. The raw measurement round: a word copy of the packed
        //    syndrome, with transient measurement flips toggled in.
        let n_anc = self.stats.num_ancillas;
        let pm = self.cfg.measurement_error_rate;
        self.round.copy_from(self.tracker.syndrome());
        for a in SparseFlips::new(&mut self.rng, n_anc, pm) {
            self.round.toggle(a);
        }
        let weight = self.round.weight();
        self.stats.raw_weight_histogram[weight] += 1;
        // 3. Feed the decode window. A full window *slides* (pushing
        //    retires the oldest round and re-bases surviving detection
        //    events), so an escalation always sees the freshest history
        //    and streaming backends can reuse their incremental state.
        //    While the window is empty, all-zero rounds are skipped:
        //    they carry no detection events and only shift event times
        //    uniformly, so the space-time matching is unchanged while
        //    the dominant quiet case stays copy-free.
        if !(self.window.is_empty() && self.round.is_zero()) {
            self.window.push_packed(&self.round);
        }
        // 4. Clique decision on the sticky-filtered syndrome.
        self.stats.cycles += 1;
        match self.frontend.push_round_packed(&self.round) {
            CliqueDecision::AllZeros => {
                self.stats.all_zeros += 1;
                false
            }
            CliqueDecision::Trivial(c) => {
                self.stats.trivial += 1;
                self.stats.onchip_corrected_qubits += c.weight() as u64;
                self.tracker.apply(c.qubits());
                false
            }
            CliqueDecision::Complex => {
                self.stats.complex += 1;
                let c = self.offchip.decode_stream_mut(&self.window);
                self.stats.offchip_corrected_qubits += c.weight() as u64;
                self.tracker.apply(c.qubits());
                // The window is consumed; the sticky filter needs no
                // reset — post-correction rounds clear it naturally.
                self.window.reset();
                true
            }
        }
    }

    /// Runs to completion, returning the accumulated statistics.
    #[must_use]
    pub fn run(mut self) -> LifetimeStats {
        for _ in 0..self.cfg.cycles {
            let _ = self.step();
        }
        self.stats
    }

    /// Runs to completion, also returning the per-cycle off-chip flag
    /// trace (input to the bandwidth study).
    #[must_use]
    pub fn run_with_trace(mut self) -> (LifetimeStats, Vec<bool>) {
        let mut trace = Vec::with_capacity(self.cfg.cycles as usize);
        for _ in 0..self.cfg.cycles {
            trace.push(self.step());
        }
        (self.stats, trace)
    }

    /// Runs `cfg` on a `workers`-wide work-stealing pool and merges the
    /// statistics — shorthand for [`LifetimeSim::run_pooled`] on a
    /// freshly sized [`Pool`].
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn run_parallel(cfg: &LifetimeConfig, workers: usize) -> LifetimeStats {
        Self::run_pooled(cfg, &Pool::new(workers))
    }

    /// Runs `cfg`'s fixed shard plan on `pool` and merges the shard
    /// statistics in plan order.
    ///
    /// The shard plan depends only on `cfg` (see [`shard_plan`]), so
    /// the returned stats are **bit-identical for any worker count** —
    /// the pool decides where shards run, never what they compute.
    #[must_use]
    pub fn run_pooled(cfg: &LifetimeConfig, pool: &Pool) -> LifetimeStats {
        let plan = shard_plan(cfg);
        let shard_stats = pool.map(&plan, |_, shard| LifetimeSim::new(shard).run());
        let mut merged: Option<LifetimeStats> = None;
        for stats in shard_stats {
            match &mut merged {
                None => merged = Some(stats),
                Some(m) => m.merge(&stats),
            }
        }
        merged.expect("at least one shard ran")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_noise_is_all_zeros_forever() {
        let cfg = LifetimeConfig::new(3, 0.0).with_cycles(1000);
        let stats = LifetimeSim::new(&cfg).run();
        assert_eq!(stats.all_zeros, 1000);
        assert_eq!(stats.complex, 0);
        assert!((stats.coverage() - 1.0).abs() < 1e-12);
        assert!((stats.raw_all_zero_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counters_are_consistent() {
        let cfg = LifetimeConfig::new(5, 2e-3).with_cycles(30_000).with_seed(3);
        let stats = LifetimeSim::new(&cfg).run();
        assert_eq!(stats.cycles, 30_000);
        assert_eq!(stats.all_zeros + stats.trivial + stats.complex, stats.cycles);
        let hist_total: u64 = stats.raw_weight_histogram.iter().sum();
        assert_eq!(hist_total, stats.cycles);
    }

    #[test]
    fn coverage_is_high_at_practical_rates() {
        // Paper Fig. 11: >90% on-chip at p=1e-3 for moderate distances.
        let cfg = LifetimeConfig::new(7, 1e-3).with_cycles(50_000).with_seed(11);
        let stats = LifetimeSim::new(&cfg).run();
        assert!(stats.coverage() > 0.90, "coverage {}", stats.coverage());
        assert!(stats.complex > 0, "complex decodes must occur at p=1e-3");
    }

    #[test]
    fn coverage_falls_with_error_rate() {
        let lo = LifetimeSim::new(&LifetimeConfig::new(7, 5e-4).with_cycles(40_000).with_seed(1))
            .run()
            .coverage();
        let hi = LifetimeSim::new(&LifetimeConfig::new(7, 8e-3).with_cycles(40_000).with_seed(1))
            .run()
            .coverage();
        assert!(lo > hi, "coverage must fall with p: {lo} vs {hi}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = LifetimeConfig::new(5, 3e-3).with_cycles(20_000).with_seed(42);
        let a = LifetimeSim::new(&cfg).run();
        let b = LifetimeSim::new(&cfg).run();
        assert_eq!(a, b);
    }

    #[test]
    fn trace_matches_complex_count() {
        let cfg = LifetimeConfig::new(5, 5e-3).with_cycles(20_000).with_seed(9);
        let (stats, trace) = LifetimeSim::new(&cfg).run_with_trace();
        let offchip = trace.iter().filter(|&&t| t).count() as u64;
        assert_eq!(offchip, stats.complex);
        assert_eq!(trace.len(), 20_000);
    }

    #[test]
    fn residual_errors_stay_bounded() {
        // The decode loop must not accumulate an unbounded error state —
        // every detectable error eventually gets corrected.
        let cfg = LifetimeConfig::new(7, 5e-3).with_cycles(30_000).with_seed(5);
        let mut sim = LifetimeSim::new(&cfg);
        for _ in 0..30_000 {
            let _ = sim.step();
        }
        // After the run, the live error weight should be small (only
        // in-flight, not-yet-confirmed errors remain detectable; quiet
        // residuals are stabilizers or logicals, which are rare).
        assert!(
            sim.tracker.syndrome_weight() < 20,
            "syndrome weight {} keeps growing",
            sim.tracker.syndrome_weight()
        );
    }

    #[test]
    fn sparse_backend_matches_dense_quality() {
        // The sparse matcher is exact, so a lifetime stream decoded with
        // it must show the same coverage signature (identical cycle
        // classification — the Clique frontend is untouched) and keep
        // the residual error just as bounded.
        let base = LifetimeConfig::new(7, 4e-3).with_cycles(30_000).with_seed(17);
        let dense = LifetimeSim::new(&base).run();
        let sparse = LifetimeSim::new(&base.with_backend(DecoderBackend::SparseBlossom)).run();
        assert_eq!(dense.cycles, sparse.cycles);
        assert!(sparse.complex > 0, "complex decodes must occur");
        // Classification happens before the off-chip decode, and both
        // matchers clear the window equivalently, so the coverage
        // trajectories stay statistically indistinguishable.
        let delta = (dense.coverage() - sparse.coverage()).abs();
        assert!(
            delta < 0.01,
            "coverage drifted: dense {} sparse {}",
            dense.coverage(),
            sparse.coverage()
        );
    }

    #[test]
    fn parallel_run_merges_all_cycles() {
        let cfg = LifetimeConfig::new(5, 1e-3).with_cycles(40_000).with_seed(21);
        let stats = LifetimeSim::run_parallel(&cfg, 4);
        assert_eq!(stats.cycles, 40_000);
        assert_eq!(stats.all_zeros + stats.trivial + stats.complex, 40_000);
    }

    #[test]
    fn more_filter_rounds_suppress_measurement_flukes() {
        // Isolate measurement noise: with data errors off, every complex
        // decode is a measurement fluke that leaked through the filter.
        // A k-round filter leaks at p^k, so k=3 sees far fewer than k=2.
        let base = LifetimeConfig::new(5, 0.0)
            .with_measurement_error_rate(0.05)
            .with_cycles(60_000)
            .with_seed(13);
        let k2 = LifetimeSim::new(&base).run();
        let k3 = LifetimeSim::new(&base.with_clique_rounds(3)).run();
        assert!(k2.complex > 100, "k=2 must leak flukes, got {}", k2.complex);
        assert!(
            (k3.complex as f64) < 0.3 * k2.complex as f64,
            "k=3 complex {} vs k=2 complex {}",
            k3.complex,
            k2.complex
        );
    }
}
