//! Monte Carlo lifetime simulation — the paper's evaluation methodology
//! (Sec. 6.1) as a library.
//!
//! Two simulation modes drive every figure in the paper:
//!
//! * **Lifetime** ([`LifetimeSim`]) — one logical qubit decoded cycle by
//!   cycle for millions of cycles: errors are injected, the Clique
//!   frontend filters and decides, trivial decodes are corrected
//!   on-chip, complex ones go to the space-time MWPM decoder. Produces
//!   the signature distribution (Fig. 4), Clique coverage (Fig. 11),
//!   the non-all-zeros on-chip fraction (Fig. 12), and — via the raw
//!   syndrome weight histogram — the AFS bandwidth comparison (Fig. 13).
//! * **Shots** ([`logical_error_rate`]) — fixed windows of `d` noisy
//!   rounds plus a perfect readout round, decoded either by MWPM alone
//!   (the baseline) or by Clique+MWPM (the proposal), counting logical
//!   failures (Fig. 14).
//!
//! Multi-qubit off-chip demand traces for the bandwidth study (Figs. 9
//! and 16) come from [`multi_qubit_trace`] / [`offchip_probability`].
//!
//! Everything is deterministic given a seed. Parallel execution runs on
//! the workspace's work-stealing pool ([`Pool`], re-exported here):
//! work is split into *fixed* shards with RNG streams forked by shard
//! index and merged in shard order, so every result — [`LifetimeStats`],
//! [`LerEstimate`], sweep points — is **bit-identical regardless of the
//! worker count** (override it globally with `BTWC_WORKERS`). The grid
//! sweeps ([`coverage_sweep`], [`coverage_sweep_iid`]) submit all
//! `(p, d) × shard` tasks to one pool at once, so stealing balances
//! cheap low-distance points against expensive high-distance ones
//! instead of barriering per point; each point's seed is forked from
//! its grid position ([`grid_point_seed`]), decorrelating points while
//! keeping every one individually reproducible. Both engines pick
//! their off-chip decoder through the unified [`DecoderBackend`]
//! registry (`with_backend` on either config): dense MWPM, the
//! weight-equal sparse-blossom decoder, union-find, the lookup table,
//! or a custom factory — each used through its lock-free `&mut`
//! decode path, one decoder per worker, no synchronization per
//! complex decode.
//!
//! # Example
//!
//! ```
//! use btwc_sim::{LifetimeConfig, LifetimeSim};
//!
//! let cfg = LifetimeConfig::new(5, 1e-3).with_cycles(20_000).with_seed(7);
//! let stats = LifetimeSim::new(&cfg).run();
//! assert!(stats.coverage() > 0.9, "Clique covers the common case");
//! ```

mod farm;
mod ler;
mod lifetime;
mod machine;
mod multi;
mod shard;
mod sweep;
mod tracker;

// Both engines take an off-chip decoder choice through their configs;
// re-export the unified selector so sim users don't need a separate
// `btwc_core` import. Likewise the pool, so callers can size one
// (`Pool::auto()`) without a `btwc_pool` import.
pub use btwc_core::DecoderBackend;
#[allow(deprecated)]
pub use btwc_core::OffchipBackend;
pub use btwc_pool::Pool;
// The decode-farm service tier: the fleet driver lives here, the farm
// itself in `btwc_farm` (re-exported so fleet callers need one import).
pub use btwc_farm::{DecodeFarm, FarmConfig, SnapshotExport, TenantId, TenantSubmission};
pub use farm::{machine_farm_trace, FarmRun, FarmTenant, FarmTenantRun};
pub use ler::{
    logical_error_rate, logical_error_rate_parallel, DecoderKind, LerEstimate, ShotConfig,
};
pub use lifetime::{LifetimeConfig, LifetimeSim, LifetimeStats};
pub use machine::{
    machine_fault_sweep, machine_fault_trace, machine_offchip_trace,
    machine_offchip_trace_telemetry, FaultSweepPoint,
};
pub use multi::{multi_qubit_trace, offchip_probability};
pub use sweep::{
    afs_comparison, coverage_sweep, coverage_sweep_iid, grid_point_seed, signature_distribution,
    signature_distribution_iid, AfsComparison, CoveragePoint, SignatureDistribution,
};
pub use tracker::ErrorTracker;
