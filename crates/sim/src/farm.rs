//! Multi-machine closed-loop simulation through the shared decode farm.
//!
//! [`machine_farm_trace`] is the service-tier counterpart of
//! [`crate::machine_offchip_trace`]: `N` independent machines (tenants)
//! run the same closed noise → machine → correction loop, but every
//! cycle their surviving escalations are submitted into one
//! [`DecodeFarm`] instead of each machine decoding inline. The driver
//! is lockstep — one [`DecodeFarm::service_cycle`] per machine cycle —
//! so the whole fleet run is deterministic in the tenant configs for
//! any `BTWC_WORKERS` and either pool mode.
//!
//! Each tenant keeps the exact per-qubit RNG fork schedule of the
//! single-machine driver (forked from *its own* `cfg.seed` by qubit
//! index), so under a [`FarmConfig::generous`] farm every tenant's
//! outcomes, stats, and `machine.*` cycle-domain telemetry are
//! **bit-identical** to an inline [`crate::machine_offchip_trace`] run
//! of the same config — the service-conformance pin in
//! `tests/farm_conformance.rs`.

use btwc_core::{
    BtwcMachine, LinkFaultModel, MachineStats, StabilizerType, SurfaceCode, TransportStats,
};
use btwc_farm::{DecodeFarm, FarmConfig, SnapshotExport, TenantSubmission};
use btwc_noise::{SimRng, SparseFlips};
use btwc_pool::Pool;
use btwc_syndrome::{PackedBits, SyndromeBatch};
use btwc_telemetry::{Domain, MetricsRegistry};

use crate::lifetime::LifetimeConfig;
use crate::tracker::ErrorTracker;

/// One machine of a [`machine_farm_trace`] fleet.
#[derive(Debug, Clone)]
pub struct FarmTenant {
    /// The tenant's lifetime config: distance, error rates, cycles,
    /// off-chip backend, and the seed its per-qubit RNG streams fork
    /// from. `cycles` must agree across the fleet (lockstep driver).
    pub cfg: LifetimeConfig,
    /// Logical qubits on this machine.
    pub num_qubits: usize,
    /// Off-chip link bandwidth in decodes per cycle.
    pub bandwidth: usize,
    /// Optional faulty-link model for this tenant's off-chip transport.
    pub fault: Option<(LinkFaultModel, u64)>,
}

impl FarmTenant {
    /// A fault-free tenant.
    #[must_use]
    pub fn new(cfg: LifetimeConfig, num_qubits: usize, bandwidth: usize) -> Self {
        FarmTenant { cfg, num_qubits, bandwidth, fault: None }
    }

    /// Routes this tenant's escalations across a faulty link.
    #[must_use]
    pub fn with_fault(mut self, model: LinkFaultModel, link_seed: u64) -> Self {
        self.fault = Some((model, link_seed));
        self
    }
}

/// One tenant's results from a [`machine_farm_trace`] run — the same
/// quantities the single-machine drivers report, plus the tenant's
/// cycle-domain telemetry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmTenantRun {
    /// Machine aggregates (stalls, backlog, frame bytes).
    pub stats: MachineStats,
    /// Receiver-side transport observations.
    pub transport: TransportStats,
    /// Per-cycle off-chip demand trace.
    pub trace: Vec<usize>,
    /// Total residual syndrome weight across the tenant's qubits at the
    /// end of the run.
    pub residual_syndrome_weight: u64,
    /// Qubits ending the run in a logical-error state.
    pub logical_errors: u64,
    /// The tenant's cycle-domain `btwc-telemetry-v1` snapshot
    /// (`machine.*` metrics; the backend decoder metrics live in the
    /// farm's slots, not the tenant registry).
    pub telemetry_json: String,
}

/// Everything a fleet run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmRun {
    /// Per-tenant results, in [`machine_farm_trace`] argument order.
    pub tenants: Vec<FarmTenantRun>,
    /// Cadence-exported per-tenant snapshots (empty unless
    /// [`FarmConfig::snapshot_cadence`] is set).
    pub exports: Vec<SnapshotExport>,
    /// The fleet-wide cycle-domain snapshot: `farm.*` metrics merged
    /// with every tenant's registry.
    pub aggregate_json: String,
    /// Final modeled farm queue depth (matches the `farm.queue_depth`
    /// gauge).
    pub final_queue_depth: u64,
}

/// Per-tenant driver state for the lockstep loop.
struct TenantState {
    machine: BtwcMachine,
    code: SurfaceCode,
    rngs: Vec<SimRng>,
    trackers: Vec<ErrorTracker>,
    batch: SyndromeBatch,
    round: PackedBits,
    trace: Vec<usize>,
    registry: MetricsRegistry,
    num_qubits: usize,
    n_data: usize,
    n_anc: usize,
    p: f64,
    pm: f64,
}

/// Drives `tenants.len()` machines in lockstep through one shared
/// [`DecodeFarm`] on `pool` for `tenants[0].cfg.cycles` cycles.
///
/// Every cycle each machine runs
/// [`BtwcMachine::step_deferred`](btwc_core::BtwcMachine::step_deferred),
/// all surviving escalations are submitted to the farm in tenant order,
/// and the responses are folded back with
/// [`BtwcMachine::complete`](btwc_core::BtwcMachine::complete) before
/// corrections land on the per-qubit error trackers.
///
/// # Panics
///
/// Panics if `tenants` is empty, any tenant has zero qubits or
/// bandwidth, or the tenants disagree on `cfg.cycles`.
#[must_use]
pub fn machine_farm_trace(tenants: &[FarmTenant], config: FarmConfig, pool: Pool) -> FarmRun {
    assert!(!tenants.is_empty(), "a farm fleet needs at least one tenant");
    let cycles = tenants[0].cfg.cycles;
    assert!(
        tenants.iter().all(|t| t.cfg.cycles == cycles),
        "lockstep fleet: every tenant must run the same cycle count"
    );

    let ty = StabilizerType::X;
    let mut farm = DecodeFarm::new(pool, config);
    let mut states: Vec<TenantState> = Vec::with_capacity(tenants.len());
    for tenant in tenants {
        let cfg = &tenant.cfg;
        let code = SurfaceCode::new(cfg.distance);
        let n_anc = code.num_ancillas(ty);
        let n_data = code.num_data_qubits();
        let registry = MetricsRegistry::new();
        let mut builder = BtwcMachine::builder(&code, ty, tenant.num_qubits, tenant.bandwidth)
            .clique_rounds(cfg.clique_rounds)
            .backend(cfg.backend)
            .telemetry(&registry);
        if let Some((model, link_seed)) = tenant.fault {
            builder = builder.fault_model(model).link_seed(link_seed);
        }
        let machine = builder.build();
        // Same decode-window sizing as the machine's own wire
        // scratch (MachineBuilder default); the farm widens on
        // demand if a request ever carries more rounds.
        let window_rounds = usize::from(code.distance()).max(4) * 4;
        farm.register_tenant(
            &format!("tenant-{}", farm.num_tenants()),
            &code,
            ty,
            &cfg.backend,
            window_rounds,
            &registry,
        );
        let root = SimRng::from_seed(cfg.seed);
        let rngs = (0..tenant.num_qubits)
            .map(|q| SimRng::from_seed(root.fork(crate::shard::QUBIT_STREAM + q as u64).seed()))
            .collect();
        let trackers = (0..tenant.num_qubits).map(|_| ErrorTracker::new(&code, ty)).collect();
        states.push(TenantState {
            machine,
            rngs,
            trackers,
            batch: SyndromeBatch::new(tenant.num_qubits, n_anc),
            round: PackedBits::new(n_anc),
            trace: Vec::with_capacity(cycles as usize),
            registry,
            num_qubits: tenant.num_qubits,
            n_data,
            n_anc,
            p: cfg.physical_error_rate,
            pm: cfg.measurement_error_rate,
            code,
        });
    }

    for _ in 0..cycles {
        // Phase 1: every tenant samples noise and runs its cycle up to
        // (not including) the off-chip decodes.
        let pendings: Vec<_> = states
            .iter_mut()
            .map(|st| {
                for q in 0..st.num_qubits {
                    let rng = &mut st.rngs[q];
                    for flip in SparseFlips::new(rng, st.n_data, st.p) {
                        st.trackers[q].flip(flip);
                    }
                    st.round.copy_from(st.trackers[q].syndrome());
                    for a in SparseFlips::new(rng, st.n_anc, st.pm) {
                        st.round.toggle(a);
                    }
                    st.batch.set_qubit_round(q, &st.round);
                }
                st.machine.step_deferred(&st.batch)
            })
            .collect();

        // Phase 2: one farm service cycle over the fleet's escalations.
        let submissions: Vec<TenantSubmission<'_>> = pendings
            .iter()
            .enumerate()
            .map(|(i, pending)| TenantSubmission {
                tenant: btwc_farm::TenantId(i),
                jobs: pending.jobs(),
            })
            .collect();
        let responses = farm.service_cycle(&submissions);
        drop(submissions);

        // Phase 3: fold responses back and close each tenant's loop.
        for ((st, pending), resp) in states.iter_mut().zip(pendings).zip(responses) {
            let cycle = st.machine.complete(pending, resp);
            for (tracker, out) in st.trackers.iter_mut().zip(&cycle.outcomes) {
                if let Some(c) = out.correction() {
                    tracker.apply(c.qubits());
                }
            }
            st.trace.push(cycle.offchip_requests);
        }
    }

    let aggregate_json = farm.aggregate_snapshot().to_json();
    let final_queue_depth = farm.queue_depth();
    let exports = farm.take_exports();
    let tenants_out = states
        .into_iter()
        .map(|st| {
            let residual_syndrome_weight =
                st.trackers.iter().map(|t| t.syndrome_weight() as u64).sum::<u64>();
            let logical_errors =
                st.trackers.iter().filter(|t| st.code.is_logical_error(ty, t.errors())).count()
                    as u64;
            FarmTenantRun {
                stats: st.machine.stats(),
                transport: st.machine.transport_stats(),
                trace: st.trace,
                residual_syndrome_weight,
                logical_errors,
                telemetry_json: {
                    // The tenant's own cycle-domain view. Restricted to
                    // `machine.*` because the registry also carries the
                    // machine's (unused-in-farm-mode) private decoder
                    // registrations — the conformance pin compares the
                    // machine namespace against the inline driver.
                    let mut snap = st.registry.snapshot_domains(&[Domain::Cycles]);
                    snap.retain_prefix("machine.");
                    snap.to_json()
                },
            }
        })
        .collect();

    FarmRun { tenants: tenants_out, exports, aggregate_json, final_queue_depth }
}
