//! Deterministic shard planning shared by every parallel sim engine.
//!
//! The worker-count-independence contract lives in one shape: split the
//! total work into fixed shards whose count and sizes depend only on
//! the configuration, and fork each shard's RNG stream from the root
//! seed by shard index. Every engine plans through [`shard_streams`] so
//! a change to that shape (or to the stream layout) cannot silently
//! diverge between engines.
//!
//! Stream layout: each engine owns a disjoint slice of the fork-stream
//! space via a high-bit base tag (shard indices stay far below 2⁴⁰ for
//! any realistic budget). Small additive offsets would not be enough —
//! shard indices are unbounded, so a multi-million-shard lifetime plan
//! would walk into another engine's streams under a shared root seed
//! and replay its samples.

use btwc_noise::SimRng;

/// Lifetime-engine shard streams (cycles).
pub(crate) const LIFETIME_STREAM: u64 = 0;
/// Shot-engine shard streams (LER shots).
pub(crate) const SHOT_STREAM: u64 = 1 << 40;
/// Iid-trial shard streams (signature distributions).
pub(crate) const IID_STREAM: u64 = 2 << 40;
/// Grid-point root seeds (sweeps; see [`crate::grid_point_seed`]).
pub(crate) const GRID_STREAM: u64 = 3 << 40;
/// Per-qubit streams ([`crate::multi_qubit_trace`]).
pub(crate) const QUBIT_STREAM: u64 = 4 << 40;

/// Splits `total` work units into fixed `shard_size`-unit shards:
/// `(units, forked RNG)` per shard, depending only on `(total, seed)` —
/// never on the worker count. Merging shard results in plan order is
/// what makes every parallel engine bit-identical across pools.
pub(crate) fn shard_streams(
    total: u64,
    shard_size: u64,
    seed: u64,
    stream_base: u64,
) -> Vec<(u64, SimRng)> {
    let shards = total.div_ceil(shard_size).max(1);
    let per = total / shards;
    let extra = total % shards;
    let root = SimRng::from_seed(seed);
    (0..shards).map(|s| (per + u64::from(s < extra), root.fork(stream_base + s))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_depends_only_on_total_and_seed() {
        let a = shard_streams(100_000, 8_192, 7, LIFETIME_STREAM);
        let b = shard_streams(100_000, 8_192, 7, LIFETIME_STREAM);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len() as u64, 100_000u64.div_ceil(8_192));
        let units: u64 = a.iter().map(|(n, _)| n).sum();
        assert_eq!(units, 100_000, "shards partition the total exactly");
        for ((na, ra), (nb, rb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(ra.seed(), rb.seed());
        }
    }

    #[test]
    fn zero_total_yields_one_empty_shard() {
        let plan = shard_streams(0, 8_192, 3, SHOT_STREAM);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].0, 0);
    }

    #[test]
    fn engine_stream_spaces_are_disjoint() {
        // The regression the bases exist for: under one root seed, a
        // large plan in one engine must never fork the stream another
        // engine's shard 0 uses (an additive offset like the old
        // `s + 0x1E4` collided once the plan exceeded 484 shards).
        let seed = 9;
        let root = SimRng::from_seed(seed);
        let bases = [LIFETIME_STREAM, SHOT_STREAM, IID_STREAM, GRID_STREAM, QUBIT_STREAM];
        let mut seeds: Vec<u64> = Vec::new();
        for base in bases {
            // Probe each engine's space at its start and deep inside.
            for s in [0u64, 0x1E4, 0x51D, 1 << 20, (1 << 40) - 1] {
                seeds.push(root.fork(base + s).seed());
            }
        }
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), n, "cross-engine stream collision");
    }
}
