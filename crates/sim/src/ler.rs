//! Shot-based logical error rate estimation (Fig. 14).

use btwc_clique::{CliqueDecision, CliqueFrontend};
use btwc_core::DecoderBackend;
use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_noise::{SimRng, SparseFlips};
use btwc_pool::Pool;
use btwc_syndrome::{PackedBits, RoundHistory};
use serde::Serialize;

use crate::tracker::ErrorTracker;

/// Shots per deterministic work shard (each shot is `rounds` decode
/// cycles, so shards are comparable in weight to the lifetime engine's
/// [`crate::lifetime::SHARD_CYCLES`]-cycle shards).
pub(crate) const SHARD_SHOTS: u64 = 256;

/// Splits `cfg` into its fixed shard plan (shard count and seeds depend
/// only on `cfg`, never on the worker count — RNG streams live in the
/// shot engine's slice of the fork space, see [`crate::shard`]);
/// merging shard estimates in plan order reproduces the same
/// [`LerEstimate`] on any pool.
pub(crate) fn shard_plan(cfg: &ShotConfig) -> Vec<ShotConfig> {
    crate::shard::shard_streams(cfg.shots, SHARD_SHOTS, cfg.seed, crate::shard::SHOT_STREAM)
        .into_iter()
        .map(|(shots, rng)| {
            let mut shard = *cfg;
            shard.shots = shots;
            shard.seed = rng.seed();
            shard
        })
        .collect()
}

/// Which decode pipeline a shot uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DecoderKind {
    /// The paper's baseline: every round's syndrome goes off-chip and
    /// the whole window is matched at once by MWPM.
    MwpmOnly,
    /// The proposal: Clique handles trivial cycles on-chip; complex
    /// cycles (and the end-of-window cleanup) fall back to MWPM.
    CliquePlusMwpm,
}

/// Parameters of a logical-error-rate measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ShotConfig {
    /// Code distance.
    pub distance: u16,
    /// Physical error rate (data and measurement).
    pub physical_error_rate: f64,
    /// Noisy measurement rounds per shot (the paper's convention: `d`).
    pub rounds: usize,
    /// Number of shots.
    pub shots: u64,
    /// Clique sticky-filter depth (used by `CliquePlusMwpm` only).
    pub clique_rounds: usize,
    /// Which off-chip decoder resolves the shipped windows (the
    /// unified [`DecoderBackend`] registry).
    pub backend: DecoderBackend,
    /// RNG seed.
    pub seed: u64,
}

impl ShotConfig {
    /// Defaults: `d` rounds per shot, 10k shots, 2 filter rounds.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn new(distance: u16, physical_error_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&physical_error_rate),
            "error rate {physical_error_rate} out of [0,1]"
        );
        Self {
            distance,
            physical_error_rate,
            rounds: usize::from(distance),
            shots: 10_000,
            clique_rounds: 2,
            backend: DecoderBackend::default(),
            seed: 0,
        }
    }

    /// Sets the shot count.
    #[must_use]
    pub fn with_shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Sets the rounds per shot.
    #[must_use]
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the Clique sticky-filter depth.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn with_clique_rounds(mut self, rounds: usize) -> Self {
        assert!(rounds >= 1, "sticky filter needs at least one round");
        self.clique_rounds = rounds;
        self
    }

    /// Selects the off-chip decoder backend for shipped windows.
    #[must_use]
    pub fn with_backend(mut self, backend: DecoderBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Deprecated spelling of [`ShotConfig::with_backend`].
    #[deprecated(note = "use ShotConfig::with_backend")]
    #[must_use]
    pub fn with_offchip(self, backend: DecoderBackend) -> Self {
        self.with_backend(backend)
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of a logical-error-rate measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LerEstimate {
    /// Shots simulated.
    pub shots: u64,
    /// Shots ending in a logical error.
    pub failures: u64,
    /// Shots in which Clique raised at least one complex (off-chip)
    /// flag (always 0 for the MWPM-only baseline, which ships every
    /// round unconditionally).
    pub offchip_shots: u64,
}

impl LerEstimate {
    /// Logical error rate per shot (per `rounds` cycles).
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        self.failures as f64 / self.shots as f64
    }

    /// Merges another estimate (e.g. from a worker thread).
    pub fn merge(&mut self, other: &LerEstimate) {
        self.shots += other.shots;
        self.failures += other.failures;
        self.offchip_shots += other.offchip_shots;
    }
}

/// Measures the logical error rate of `kind` under `cfg`.
///
/// Shot protocol (standard for the phenomenological model): `rounds`
/// noisy syndrome-measurement rounds followed by one perfect readout
/// round; decode; a shot fails if the residual error anti-commutes with
/// the logical operator.
#[must_use]
pub fn logical_error_rate(cfg: &ShotConfig, kind: DecoderKind) -> LerEstimate {
    let ty = StabilizerType::X;
    let code = SurfaceCode::new(cfg.distance);
    let mut offchip = cfg.backend.build(&code, ty);
    let mut tracker = ErrorTracker::new(&code, ty);
    let mut frontend = CliqueFrontend::with_rounds(&code, ty, cfg.clique_rounds);
    let n_anc = code.num_ancillas(ty);
    let n_data = code.num_data_qubits();
    let mut rng = SimRng::from_seed(cfg.seed);
    let mut window = RoundHistory::new(n_anc, cfg.rounds + 1);
    let mut est = LerEstimate { shots: 0, failures: 0, offchip_shots: 0 };
    let p = cfg.physical_error_rate;
    // Reused packed round buffer: the shot loop performs no per-round
    // heap allocation (sparse flips are consumed straight off the
    // sampler, the raw round is a word copy plus bit toggles, and the
    // window/filter recycle their ring buffers).
    let mut round = PackedBits::new(n_anc);

    for _ in 0..cfg.shots {
        tracker.reset();
        frontend.reset();
        window.reset();
        let mut went_offchip = false;
        for _ in 0..cfg.rounds {
            for q in SparseFlips::new(&mut rng, n_data, p) {
                tracker.flip(q);
            }
            round.copy_from(tracker.syndrome());
            for a in SparseFlips::new(&mut rng, n_anc, p) {
                round.toggle(a);
            }
            // While the window is empty, all-zero rounds carry no
            // detection events and only shift event times uniformly, so
            // skipping them leaves the space-time matching (pairwise
            // time separations and the zero baseline) bit-identical
            // while skipping the common case's copies entirely.
            if !(window.is_empty() && round.is_zero()) {
                window.push_packed(&round);
            }
            if kind == DecoderKind::CliquePlusMwpm {
                match frontend.push_round_packed(&round) {
                    CliqueDecision::AllZeros => {}
                    CliqueDecision::Trivial(c) => tracker.apply(c.qubits()),
                    CliqueDecision::Complex => {
                        // Ship the syndromes off-chip. The complex decoder
                        // sees the full round stream (corrections commute
                        // into the Pauli frame), so its matching happens
                        // over the whole window at readout rather than on
                        // a chopped window with a noisy trailing round —
                        // decoding mid-stream would convert unpaired
                        // measurement flips into injected data errors.
                        went_offchip = true;
                    }
                }
            }
        }
        // Final perfect readout round closes the window in time; the
        // off-chip decoder resolves everything Clique did not.
        if !(window.is_empty() && tracker.syndrome().is_zero()) {
            window.push_packed(tracker.syndrome());
        }
        let cleanup = offchip.decode_window_mut(&window);
        tracker.apply(cleanup.qubits());
        debug_assert!(tracker.is_quiet(), "decode must clear the syndrome");
        est.shots += 1;
        est.failures += u64::from(code.is_logical_error(ty, tracker.errors()));
        est.offchip_shots += u64::from(went_offchip);
    }
    est
}

/// [`logical_error_rate`] over `cfg`'s fixed shard plan on a
/// `workers`-wide work-stealing pool. The estimate is bit-identical for
/// any worker count (see [`shard_plan`]).
///
/// # Panics
///
/// Panics if `workers == 0`.
#[must_use]
pub fn logical_error_rate_parallel(
    cfg: &ShotConfig,
    kind: DecoderKind,
    workers: usize,
) -> LerEstimate {
    let pool = Pool::new(workers);
    let plan = shard_plan(cfg);
    pool.map_reduce(
        plan.len(),
        |s| logical_error_rate(&plan[s], kind),
        LerEstimate { shots: 0, failures: 0, offchip_shots: 0 },
        |mut merged, est| {
            merged.merge(&est);
            merged
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_noise_never_fails() {
        let cfg = ShotConfig::new(3, 0.0).with_shots(500);
        for kind in [DecoderKind::MwpmOnly, DecoderKind::CliquePlusMwpm] {
            let est = logical_error_rate(&cfg, kind);
            assert_eq!(est.failures, 0);
            assert_eq!(est.offchip_shots, 0);
            assert_eq!(est.shots, 500);
        }
    }

    #[test]
    fn ler_decreases_with_distance_below_threshold() {
        // The defining property of a working decoder (Fig. 14's slope).
        let p = 8e-3;
        let d3 = logical_error_rate(
            &ShotConfig::new(3, p).with_shots(4000).with_seed(1),
            DecoderKind::MwpmOnly,
        );
        let d5 = logical_error_rate(
            &ShotConfig::new(5, p).with_shots(4000).with_seed(2),
            DecoderKind::MwpmOnly,
        );
        assert!(d3.failures > 0, "d=3 at p=8e-3 must show failures");
        assert!(
            d5.rate() < d3.rate(),
            "LER must fall with distance: d3={} d5={}",
            d3.rate(),
            d5.rate()
        );
    }

    #[test]
    fn clique_plus_mwpm_tracks_baseline_at_low_distance() {
        // Paper Sec. 7.3: "almost exactly equivalent" for d=3/5/7.
        let p = 8e-3;
        let cfg = ShotConfig::new(5, p).with_shots(6000).with_seed(3);
        let base = logical_error_rate(&cfg, DecoderKind::MwpmOnly);
        let clique = logical_error_rate(&cfg, DecoderKind::CliquePlusMwpm);
        assert!(base.failures > 0, "need a measurable baseline");
        let ratio = clique.rate() / base.rate().max(1e-9);
        assert!(
            ratio < 4.0,
            "Clique+MWPM should track baseline; ratio {ratio} (clique {} vs base {})",
            clique.rate(),
            base.rate()
        );
        assert!(clique.offchip_shots > 0, "some shots must go off-chip");
    }

    #[test]
    fn sparse_backend_tracks_dense_ler() {
        // Exactness in the shot loop: same shots, same noise, and a
        // logical error rate in the same regime (corrections may differ
        // on weight ties, so bit-identical failure sets are not
        // guaranteed — but the rates must agree within Monte Carlo
        // noise).
        let p = 8e-3;
        let cfg = ShotConfig::new(5, p).with_shots(4000).with_seed(23);
        let dense = logical_error_rate(&cfg, DecoderKind::MwpmOnly);
        let sparse = logical_error_rate(
            &cfg.with_backend(DecoderBackend::SparseBlossom),
            DecoderKind::MwpmOnly,
        );
        assert_eq!(dense.shots, sparse.shots);
        assert!(dense.failures > 0, "need a measurable baseline");
        let ratio = sparse.rate() / dense.rate().max(1e-9);
        assert!(
            (0.5..2.0).contains(&ratio),
            "sparse LER {} vs dense LER {}",
            sparse.rate(),
            dense.rate()
        );
    }

    #[test]
    fn estimates_are_deterministic() {
        let cfg = ShotConfig::new(3, 5e-3).with_shots(1500).with_seed(11);
        let a = logical_error_rate(&cfg, DecoderKind::CliquePlusMwpm);
        let b = logical_error_rate(&cfg, DecoderKind::CliquePlusMwpm);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_shot_budget() {
        let cfg = ShotConfig::new(3, 5e-3).with_shots(2000).with_seed(5);
        let est = logical_error_rate_parallel(&cfg, DecoderKind::MwpmOnly, 4);
        assert_eq!(est.shots, 2000);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = LerEstimate { shots: 10, failures: 1, offchip_shots: 2 };
        let b = LerEstimate { shots: 5, failures: 2, offchip_shots: 1 };
        a.merge(&b);
        assert_eq!(a.shots, 15);
        assert_eq!(a.failures, 3);
        assert_eq!(a.offchip_shots, 3);
        assert!((a.rate() - 0.2).abs() < 1e-12);
    }
}
