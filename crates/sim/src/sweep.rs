//! Parameter sweeps backing Figs. 4, 11, 12 and 13.

use btwc_afs::{Compressor, SparseRepr};
use btwc_clique::{CliqueDecision, CliqueDecoder};
use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_noise::{SimRng, SparseFlips};
use btwc_pool::Pool;
use btwc_syndrome::{PackedBits, Syndrome};
use serde::Serialize;

use crate::lifetime::{self, LifetimeConfig, LifetimeSim, LifetimeStats};
use crate::tracker::ErrorTracker;

/// Independent trials per deterministic work shard of the iid engines
/// (each trial is two filtered rounds — far cheaper than a lifetime
/// cycle, hence the larger shard).
pub(crate) const SHARD_TRIALS: u64 = 16_384;

/// The root seed of grid point `(p_index, d_index)` in a sweep seeded
/// with `seed`.
///
/// Every grid point used to receive the *identical* root seed, which
/// correlated the points (the same error history replayed on each
/// distance). Forking by grid position — in the sweeps' own slice of
/// the fork-stream space (see [`crate::shard`]), 20 bits per axis —
/// decorrelates them while keeping each point individually
/// reproducible: running [`LifetimeSim::run_parallel`] with this seed
/// reproduces the sweep's point bit-for-bit, on any worker count.
///
/// # Panics
///
/// Panics if either index exceeds 2²⁰ − 1 (a grid axis a million points
/// wide is a misuse, not a workload).
#[must_use]
pub fn grid_point_seed(seed: u64, p_index: usize, d_index: usize) -> u64 {
    assert!(p_index < (1 << 20) && d_index < (1 << 20), "grid axis out of range");
    let stream = crate::shard::GRID_STREAM + (((p_index as u64) << 20) | d_index as u64);
    SimRng::from_seed(seed).fork(stream).seed()
}

/// One Clique coverage measurement (a point of Figs. 11 and 12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CoveragePoint {
    /// Code distance.
    pub distance: u16,
    /// Physical error rate.
    pub physical_error_rate: f64,
    /// Fraction of decodes handled on-chip (Fig. 11).
    pub coverage: f64,
    /// Of the on-chip decodes, the fraction that carried errors (Fig. 12).
    pub nonzero_onchip: f64,
    /// Per-cycle off-chip probability (`1 − coverage`).
    pub offchip_fraction: f64,
}

/// Sweeps Clique coverage over a `(p, d)` grid (Figs. 11–12).
///
/// Every `(point, shard)` task of the whole grid is submitted to one
/// work-stealing pool at once, so idle workers steal across point
/// boundaries — cheap d = 3 points no longer leave cores waiting on
/// expensive d ≥ 13 ones at a per-point barrier. Each point's root seed
/// comes from [`grid_point_seed`], so points are decorrelated yet
/// individually reproducible, and the whole sweep is bit-identical for
/// any worker count.
#[must_use]
pub fn coverage_sweep(
    error_rates: &[f64],
    distances: &[u16],
    cycles: u64,
    seed: u64,
    workers: usize,
) -> Vec<CoveragePoint> {
    let pool = Pool::new(workers);
    let mut points = Vec::with_capacity(error_rates.len() * distances.len());
    let mut tasks = Vec::new();
    for (pi, &p) in error_rates.iter().enumerate() {
        for (di, &d) in distances.iter().enumerate() {
            let cfg = LifetimeConfig::new(d, p)
                .with_cycles(cycles)
                .with_seed(grid_point_seed(seed, pi, di));
            let point = points.len();
            tasks.extend(lifetime::shard_plan(&cfg).into_iter().map(|shard| (point, shard)));
            points.push(cfg);
        }
    }
    let shard_stats = pool.map(&tasks, |_, (point, shard)| (*point, LifetimeSim::new(shard).run()));
    // `map` returns in task order, i.e. shard order within each point:
    // this merge is exactly the one `run_parallel` performs per point.
    let mut merged: Vec<Option<LifetimeStats>> = vec![None; points.len()];
    for (point, stats) in shard_stats {
        match &mut merged[point] {
            None => merged[point] = Some(stats),
            Some(m) => m.merge(&stats),
        }
    }
    points
        .iter()
        .zip(merged)
        .map(|(cfg, stats)| {
            let stats = stats.expect("every point has at least one shard");
            CoveragePoint {
                distance: cfg.distance,
                physical_error_rate: cfg.physical_error_rate,
                coverage: stats.coverage(),
                nonzero_onchip: stats.nonzero_onchip_fraction(),
                offchip_fraction: stats.offchip_fraction(),
            }
        })
        .collect()
}

/// One column of Fig. 4: the signature-class distribution for a
/// `(p, d)` scenario.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SignatureDistribution {
    /// Scenario label (e.g. `"5E-3/1E-5 (25)"`).
    pub label: String,
    /// Code distance.
    pub distance: u16,
    /// Physical error rate.
    pub physical_error_rate: f64,
    /// Fraction of cycles with an all-zero (filtered) signature.
    pub all_zeros: f64,
    /// Fraction decoded trivially on-chip (Local-1s).
    pub local_ones: f64,
    /// Fraction flagged complex.
    pub complex: f64,
}

/// Measures one Fig. 4 column.
#[must_use]
pub fn signature_distribution(
    label: &str,
    distance: u16,
    physical_error_rate: f64,
    cycles: u64,
    seed: u64,
    workers: usize,
) -> SignatureDistribution {
    let cfg =
        LifetimeConfig::new(distance, physical_error_rate).with_cycles(cycles).with_seed(seed);
    let stats = LifetimeSim::run_parallel(&cfg, workers);
    let n = stats.cycles as f64;
    SignatureDistribution {
        label: label.to_owned(),
        distance,
        physical_error_rate,
        all_zeros: stats.all_zeros as f64 / n,
        local_ones: stats.trivial as f64 / n,
        complex: stats.complex as f64 / n,
    }
}

/// Measures one Fig. 4 column the way the paper does — independent
/// trials, not a decode stream: each trial injects one cycle's worth of
/// fresh data errors onto a clean lattice, measures the syndrome over
/// two rounds with independent measurement noise (the Clique filter's
/// exposure), and classifies the filtered signature with the Clique
/// decision logic.
#[must_use]
pub fn signature_distribution_iid(
    label: &str,
    distance: u16,
    physical_error_rate: f64,
    trials: u64,
    seed: u64,
    workers: usize,
) -> SignatureDistribution {
    let pool = Pool::new(workers);
    let plan = iid_shard_plan(trials, seed);
    let counts = pool.map_reduce(
        plan.len(),
        |s| {
            let (n, rng) = &plan[s];
            iid_trial_shard(distance, physical_error_rate, *n, rng.clone())
        },
        [0u64; 3],
        merge_counts,
    );
    let n = trials.max(1) as f64;
    SignatureDistribution {
        label: label.to_owned(),
        distance,
        physical_error_rate,
        all_zeros: counts[0] as f64 / n,
        local_ones: counts[1] as f64 / n,
        complex: counts[2] as f64 / n,
    }
}

/// The fixed shard plan of an iid-trial measurement: `(trial count,
/// forked RNG)` per shard, depending only on `(trials, seed)` — never
/// on the worker count.
fn iid_shard_plan(trials: u64, seed: u64) -> Vec<(u64, SimRng)> {
    crate::shard::shard_streams(trials, SHARD_TRIALS, seed, crate::shard::IID_STREAM)
}

fn merge_counts(mut acc: [u64; 3], local: [u64; 3]) -> [u64; 3] {
    for (a, l) in acc.iter_mut().zip(local) {
        *a += l;
    }
    acc
}

/// One iid shard: `n` independent trials classified with the Clique
/// decision logic — `[all-zeros, local-ones, complex]` counts.
fn iid_trial_shard(distance: u16, p: f64, n: u64, mut rng: SimRng) -> [u64; 3] {
    let ty = StabilizerType::X;
    let code = SurfaceCode::new(distance);
    let decoder = CliqueDecoder::new(&code, ty);
    let mut tracker = ErrorTracker::new(&code, ty);
    let n_anc = code.num_ancillas(ty);
    let n_data = code.num_data_qubits();
    let mut local = [0u64; 3];
    // Reused packed buffers: the trial loop allocates nothing per
    // iteration.
    let mut round1 = PackedBits::new(n_anc);
    let mut round2 = PackedBits::new(n_anc);
    let mut filtered = Syndrome::new(n_anc);
    for _ in 0..n {
        tracker.reset();
        for q in SparseFlips::new(&mut rng, n_data, p) {
            tracker.flip(q);
        }
        // Two measurement rounds of the same error state with
        // independent measurement noise, AND-combined (the Fig. 7
        // sticky filter) — all word ops.
        round1.copy_from(tracker.syndrome());
        for a in SparseFlips::new(&mut rng, n_anc, p) {
            round1.toggle(a);
        }
        round2.copy_from(tracker.syndrome());
        for a in SparseFlips::new(&mut rng, n_anc, p) {
            round2.toggle(a);
        }
        let packed = filtered.as_packed_mut();
        packed.copy_from(&round1);
        packed.and_with(&round2);
        let idx = match decoder.decode(&filtered) {
            CliqueDecision::AllZeros => 0,
            CliqueDecision::Trivial(_) => 1,
            CliqueDecision::Complex => 2,
        };
        local[idx] += 1;
    }
    local
}

/// Sweeps the iid per-signature Clique coverage over a `(p, d)` grid —
/// the paper's Figs. 11/12 methodology (independent trials, like
/// Fig. 4). The *operational* stream coverage, which compounds
/// in-flight errors across cycles and is what the bandwidth provisioner
/// must plan for, comes from [`coverage_sweep`] instead.
#[must_use]
pub fn coverage_sweep_iid(
    error_rates: &[f64],
    distances: &[u16],
    trials: u64,
    seed: u64,
    workers: usize,
) -> Vec<CoveragePoint> {
    let pool = Pool::new(workers);
    // Whole-grid schedule, as in [`coverage_sweep`]: all (point, shard)
    // trial batches go into one pool, with per-point seeds forked by
    // grid position.
    let mut points = Vec::with_capacity(error_rates.len() * distances.len());
    let mut tasks = Vec::new();
    for (pi, &p) in error_rates.iter().enumerate() {
        for (di, &d) in distances.iter().enumerate() {
            let point = points.len();
            let plan = iid_shard_plan(trials, grid_point_seed(seed, pi, di));
            tasks.extend(plan.into_iter().map(|(n, rng)| (point, n, rng)));
            points.push((d, p));
        }
    }
    let shard_counts = pool.map(&tasks, |_, (point, n, rng)| {
        let &(d, p) = &points[*point];
        (*point, iid_trial_shard(d, p, *n, rng.clone()))
    });
    let mut counts = vec![[0u64; 3]; points.len()];
    for (point, local) in shard_counts {
        counts[point] = merge_counts(counts[point], local);
    }
    let n = trials.max(1) as f64;
    points
        .iter()
        .zip(counts)
        .map(|(&(d, p), c)| {
            // The same arithmetic as deriving the point from a
            // [`signature_distribution_iid`] measurement (fractions
            // first, then their sum), so the two stay bit-identical.
            let (all_zeros, local_ones) = (c[0] as f64 / n, c[1] as f64 / n);
            let onchip = all_zeros + local_ones;
            CoveragePoint {
                distance: d,
                physical_error_rate: p,
                coverage: onchip,
                nonzero_onchip: if onchip > 0.0 { local_ones / onchip } else { 0.0 },
                offchip_fraction: c[2] as f64 / n,
            }
        })
        .collect()
}

/// One point of the Fig. 13 comparison: average off-chip data reduction
/// of AFS sparse compression versus Clique, for the same error stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AfsComparison {
    /// Code distance.
    pub distance: u16,
    /// Physical error rate.
    pub physical_error_rate: f64,
    /// Raw syndrome bits per cycle (`(d²-1)/2`).
    pub raw_bits: usize,
    /// AFS sparse-representation reduction factor (raw / compressed).
    pub afs_reduction: f64,
    /// Clique reduction factor (only complex cycles ship, uncompressed).
    pub clique_reduction: f64,
}

/// Computes the Fig. 13 point for a finished lifetime run.
///
/// AFS's cost is evaluated exactly — the sparse-representation bit cost
/// depends only on the syndrome weight, which the lifetime simulator
/// histograms — while Clique ships the raw round only on complex
/// cycles.
#[must_use]
pub fn afs_comparison(
    distance: u16,
    physical_error_rate: f64,
    stats: &LifetimeStats,
) -> AfsComparison {
    let n = stats.num_ancillas;
    let codec = SparseRepr::new(n);
    // Bit cost per syndrome weight, via the real encoder.
    let mut afs_bits_total = 0u128;
    for (w, &count) in stats.raw_weight_histogram.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let mut s = Syndrome::new(n);
        for i in 0..w {
            s.set(i, true);
        }
        afs_bits_total += codec.encoded_len(&s) as u128 * u128::from(count);
    }
    let cycles = stats.cycles.max(1) as f64;
    let raw_total = n as f64 * cycles;
    let afs_mean = afs_bits_total as f64 / cycles;
    let clique_mean = stats.complex as f64 * n as f64 / cycles;
    AfsComparison {
        distance,
        physical_error_rate,
        raw_bits: n,
        afs_reduction: raw_total / afs_bits_total.max(1) as f64,
        clique_reduction: if clique_mean > 0.0 { n as f64 / clique_mean } else { f64::INFINITY },
    }
    .validated(afs_mean)
}

impl AfsComparison {
    fn validated(self, afs_mean: f64) -> Self {
        debug_assert!(afs_mean >= 1.0, "AFS always ships at least the flag bit");
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_sweep_has_expected_grid() {
        let pts = coverage_sweep(&[1e-3, 5e-3], &[3, 5], 10_000, 1, 2);
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!((0.0..=1.0).contains(&p.coverage));
            assert!((0.0..=1.0).contains(&p.nonzero_onchip));
            assert!((p.coverage + p.offchip_fraction - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn coverage_decreases_with_distance_at_fixed_p() {
        // Fig. 11: more ancillas, more chances for complex patterns.
        let pts = coverage_sweep(&[5e-3], &[3, 9], 60_000, 7, 4);
        assert!(
            pts[0].coverage > pts[1].coverage,
            "d=3 {} vs d=9 {}",
            pts[0].coverage,
            pts[1].coverage
        );
    }

    #[test]
    fn distribution_fractions_sum_to_one() {
        let dist = signature_distribution("1E-3 (5)", 5, 1e-3, 20_000, 3, 2);
        let total = dist.all_zeros + dist.local_ones + dist.complex;
        assert!((total - 1.0).abs() < 1e-9);
        assert!(dist.all_zeros > dist.complex, "common case dominates");
    }

    #[test]
    fn afs_comparison_favors_clique() {
        // Fig. 13: Clique beats AFS sparse compression by 10x+ at
        // practical rates.
        let cfg = LifetimeConfig::new(7, 1e-3).with_cycles(60_000).with_seed(9);
        let stats = LifetimeSim::new(&cfg).run();
        let cmp = afs_comparison(7, 1e-3, &stats);
        assert!(cmp.afs_reduction > 1.0, "AFS reduces: {}", cmp.afs_reduction);
        assert!(
            cmp.clique_reduction > cmp.afs_reduction,
            "clique {} must beat AFS {}",
            cmp.clique_reduction,
            cmp.afs_reduction
        );
        assert_eq!(cmp.raw_bits, 24);
    }

    #[test]
    fn afs_reduction_shrinks_with_error_rate() {
        let stats_lo = LifetimeSim::new(&LifetimeConfig::new(5, 5e-4).with_cycles(40_000)).run();
        let stats_hi = LifetimeSim::new(&LifetimeConfig::new(5, 8e-3).with_cycles(40_000)).run();
        let lo = afs_comparison(5, 5e-4, &stats_lo);
        let hi = afs_comparison(5, 8e-3, &stats_hi);
        assert!(
            lo.afs_reduction > hi.afs_reduction,
            "denser syndromes compress worse: {} vs {}",
            lo.afs_reduction,
            hi.afs_reduction
        );
    }
}
