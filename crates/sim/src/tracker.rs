//! Incremental error / syndrome bookkeeping.
//!
//! The naive per-cycle recomputation of all `(d²-1)/2` stabilizers makes
//! billion-cycle Monte Carlo intractable. [`ErrorTracker`] maintains the
//! accumulated error state and its syndrome *incrementally*: flipping a
//! data qubit touches only its (≤ 2) adjacent ancillas, so a cycle costs
//! O(#flips), not O(d²). This mirrors how the paper's own "lifetime
//! simulation over a billion cycles" is feasible at all.

use btwc_lattice::{StabilizerType, SurfaceCode};

/// Accumulated data-error state for one error species of one code, with
/// an incrementally maintained syndrome.
#[derive(Debug, Clone)]
pub struct ErrorTracker {
    ty: StabilizerType,
    errors: Vec<bool>,
    syndrome: Vec<bool>,
    syndrome_weight: usize,
    /// qubit -> adjacent ancilla indices (1 or 2 of this type).
    adjacency: Vec<Vec<usize>>,
}

impl ErrorTracker {
    /// Fresh, error-free tracker for stabilizer type `ty` of `code`.
    #[must_use]
    pub fn new(code: &SurfaceCode, ty: StabilizerType) -> Self {
        let mut adjacency = vec![Vec::new(); code.num_data_qubits()];
        for (i, a) in code.ancillas(ty).iter().enumerate() {
            for &q in a.data_qubits() {
                adjacency[q].push(i);
            }
        }
        Self {
            ty,
            errors: vec![false; code.num_data_qubits()],
            syndrome: vec![false; code.num_ancillas(ty)],
            syndrome_weight: 0,
            adjacency,
        }
    }

    /// The stabilizer type tracked.
    #[must_use]
    pub fn stabilizer_type(&self) -> StabilizerType {
        self.ty
    }

    /// Flips one data qubit, updating the syndrome in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn flip(&mut self, q: usize) {
        self.errors[q] ^= true;
        for &a in &self.adjacency[q] {
            self.syndrome_weight = if self.syndrome[a] {
                self.syndrome_weight - 1
            } else {
                self.syndrome_weight + 1
            };
            self.syndrome[a] ^= true;
        }
    }

    /// Applies a whole correction (a set of flips).
    pub fn apply(&mut self, qubits: &[usize]) {
        for &q in qubits {
            self.flip(q);
        }
    }

    /// Current accumulated error pattern.
    #[must_use]
    pub fn errors(&self) -> &[bool] {
        &self.errors
    }

    /// Current (noise-free) syndrome.
    #[must_use]
    pub fn syndrome(&self) -> &[bool] {
        &self.syndrome
    }

    /// Number of lit ancillas.
    #[must_use]
    pub fn syndrome_weight(&self) -> usize {
        self.syndrome_weight
    }

    /// Whether the error state commutes with every stabilizer.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.syndrome_weight == 0
    }

    /// Number of erring data qubits.
    #[must_use]
    pub fn error_weight(&self) -> usize {
        self.errors.iter().filter(|&&e| e).count()
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.errors.fill(false);
        self.syndrome.fill(false);
        self.syndrome_weight = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_matches_batch_syndrome() {
        let code = SurfaceCode::new(7);
        let mut tracker = ErrorTracker::new(&code, StabilizerType::X);
        let flips = [3usize, 11, 17, 3, 40, 11, 25];
        for &q in &flips {
            tracker.flip(q);
        }
        let batch = code.syndrome_of(StabilizerType::X, tracker.errors());
        assert_eq!(tracker.syndrome(), &batch[..]);
        assert_eq!(
            tracker.syndrome_weight(),
            batch.iter().filter(|&&s| s).count()
        );
    }

    #[test]
    fn double_flip_cancels() {
        let code = SurfaceCode::new(5);
        let mut tracker = ErrorTracker::new(&code, StabilizerType::X);
        tracker.flip(7);
        tracker.flip(7);
        assert!(tracker.is_quiet());
        assert_eq!(tracker.error_weight(), 0);
    }

    #[test]
    fn apply_equals_sequence_of_flips() {
        let code = SurfaceCode::new(5);
        let mut a = ErrorTracker::new(&code, StabilizerType::X);
        let mut b = ErrorTracker::new(&code, StabilizerType::X);
        a.apply(&[1, 5, 9]);
        for q in [1, 5, 9] {
            b.flip(q);
        }
        assert_eq!(a.errors(), b.errors());
        assert_eq!(a.syndrome(), b.syndrome());
    }

    #[test]
    fn reset_clears_everything() {
        let code = SurfaceCode::new(5);
        let mut tracker = ErrorTracker::new(&code, StabilizerType::X);
        tracker.apply(&[0, 12, 24]);
        tracker.reset();
        assert!(tracker.is_quiet());
        assert_eq!(tracker.error_weight(), 0);
        assert!(tracker.errors().iter().all(|&e| !e));
    }

    #[test]
    fn works_for_z_type_too() {
        let code = SurfaceCode::new(5);
        let mut tracker = ErrorTracker::new(&code, StabilizerType::Z);
        tracker.flip(12);
        let batch = code.syndrome_of(StabilizerType::Z, tracker.errors());
        assert_eq!(tracker.syndrome(), &batch[..]);
        assert_eq!(tracker.stabilizer_type(), StabilizerType::Z);
    }
}
