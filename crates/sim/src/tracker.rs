//! Incremental error / syndrome bookkeeping.
//!
//! The naive per-cycle recomputation of all `(d²-1)/2` stabilizers makes
//! billion-cycle Monte Carlo intractable. [`ErrorTracker`] maintains the
//! accumulated error state and its syndrome *incrementally*: flipping a
//! data qubit touches only its (≤ 2) adjacent ancillas, so a cycle costs
//! O(#flips), not O(d²). This mirrors how the paper's own "lifetime
//! simulation over a billion cycles" is feasible at all.
//!
//! The syndrome is held word-packed ([`PackedBits`]) so downstream
//! consumers (round ingestion, the sticky filter, detection-event
//! diffs) copy and combine it with word operations; the qubit→ancilla
//! adjacency is a flat CSR layout to keep the flip path free of pointer
//! chasing.

use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_syndrome::PackedBits;

/// Accumulated data-error state for one error species of one code, with
/// an incrementally maintained packed syndrome.
#[derive(Debug, Clone)]
pub struct ErrorTracker {
    ty: StabilizerType,
    errors: Vec<bool>,
    syndrome: PackedBits,
    syndrome_weight: usize,
    /// CSR adjacency: ancillas of qubit `q` are
    /// `adj_data[adj_idx[q]..adj_idx[q + 1]]` (1 or 2 entries).
    adj_idx: Vec<u32>,
    adj_data: Vec<u32>,
}

impl ErrorTracker {
    /// Fresh, error-free tracker for stabilizer type `ty` of `code`.
    #[must_use]
    pub fn new(code: &SurfaceCode, ty: StabilizerType) -> Self {
        let mut adjacency = vec![Vec::new(); code.num_data_qubits()];
        for (i, a) in code.ancillas(ty).iter().enumerate() {
            for &q in a.data_qubits() {
                adjacency[q].push(i as u32);
            }
        }
        let mut adj_idx = Vec::with_capacity(adjacency.len() + 1);
        let mut adj_data = Vec::new();
        adj_idx.push(0);
        for ancillas in &adjacency {
            adj_data.extend_from_slice(ancillas);
            adj_idx.push(adj_data.len() as u32);
        }
        Self {
            ty,
            errors: vec![false; code.num_data_qubits()],
            syndrome: PackedBits::new(code.num_ancillas(ty)),
            syndrome_weight: 0,
            adj_idx,
            adj_data,
        }
    }

    /// The stabilizer type tracked.
    #[must_use]
    pub fn stabilizer_type(&self) -> StabilizerType {
        self.ty
    }

    /// Flips one data qubit, updating the syndrome in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[inline]
    pub fn flip(&mut self, q: usize) {
        self.errors[q] ^= true;
        let (lo, hi) = (self.adj_idx[q] as usize, self.adj_idx[q + 1] as usize);
        for &a in &self.adj_data[lo..hi] {
            let now = self.syndrome.toggle(a as usize);
            self.syndrome_weight =
                if now { self.syndrome_weight + 1 } else { self.syndrome_weight - 1 };
        }
    }

    /// Applies a whole correction (a set of flips).
    pub fn apply(&mut self, qubits: &[usize]) {
        for &q in qubits {
            self.flip(q);
        }
    }

    /// Current accumulated error pattern.
    #[must_use]
    pub fn errors(&self) -> &[bool] {
        &self.errors
    }

    /// Current (noise-free) syndrome, word-packed.
    #[must_use]
    pub fn syndrome(&self) -> &PackedBits {
        &self.syndrome
    }

    /// Number of lit ancillas.
    #[must_use]
    pub fn syndrome_weight(&self) -> usize {
        self.syndrome_weight
    }

    /// Whether the error state commutes with every stabilizer.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.syndrome_weight == 0
    }

    /// Number of erring data qubits.
    #[must_use]
    pub fn error_weight(&self) -> usize {
        self.errors.iter().filter(|&&e| e).count()
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.errors.fill(false);
        self.syndrome.clear();
        self.syndrome_weight = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_matches_batch_syndrome() {
        let code = SurfaceCode::new(7);
        let mut tracker = ErrorTracker::new(&code, StabilizerType::X);
        let flips = [3usize, 11, 17, 3, 40, 11, 25];
        for &q in &flips {
            tracker.flip(q);
        }
        let batch = code.syndrome_of(StabilizerType::X, tracker.errors());
        assert_eq!(tracker.syndrome().to_bools(), batch);
        assert_eq!(tracker.syndrome_weight(), batch.iter().filter(|&&s| s).count());
        assert_eq!(tracker.syndrome().weight(), tracker.syndrome_weight());
    }

    #[test]
    fn double_flip_cancels() {
        let code = SurfaceCode::new(5);
        let mut tracker = ErrorTracker::new(&code, StabilizerType::X);
        tracker.flip(7);
        tracker.flip(7);
        assert!(tracker.is_quiet());
        assert_eq!(tracker.error_weight(), 0);
    }

    #[test]
    fn apply_equals_sequence_of_flips() {
        let code = SurfaceCode::new(5);
        let mut a = ErrorTracker::new(&code, StabilizerType::X);
        let mut b = ErrorTracker::new(&code, StabilizerType::X);
        a.apply(&[1, 5, 9]);
        for q in [1, 5, 9] {
            b.flip(q);
        }
        assert_eq!(a.errors(), b.errors());
        assert_eq!(a.syndrome(), b.syndrome());
    }

    #[test]
    fn reset_clears_everything() {
        let code = SurfaceCode::new(5);
        let mut tracker = ErrorTracker::new(&code, StabilizerType::X);
        tracker.apply(&[0, 12, 24]);
        tracker.reset();
        assert!(tracker.is_quiet());
        assert_eq!(tracker.error_weight(), 0);
        assert!(tracker.errors().iter().all(|&e| !e));
    }

    #[test]
    fn works_for_z_type_too() {
        let code = SurfaceCode::new(5);
        let mut tracker = ErrorTracker::new(&code, StabilizerType::Z);
        tracker.flip(12);
        let batch = code.syndrome_of(StabilizerType::Z, tracker.errors());
        assert_eq!(tracker.syndrome().to_bools(), batch);
        assert_eq!(tracker.stabilizer_type(), StabilizerType::Z);
    }
}
