//! Closed-loop machine-level simulation: noise → batched machine →
//! corrections → stalling, end to end (the Figs. 9/16 workload).
//!
//! Where [`crate::LifetimeSim`] drives *one* logical qubit,
//! [`machine_offchip_trace`] drives a whole [`BtwcMachine`]: every
//! cycle it samples each qubit's noise, packs the raw rounds into one
//! transposed [`SyndromeBatch`], steps the machine (one word-parallel
//! sticky-filter pass for all qubits, off-chip escalations framed as
//! real wire bytes through the shared [`btwc_bandwidth::QueueSim`]),
//! and applies the returned corrections back onto the per-qubit error
//! trackers.
//!
//! Per-qubit RNG streams are forked from the root seed by qubit index
//! — the same fork schedule the pre-machine pooled implementation used
//! — and the batched pipeline is bit-identical to per-qubit decoding
//! (`crates/core/tests/machine_equivalence.rs`), so the produced
//! demand trace is deterministic in `(cfg.seed, num_qubits)` and
//! matches a per-qubit [`crate::LifetimeSim`] run stream-for-stream
//! (pinned by this module's tests).

use btwc_core::{
    BtwcMachine, LinkFaultModel, MachineStats, StabilizerType, SurfaceCode, TransportStats,
};
use btwc_noise::{SimRng, SparseFlips};
use btwc_syndrome::{PackedBits, SyndromeBatch};
use btwc_telemetry::MetricsRegistry;

use crate::lifetime::LifetimeConfig;
use crate::tracker::ErrorTracker;

/// Simulates `num_qubits` logical qubits behind one link of
/// `bandwidth` decodes/cycle for `cfg.cycles` cycles and returns the
/// machine's aggregate stats (stalls, backlog, frame bytes — the
/// Fig. 16 quantities) together with the per-cycle off-chip demand
/// trace (the bar heights of Fig. 9).
///
/// # Panics
///
/// Panics if `num_qubits == 0` or `bandwidth == 0`.
#[must_use]
pub fn machine_offchip_trace(
    cfg: &LifetimeConfig,
    num_qubits: usize,
    bandwidth: usize,
) -> (MachineStats, Vec<usize>) {
    let run = machine_trace_impl(cfg, num_qubits, bandwidth, None, None);
    (run.stats, run.trace)
}

/// [`machine_offchip_trace`] with a metrics registry attached to the
/// machine for the whole run: `machine.*` cycle-domain metrics
/// (escalation latency percentiles, queue depth, per-qubit stalls) and
/// the off-chip decoder's own metrics (e.g. `sparse.*` for the
/// streaming backend) land in `registry`, and the returned
/// stats/trace are bit-identical to the uninstrumented run.
///
/// # Panics
///
/// Panics if `num_qubits == 0` or `bandwidth == 0`.
#[must_use]
pub fn machine_offchip_trace_telemetry(
    cfg: &LifetimeConfig,
    num_qubits: usize,
    bandwidth: usize,
    registry: &MetricsRegistry,
) -> (MachineStats, Vec<usize>) {
    let run = machine_trace_impl(cfg, num_qubits, bandwidth, Some(registry), None);
    (run.stats, run.trace)
}

/// [`machine_offchip_trace`] across a **faulty** off-chip link: every
/// escalation crosses a [`LinkFaultModel`]-driven
/// [`btwc_core::FaultyLink`] with the machine's full frame-integrity /
/// retry / degradation path engaged. Returns the machine stats, the
/// receiver-side [`TransportStats`], and the per-cycle demand trace.
/// Deterministic in `(cfg.seed, link_seed, num_qubits)` for any worker
/// count.
///
/// # Panics
///
/// Panics if `num_qubits == 0` or `bandwidth == 0`.
#[must_use]
pub fn machine_fault_trace(
    cfg: &LifetimeConfig,
    num_qubits: usize,
    bandwidth: usize,
    model: LinkFaultModel,
    link_seed: u64,
) -> (MachineStats, TransportStats, Vec<usize>) {
    let run = machine_trace_impl(cfg, num_qubits, bandwidth, None, Some((model, link_seed)));
    (run.stats, run.transport, run.trace)
}

/// One point of [`machine_fault_sweep`]: the cost of a given link
/// fault rate in execution time (retransmission pressure → stalls) and
/// decode quality (degraded decodes, end-of-run residual state).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepPoint {
    /// The per-class fault probability of [`LinkFaultModel::uniform`].
    pub fault_rate: f64,
    /// Machine aggregates (stalls, backlog, frame bytes).
    pub stats: MachineStats,
    /// Receiver-side transport observations (fault classes, retries,
    /// degradations).
    pub transport: TransportStats,
    /// Relative execution-time increase — the Fig. 16 y-axis, now also
    /// a function of link reliability.
    pub execution_time_increase: f64,
    /// Total residual syndrome weight across qubits when the run ends
    /// (an error-control proxy: degraded decodes leave residuals for
    /// later cycles).
    pub residual_syndrome_weight: u64,
    /// Qubits whose residual error state is a logical error at the end
    /// of the run — the logical-error-rate impact of link faults.
    pub logical_errors: u64,
}

/// Sweeps [`LinkFaultModel::uniform`] fault rates over the same
/// workload: the graceful-degradation trade-off curve (execution-time
/// increase and decode-quality impact vs link reliability).
/// Deterministic in `(cfg.seed, link_seed)`.
///
/// # Panics
///
/// Panics if `num_qubits == 0` or `bandwidth == 0`.
#[must_use]
pub fn machine_fault_sweep(
    cfg: &LifetimeConfig,
    num_qubits: usize,
    bandwidth: usize,
    fault_rates: &[f64],
    link_seed: u64,
) -> Vec<FaultSweepPoint> {
    fault_rates
        .iter()
        .map(|&rate| {
            let model = LinkFaultModel::uniform(rate);
            let run =
                machine_trace_impl(cfg, num_qubits, bandwidth, None, Some((model, link_seed)));
            FaultSweepPoint {
                fault_rate: rate,
                execution_time_increase: run.stats.execution_time_increase(),
                stats: run.stats,
                transport: run.transport,
                residual_syndrome_weight: run.residual_syndrome_weight,
                logical_errors: run.logical_errors,
            }
        })
        .collect()
}

/// Everything one closed-loop machine run produced.
struct TraceRun {
    stats: MachineStats,
    transport: TransportStats,
    trace: Vec<usize>,
    residual_syndrome_weight: u64,
    logical_errors: u64,
}

fn machine_trace_impl(
    cfg: &LifetimeConfig,
    num_qubits: usize,
    bandwidth: usize,
    registry: Option<&MetricsRegistry>,
    fault: Option<(LinkFaultModel, u64)>,
) -> TraceRun {
    let ty = StabilizerType::X;
    let code = SurfaceCode::new(cfg.distance);
    let n_anc = code.num_ancillas(ty);
    let n_data = code.num_data_qubits();
    let mut builder = BtwcMachine::builder(&code, ty, num_qubits, bandwidth)
        .clique_rounds(cfg.clique_rounds)
        .backend(cfg.backend);
    if let Some(registry) = registry {
        builder = builder.telemetry(registry);
    }
    if let Some((model, link_seed)) = fault {
        builder = builder.fault_model(model).link_seed(link_seed);
    }
    let mut machine = builder.build();
    // One tracker + forked RNG stream per qubit, keyed by qubit index:
    // the identical schedule the pooled per-qubit implementation used,
    // so traces are reproducible and qubit-count-stable.
    let root = SimRng::from_seed(cfg.seed);
    let mut rngs: Vec<SimRng> = (0..num_qubits)
        .map(|q| SimRng::from_seed(root.fork(crate::shard::QUBIT_STREAM + q as u64).seed()))
        .collect();
    let mut trackers: Vec<ErrorTracker> =
        (0..num_qubits).map(|_| ErrorTracker::new(&code, ty)).collect();
    let mut batch = SyndromeBatch::new(num_qubits, n_anc);
    let mut round = PackedBits::new(n_anc);
    let mut trace = Vec::with_capacity(cfg.cycles as usize);
    let p = cfg.physical_error_rate;
    let pm = cfg.measurement_error_rate;
    for _ in 0..cfg.cycles {
        for q in 0..num_qubits {
            let rng = &mut rngs[q];
            for flip in SparseFlips::new(rng, n_data, p) {
                trackers[q].flip(flip);
            }
            round.copy_from(trackers[q].syndrome());
            for a in SparseFlips::new(rng, n_anc, pm) {
                round.toggle(a);
            }
            batch.set_qubit_round(q, &round);
        }
        let cycle = machine.step(&batch);
        for (tracker, out) in trackers.iter_mut().zip(&cycle.outcomes) {
            if let Some(c) = out.correction() {
                tracker.apply(c.qubits());
            }
        }
        trace.push(cycle.offchip_requests);
    }
    let residual_syndrome_weight = trackers.iter().map(|t| t.syndrome_weight() as u64).sum::<u64>();
    let logical_errors =
        trackers.iter().filter(|t| code.is_logical_error(ty, t.errors())).count() as u64;
    TraceRun {
        stats: machine.stats(),
        transport: machine.transport_stats(),
        trace,
        residual_syndrome_weight,
        logical_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::LifetimeSim;

    /// The migration pin: the machine-driven trace must reproduce the
    /// pre-machine implementation (independent per-qubit LifetimeSim
    /// runs with qubit-forked seeds, summed per cycle) bit-for-bit —
    /// batching and transport reorganize the work, never the numbers.
    #[test]
    fn machine_trace_matches_per_qubit_lifetime_sims() {
        let cfg = LifetimeConfig::new(3, 6e-3).with_cycles(1_500).with_seed(0xAB);
        let qubits = 5;
        let (_, got) = machine_offchip_trace(&cfg, qubits, qubits);
        let root = SimRng::from_seed(cfg.seed);
        let mut expected = vec![0usize; cfg.cycles as usize];
        for q in 0..qubits {
            let mut qcfg = cfg;
            qcfg.seed = root.fork(crate::shard::QUBIT_STREAM + q as u64).seed();
            let (_, flags) = LifetimeSim::new(&qcfg).run_with_trace();
            for (t, flag) in expected.iter_mut().zip(flags) {
                *t += usize::from(flag);
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn zero_fault_trace_matches_perfect_link() {
        // The fault-free differential pin at the sim tier: routing the
        // workload through an explicit zero-probability FaultyLink is
        // bit-identical to the default driver.
        let cfg = LifetimeConfig::new(3, 8e-3).with_cycles(1_200).with_seed(0x5A);
        let (stats, trace) = machine_offchip_trace(&cfg, 6, 2);
        let (fstats, transport, ftrace) =
            machine_fault_trace(&cfg, 6, 2, LinkFaultModel::none(), 0x1234);
        assert_eq!(stats, fstats);
        assert_eq!(trace, ftrace);
        assert_eq!(transport, TransportStats::default());
    }

    #[test]
    fn fault_sweep_is_deterministic_and_meters_degradation() {
        let cfg = LifetimeConfig::new(3, 2.2e-2).with_cycles(1_500).with_seed(0xFA);
        let rates = [0.0, 0.05, 0.30];
        let sweep = machine_fault_sweep(&cfg, 8, 4, &rates, 0x11);
        assert_eq!(sweep, machine_fault_sweep(&cfg, 8, 4, &rates, 0x11), "sweep must reproduce");
        assert_eq!(sweep[0].transport, TransportStats::default(), "zero rate injects nothing");
        // More faults => more transport work on the same demand.
        assert!(sweep[1].transport.retransmitted_frames > 0);
        assert!(
            sweep[2].transport.retransmitted_frames > sweep[1].transport.retransmitted_frames,
            "a lossier link must retransmit more"
        );
        assert!(sweep[2].stats.frame_bytes > sweep[0].stats.frame_bytes);
        assert!(sweep[2].transport.degraded_decodes > 0, "a 30% fault rate must degrade");
    }

    #[test]
    fn under_provisioning_stalls_and_meters_the_wire() {
        let cfg = LifetimeConfig::new(5, 8e-3).with_cycles(4_000).with_seed(3);
        // Bandwidth 1 for 24 noisy qubits: overflow must happen.
        let (tight, trace) = machine_offchip_trace(&cfg, 24, 1);
        assert_eq!(trace.len(), 4_000);
        assert!(tight.stalls > 0, "under-provisioned link must stall");
        assert!(tight.peak_backlog > 0);
        assert!(tight.frame_bytes >= 16 * tight.offchip_requests);
        assert!(tight.execution_time_increase() > 0.0);
        // A generous link sees the same demand but never stalls.
        let (wide, wide_trace) = machine_offchip_trace(&cfg, 24, 24);
        assert_eq!(trace, wide_trace, "demand is independent of provisioning");
        assert_eq!(wide.stalls, 0);
        assert!(wide.execution_time_increase().abs() < 1e-12);
    }
}
