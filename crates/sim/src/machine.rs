//! Closed-loop machine-level simulation: noise → batched machine →
//! corrections → stalling, end to end (the Figs. 9/16 workload).
//!
//! Where [`crate::LifetimeSim`] drives *one* logical qubit,
//! [`machine_offchip_trace`] drives a whole [`BtwcMachine`]: every
//! cycle it samples each qubit's noise, packs the raw rounds into one
//! transposed [`SyndromeBatch`], steps the machine (one word-parallel
//! sticky-filter pass for all qubits, off-chip escalations framed as
//! real wire bytes through the shared [`btwc_bandwidth::QueueSim`]),
//! and applies the returned corrections back onto the per-qubit error
//! trackers.
//!
//! Per-qubit RNG streams are forked from the root seed by qubit index
//! — the same fork schedule the pre-machine pooled implementation used
//! — and the batched pipeline is bit-identical to per-qubit decoding
//! (`crates/core/tests/machine_equivalence.rs`), so the produced
//! demand trace is deterministic in `(cfg.seed, num_qubits)` and
//! matches a per-qubit [`crate::LifetimeSim`] run stream-for-stream
//! (pinned by this module's tests).

use btwc_core::{BtwcMachine, MachineStats, StabilizerType, SurfaceCode};
use btwc_noise::{SimRng, SparseFlips};
use btwc_syndrome::{PackedBits, SyndromeBatch};
use btwc_telemetry::MetricsRegistry;

use crate::lifetime::LifetimeConfig;
use crate::tracker::ErrorTracker;

/// Simulates `num_qubits` logical qubits behind one link of
/// `bandwidth` decodes/cycle for `cfg.cycles` cycles and returns the
/// machine's aggregate stats (stalls, backlog, frame bytes — the
/// Fig. 16 quantities) together with the per-cycle off-chip demand
/// trace (the bar heights of Fig. 9).
///
/// # Panics
///
/// Panics if `num_qubits == 0` or `bandwidth == 0`.
#[must_use]
pub fn machine_offchip_trace(
    cfg: &LifetimeConfig,
    num_qubits: usize,
    bandwidth: usize,
) -> (MachineStats, Vec<usize>) {
    machine_trace_impl(cfg, num_qubits, bandwidth, None)
}

/// [`machine_offchip_trace`] with a metrics registry attached to the
/// machine for the whole run: `machine.*` cycle-domain metrics
/// (escalation latency percentiles, queue depth, per-qubit stalls) and
/// the off-chip decoder's own metrics (e.g. `sparse.*` for the
/// streaming backend) land in `registry`, and the returned
/// stats/trace are bit-identical to the uninstrumented run.
///
/// # Panics
///
/// Panics if `num_qubits == 0` or `bandwidth == 0`.
#[must_use]
pub fn machine_offchip_trace_telemetry(
    cfg: &LifetimeConfig,
    num_qubits: usize,
    bandwidth: usize,
    registry: &MetricsRegistry,
) -> (MachineStats, Vec<usize>) {
    machine_trace_impl(cfg, num_qubits, bandwidth, Some(registry))
}

fn machine_trace_impl(
    cfg: &LifetimeConfig,
    num_qubits: usize,
    bandwidth: usize,
    registry: Option<&MetricsRegistry>,
) -> (MachineStats, Vec<usize>) {
    let ty = StabilizerType::X;
    let code = SurfaceCode::new(cfg.distance);
    let n_anc = code.num_ancillas(ty);
    let n_data = code.num_data_qubits();
    let mut builder = BtwcMachine::builder(&code, ty, num_qubits, bandwidth)
        .clique_rounds(cfg.clique_rounds)
        .backend(cfg.backend);
    if let Some(registry) = registry {
        builder = builder.telemetry(registry);
    }
    let mut machine = builder.build();
    // One tracker + forked RNG stream per qubit, keyed by qubit index:
    // the identical schedule the pooled per-qubit implementation used,
    // so traces are reproducible and qubit-count-stable.
    let root = SimRng::from_seed(cfg.seed);
    let mut rngs: Vec<SimRng> = (0..num_qubits)
        .map(|q| SimRng::from_seed(root.fork(crate::shard::QUBIT_STREAM + q as u64).seed()))
        .collect();
    let mut trackers: Vec<ErrorTracker> =
        (0..num_qubits).map(|_| ErrorTracker::new(&code, ty)).collect();
    let mut batch = SyndromeBatch::new(num_qubits, n_anc);
    let mut round = PackedBits::new(n_anc);
    let mut trace = Vec::with_capacity(cfg.cycles as usize);
    let p = cfg.physical_error_rate;
    let pm = cfg.measurement_error_rate;
    for _ in 0..cfg.cycles {
        for q in 0..num_qubits {
            let rng = &mut rngs[q];
            for flip in SparseFlips::new(rng, n_data, p) {
                trackers[q].flip(flip);
            }
            round.copy_from(trackers[q].syndrome());
            for a in SparseFlips::new(rng, n_anc, pm) {
                round.toggle(a);
            }
            batch.set_qubit_round(q, &round);
        }
        let cycle = machine.step(&batch);
        for (tracker, out) in trackers.iter_mut().zip(&cycle.outcomes) {
            if let Some(c) = out.correction() {
                tracker.apply(c.qubits());
            }
        }
        trace.push(cycle.offchip_requests);
    }
    (machine.stats(), trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::LifetimeSim;

    /// The migration pin: the machine-driven trace must reproduce the
    /// pre-machine implementation (independent per-qubit LifetimeSim
    /// runs with qubit-forked seeds, summed per cycle) bit-for-bit —
    /// batching and transport reorganize the work, never the numbers.
    #[test]
    fn machine_trace_matches_per_qubit_lifetime_sims() {
        let cfg = LifetimeConfig::new(3, 6e-3).with_cycles(1_500).with_seed(0xAB);
        let qubits = 5;
        let (_, got) = machine_offchip_trace(&cfg, qubits, qubits);
        let root = SimRng::from_seed(cfg.seed);
        let mut expected = vec![0usize; cfg.cycles as usize];
        for q in 0..qubits {
            let mut qcfg = cfg;
            qcfg.seed = root.fork(crate::shard::QUBIT_STREAM + q as u64).seed();
            let (_, flags) = LifetimeSim::new(&qcfg).run_with_trace();
            for (t, flag) in expected.iter_mut().zip(flags) {
                *t += usize::from(flag);
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn under_provisioning_stalls_and_meters_the_wire() {
        let cfg = LifetimeConfig::new(5, 8e-3).with_cycles(4_000).with_seed(3);
        // Bandwidth 1 for 24 noisy qubits: overflow must happen.
        let (tight, trace) = machine_offchip_trace(&cfg, 24, 1);
        assert_eq!(trace.len(), 4_000);
        assert!(tight.stalls > 0, "under-provisioned link must stall");
        assert!(tight.peak_backlog > 0);
        assert!(tight.frame_bytes >= 16 * tight.offchip_requests);
        assert!(tight.execution_time_increase() > 0.0);
        // A generous link sees the same demand but never stalls.
        let (wide, wide_trace) = machine_offchip_trace(&cfg, 24, 24);
        assert_eq!(trace, wide_trace, "demand is independent of provisioning");
        assert_eq!(wide.stalls, 0);
        assert!(wide.execution_time_increase().abs() < 1e-12);
    }
}
