//! Multi-logical-qubit off-chip demand (inputs to Figs. 9 and 16).

use crate::lifetime::{LifetimeConfig, LifetimeSim};
use crate::machine::machine_offchip_trace;

/// Estimates the per-qubit, per-cycle off-chip decode probability
/// `q = 1 − coverage` by lifetime simulation — the quantity the
/// statistical bandwidth allocator provisions against (Sec. 5.1).
#[must_use]
pub fn offchip_probability(cfg: &LifetimeConfig) -> f64 {
    LifetimeSim::new(cfg).run().offchip_fraction()
}

/// Simulates `num_qubits` logical qubits for `cfg.cycles` cycles and
/// returns the per-cycle total number of off-chip decode requests —
/// the bar heights of Fig. 9.
///
/// Since the machine-tier redesign this drives one batched
/// [`btwc_core::BtwcMachine`] (word-parallel sticky filtering across
/// all qubits, per-qubit RNG streams forked by qubit index) instead of
/// pooling independent per-qubit simulations — producing the identical
/// trace (pinned in [`crate::machine`]'s tests) through the packed
/// machine path. The link is provisioned wide open here (demand
/// measurement, not stalling); use [`machine_offchip_trace`] directly
/// to study a finite link.
///
/// The trace is deterministic in `(cfg.seed, num_qubits)`; the
/// `workers` argument is retained for API compatibility and no longer
/// affects scheduling (the batched machine steps all qubits in one
/// pass).
///
/// # Panics
///
/// Panics if `num_qubits == 0` or `workers == 0`.
#[must_use]
pub fn multi_qubit_trace(cfg: &LifetimeConfig, num_qubits: usize, workers: usize) -> Vec<usize> {
    assert!(num_qubits > 0, "need at least one qubit");
    assert!(workers > 0, "need at least one worker");
    machine_offchip_trace(cfg, num_qubits, num_qubits).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_in_unit_interval_and_scales_with_p() {
        let lo = offchip_probability(&LifetimeConfig::new(5, 5e-4).with_cycles(20_000));
        let hi = offchip_probability(&LifetimeConfig::new(5, 8e-3).with_cycles(20_000));
        assert!((0.0..=1.0).contains(&lo));
        assert!((0.0..=1.0).contains(&hi));
        assert!(hi > lo, "more noise, more off-chip: {lo} vs {hi}");
    }

    #[test]
    fn trace_mean_matches_single_qubit_probability() {
        let cfg = LifetimeConfig::new(3, 5e-3).with_cycles(4_000).with_seed(77);
        let q = offchip_probability(&cfg);
        let qubits = 40;
        let trace = multi_qubit_trace(&cfg, qubits, 4);
        assert_eq!(trace.len(), 4_000);
        let mean = trace.iter().sum::<usize>() as f64 / trace.len() as f64;
        let expected = q * qubits as f64;
        assert!(
            (mean - expected).abs() < 0.35 * expected.max(1.0),
            "trace mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn trace_is_deterministic_across_worker_counts() {
        let cfg = LifetimeConfig::new(3, 5e-3).with_cycles(1_000).with_seed(5);
        let t1 = multi_qubit_trace(&cfg, 10, 1);
        let t4 = multi_qubit_trace(&cfg, 10, 4);
        assert_eq!(t1, t4);
    }
}
