//! Multi-logical-qubit off-chip demand (inputs to Figs. 9 and 16).

use std::sync::Mutex;

use btwc_noise::SimRng;
use btwc_pool::Pool;

use crate::lifetime::{LifetimeConfig, LifetimeSim};

/// Estimates the per-qubit, per-cycle off-chip decode probability
/// `q = 1 − coverage` by lifetime simulation — the quantity the
/// statistical bandwidth allocator provisions against (Sec. 5.1).
#[must_use]
pub fn offchip_probability(cfg: &LifetimeConfig) -> f64 {
    LifetimeSim::new(cfg).run().offchip_fraction()
}

/// Simulates `num_qubits` independent logical qubits for `cfg.cycles`
/// cycles each and returns the per-cycle total number of off-chip
/// decode requests — the bar heights of Fig. 9.
///
/// Each qubit is one work-stealing pool task with an RNG stream forked
/// by qubit index, and per-cycle request counts accumulate by integer
/// addition, so the trace is deterministic in `(cfg.seed, num_qubits)`
/// regardless of the worker count (and identical to a serial run).
///
/// # Panics
///
/// Panics if `num_qubits == 0` or `workers == 0`.
#[must_use]
pub fn multi_qubit_trace(cfg: &LifetimeConfig, num_qubits: usize, workers: usize) -> Vec<usize> {
    assert!(num_qubits > 0, "need at least one qubit");
    let pool = Pool::new(workers);
    let cycles = cfg.cycles as usize;
    let root = SimRng::from_seed(cfg.seed);
    let totals = Mutex::new(vec![0usize; cycles]);
    pool.scope(|s| {
        for qubit in 0..num_qubits {
            let totals = &totals;
            let root = &root;
            let cfg = *cfg;
            s.spawn(move || {
                let mut qcfg = cfg;
                qcfg.seed = root.fork(crate::shard::QUBIT_STREAM + qubit as u64).seed();
                let (_, trace) = LifetimeSim::new(&qcfg).run_with_trace();
                let mut totals = totals.lock().expect("trace totals");
                for (t, off) in totals.iter_mut().zip(trace) {
                    *t += usize::from(off);
                }
            });
        }
    });
    totals.into_inner().expect("trace totals")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_in_unit_interval_and_scales_with_p() {
        let lo = offchip_probability(&LifetimeConfig::new(5, 5e-4).with_cycles(20_000));
        let hi = offchip_probability(&LifetimeConfig::new(5, 8e-3).with_cycles(20_000));
        assert!((0.0..=1.0).contains(&lo));
        assert!((0.0..=1.0).contains(&hi));
        assert!(hi > lo, "more noise, more off-chip: {lo} vs {hi}");
    }

    #[test]
    fn trace_mean_matches_single_qubit_probability() {
        let cfg = LifetimeConfig::new(3, 5e-3).with_cycles(4_000).with_seed(77);
        let q = offchip_probability(&cfg);
        let qubits = 40;
        let trace = multi_qubit_trace(&cfg, qubits, 4);
        assert_eq!(trace.len(), 4_000);
        let mean = trace.iter().sum::<usize>() as f64 / trace.len() as f64;
        let expected = q * qubits as f64;
        assert!(
            (mean - expected).abs() < 0.35 * expected.max(1.0),
            "trace mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn trace_is_deterministic_across_worker_counts() {
        let cfg = LifetimeConfig::new(3, 5e-3).with_cycles(1_000).with_seed(5);
        let t1 = multi_qubit_trace(&cfg, 10, 1);
        let t4 = multi_qubit_trace(&cfg, 10, 4);
        assert_eq!(t1, t4);
    }
}
