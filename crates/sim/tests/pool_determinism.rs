//! Worker-count independence of every parallel sim path.
//!
//! The pool contract: work is split into fixed shards with RNG streams
//! forked by shard index and merged in shard order, so worker count is
//! purely a scheduling choice. These tests pin that — any future change
//! that lets the worker count leak into shard planning or merge order
//! fails here (CI additionally re-runs the suite with `BTWC_WORKERS=1`
//! forcing every pool to one worker).

use std::sync::Arc;

use btwc_core::{ComplexDecoder, StabilizerType, SurfaceCode};
use btwc_sim::{
    coverage_sweep, coverage_sweep_iid, grid_point_seed, logical_error_rate_parallel,
    machine_offchip_trace_telemetry, multi_qubit_trace, signature_distribution_iid, DecoderBackend,
    DecoderKind, LifetimeConfig, LifetimeSim, Pool, ShotConfig,
};
use btwc_sparse::SparseDecoder;
use btwc_telemetry::{Domain, MetricsRegistry};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn lifetime_stats_identical_across_worker_counts() {
    // 20k cycles → 3 shards: the plan is split and merged, not trivial.
    let cfg = LifetimeConfig::new(5, 3e-3).with_cycles(20_000).with_seed(42);
    let reference = LifetimeSim::run_parallel(&cfg, WORKER_COUNTS[0]);
    assert_eq!(reference.cycles, 20_000);
    assert!(reference.complex > 0, "need complex decodes for a meaningful pin");
    for workers in &WORKER_COUNTS[1..] {
        assert_eq!(LifetimeSim::run_parallel(&cfg, *workers), reference, "workers={workers}");
    }
}

#[test]
fn ler_estimate_identical_across_worker_counts() {
    let cfg = ShotConfig::new(3, 5e-3).with_shots(600).with_seed(11);
    let reference = logical_error_rate_parallel(&cfg, DecoderKind::CliquePlusMwpm, 1);
    assert_eq!(reference.shots, 600);
    for workers in &WORKER_COUNTS[1..] {
        assert_eq!(
            logical_error_rate_parallel(&cfg, DecoderKind::CliquePlusMwpm, *workers),
            reference,
            "workers={workers}"
        );
    }
}

#[test]
fn coverage_sweep_identical_across_worker_counts() {
    let rates = [1e-3, 5e-3];
    let distances = [3u16, 5];
    let reference = coverage_sweep(&rates, &distances, 10_000, 7, 1);
    for workers in &WORKER_COUNTS[1..] {
        assert_eq!(
            coverage_sweep(&rates, &distances, 10_000, 7, *workers),
            reference,
            "workers={workers}"
        );
    }
}

#[test]
fn coverage_sweep_iid_identical_across_worker_counts() {
    let rates = [1e-3, 5e-3];
    let distances = [3u16, 5];
    let reference = coverage_sweep_iid(&rates, &distances, 40_000, 3, 1);
    for workers in &WORKER_COUNTS[1..] {
        assert_eq!(
            coverage_sweep_iid(&rates, &distances, 40_000, 3, *workers),
            reference,
            "workers={workers}"
        );
    }
}

#[test]
fn signature_distribution_iid_identical_across_worker_counts() {
    // 40k trials → 3 shards.
    let reference = signature_distribution_iid("iid", 5, 2e-3, 40_000, 9, 1);
    for workers in &WORKER_COUNTS[1..] {
        assert_eq!(
            signature_distribution_iid("iid", 5, 2e-3, 40_000, 9, *workers),
            reference,
            "workers={workers}"
        );
    }
}

#[test]
fn multi_qubit_trace_identical_across_worker_counts() {
    let cfg = LifetimeConfig::new(3, 5e-3).with_cycles(2_000).with_seed(5);
    let reference = multi_qubit_trace(&cfg, 12, 1);
    for workers in &WORKER_COUNTS[1..] {
        assert_eq!(multi_qubit_trace(&cfg, 12, *workers), reference, "workers={workers}");
    }
}

/// The telemetry determinism pin: the *cycle-domain* metric snapshot of
/// a machine run over a pooled sparse decoder must be bit-identical —
/// as serialized JSON — for any pool worker count. Cycle-domain metrics
/// are derived from the serially-stepped machine and from per-cluster
/// decode decisions (both worker-count-independent) and accumulated
/// with commutative atomic adds, so scheduling can reorder the
/// increments but never change the totals. Scheduling-sensitive
/// numbers (`pool.tasks_stolen` etc.) live in `Domain::Scheduling` and
/// are excluded from this snapshot by construction.
#[test]
fn cycle_domain_telemetry_identical_across_worker_counts() {
    fn pooled_sparse<const W: usize>(
        code: &SurfaceCode,
        ty: StabilizerType,
    ) -> Box<dyn ComplexDecoder + Send + Sync> {
        Box::new(SparseDecoder::new(code, ty).with_pool(Arc::new(Pool::new(W))))
    }
    let backends = [
        (
            WORKER_COUNTS[0],
            DecoderBackend::Custom { name: "sparse-pooled", build: pooled_sparse::<1> },
        ),
        (
            WORKER_COUNTS[1],
            DecoderBackend::Custom { name: "sparse-pooled", build: pooled_sparse::<2> },
        ),
        (
            WORKER_COUNTS[2],
            DecoderBackend::Custom { name: "sparse-pooled", build: pooled_sparse::<8> },
        ),
    ];
    let mut reference: Option<(String, _, _)> = None;
    for (workers, backend) in backends {
        let cfg =
            LifetimeConfig::new(5, 7e-3).with_cycles(2_500).with_seed(0x7E1).with_backend(backend);
        let registry = MetricsRegistry::new();
        let (stats, trace) = machine_offchip_trace_telemetry(&cfg, 8, 2, &registry);
        let snapshot = registry.snapshot_domains(&[Domain::Cycles]);
        assert!(
            snapshot.get_counter("sparse.clusters_solved").unwrap_or(0) > 0,
            "need real pooled cluster solves for a meaningful pin (workers={workers})"
        );
        let json = snapshot.to_json();
        match &reference {
            None => reference = Some((json, stats, trace)),
            Some((ref_json, ref_stats, ref_trace)) => {
                assert_eq!(&json, ref_json, "cycle-domain snapshot diverged at workers={workers}");
                assert_eq!(&stats, ref_stats, "workers={workers}");
                assert_eq!(&trace, ref_trace, "workers={workers}");
            }
        }
    }
}

#[test]
fn sweep_points_are_individually_reproducible() {
    // A sweep point re-run alone with its grid seed reproduces the
    // sweep's value bit-for-bit — the whole-grid schedule only moves
    // work, never changes it.
    let rates = [1e-3, 5e-3];
    let distances = [3u16, 5];
    let sweep = coverage_sweep(&rates, &distances, 10_000, 21, 4);
    for (pi, &p) in rates.iter().enumerate() {
        for (di, &d) in distances.iter().enumerate() {
            let cfg = LifetimeConfig::new(d, p)
                .with_cycles(10_000)
                .with_seed(grid_point_seed(21, pi, di));
            let stats = LifetimeSim::run_parallel(&cfg, 2);
            let point = sweep[pi * distances.len() + di];
            assert_eq!(point.coverage, stats.coverage(), "p={p} d={d}");
            assert_eq!(point.nonzero_onchip, stats.nonzero_onchip_fraction(), "p={p} d={d}");
            assert_eq!(point.offchip_fraction, stats.offchip_fraction(), "p={p} d={d}");
        }
    }
}

#[test]
fn iid_sweep_points_match_standalone_distribution() {
    let rates = [2e-3, 5e-3];
    let distances = [3u16, 5];
    let sweep = coverage_sweep_iid(&rates, &distances, 30_000, 13, 4);
    for (pi, &p) in rates.iter().enumerate() {
        for (di, &d) in distances.iter().enumerate() {
            let dist = signature_distribution_iid("", d, p, 30_000, grid_point_seed(13, pi, di), 2);
            let point = sweep[pi * distances.len() + di];
            assert_eq!(point.coverage, dist.all_zeros + dist.local_ones, "p={p} d={d}");
            assert_eq!(point.offchip_fraction, dist.complex, "p={p} d={d}");
        }
    }
}

#[test]
fn grid_points_get_decorrelated_seeds() {
    // The old sweep reused one root seed for every grid point, so two
    // points at the same distance replayed the identical error history.
    // Grid-position forking must give every point a distinct stream.
    let mut seeds: Vec<u64> = Vec::new();
    for pi in 0..4 {
        for di in 0..4 {
            seeds.push(grid_point_seed(99, pi, di));
        }
    }
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), 16, "every grid position must fork a distinct seed");

    // And the derived runs actually diverge: same (p, d), different
    // grid position → different sampled history.
    let a = LifetimeSim::run_parallel(
        &LifetimeConfig::new(3, 5e-3).with_cycles(5_000).with_seed(grid_point_seed(99, 0, 0)),
        1,
    );
    let b = LifetimeSim::run_parallel(
        &LifetimeConfig::new(3, 5e-3).with_cycles(5_000).with_seed(grid_point_seed(99, 1, 0)),
        1,
    );
    assert_ne!(a, b, "decorrelated points must sample different histories");
}
