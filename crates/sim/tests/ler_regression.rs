//! Regression: the packed-bitset rewrite of the shot loop must be
//! *bit-identical* to the seed's `Vec<bool>` pipeline for fixed seeds.
//!
//! The reference below reimplements the pre-packing `logical_error_rate`
//! exactly as the seed wrote it: every round materialized as a
//! `Vec<bool>` (`tracker.syndrome().to_vec()` + per-bit measurement
//! flips), every round pushed into the window unconditionally, and the
//! bool-slice frontend/window entry points. The packed implementation
//! may skip leading all-zero window rounds and run word ops, but the
//! sampled noise (RNG draw order), every Clique decision, every MWPM
//! correction, and therefore every counter in [`LerEstimate`] must come
//! out the same.

use btwc_clique::{CliqueDecision, CliqueFrontend};
use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_mwpm::MwpmDecoder;
use btwc_noise::{SimRng, SparseFlips};
use btwc_sim::{logical_error_rate, DecoderKind, ErrorTracker, LerEstimate, ShotConfig};
use btwc_syndrome::RoundHistory;

/// The seed's shot loop, verbatim modulo the packed tracker's
/// `to_bools()` unpacking.
fn reference_logical_error_rate(cfg: &ShotConfig, kind: DecoderKind) -> LerEstimate {
    let ty = StabilizerType::X;
    let code = SurfaceCode::new(cfg.distance);
    let mwpm = MwpmDecoder::new(&code, ty);
    let mut tracker = ErrorTracker::new(&code, ty);
    let mut frontend = CliqueFrontend::with_rounds(&code, ty, cfg.clique_rounds);
    let n_anc = code.num_ancillas(ty);
    let n_data = code.num_data_qubits();
    let mut rng = SimRng::from_seed(cfg.seed);
    let mut window = RoundHistory::new(n_anc, cfg.rounds + 1);
    let mut est = LerEstimate { shots: 0, failures: 0, offchip_shots: 0 };
    let p = cfg.physical_error_rate;

    for _ in 0..cfg.shots {
        tracker.reset();
        frontend.reset();
        window.reset();
        let mut went_offchip = false;
        for _ in 0..cfg.rounds {
            let flips: Vec<usize> = SparseFlips::new(&mut rng, n_data, p).collect();
            for q in flips {
                tracker.flip(q);
            }
            let mut round = tracker.syndrome().to_bools();
            let mflips: Vec<usize> = SparseFlips::new(&mut rng, n_anc, p).collect();
            for a in mflips {
                round[a] ^= true;
            }
            window.push(&round);
            if kind == DecoderKind::CliquePlusMwpm {
                match frontend.push_round(&round) {
                    CliqueDecision::AllZeros => {}
                    CliqueDecision::Trivial(c) => tracker.apply(c.qubits()),
                    CliqueDecision::Complex => went_offchip = true,
                }
            }
        }
        window.push(&tracker.syndrome().to_bools());
        let cleanup = mwpm.decode_window(&window);
        tracker.apply(cleanup.qubits());
        assert!(tracker.is_quiet(), "reference decode must clear the syndrome");
        est.shots += 1;
        est.failures += u64::from(code.is_logical_error(ty, tracker.errors()));
        est.offchip_shots += u64::from(went_offchip);
    }
    est
}

#[test]
fn packed_shot_loop_is_bit_identical_to_boolvec_reference() {
    let scenarios =
        [(3u16, 8e-3, 400u64, 11u64), (5, 8e-3, 200, 3), (5, 2e-3, 200, 1234), (7, 5e-3, 80, 7)];
    for (d, p, shots, seed) in scenarios {
        for kind in [DecoderKind::MwpmOnly, DecoderKind::CliquePlusMwpm] {
            let cfg = ShotConfig::new(d, p).with_shots(shots).with_seed(seed);
            let reference = reference_logical_error_rate(&cfg, kind);
            let packed = logical_error_rate(&cfg, kind);
            assert_eq!(
                packed, reference,
                "d={d} p={p} seed={seed} kind={kind:?}: packed rewrite diverged"
            );
            // The noisiest scenario must actually exercise failures and
            // off-chip traffic, or the equality above proves nothing.
            if d == 3 {
                assert!(
                    reference.failures > 0,
                    "d={d} p={p}: scenario too quiet to be a meaningful regression check"
                );
            }
        }
    }
}

#[test]
fn golden_counters_for_fixed_seed() {
    // Pin one scenario's exact counters so *any* future change to RNG
    // consumption or decode behavior in the shot loop trips a test,
    // even if it changes reference and packed paths in lockstep.
    let cfg = ShotConfig::new(3, 8e-3).with_shots(400).with_seed(11);
    let est = logical_error_rate(&cfg, DecoderKind::CliquePlusMwpm);
    assert_eq!(est.shots, 400);
    let reference = reference_logical_error_rate(&cfg, DecoderKind::CliquePlusMwpm);
    assert_eq!(est, reference);
    assert!(est.failures > 0, "d=3 at p=8e-3 must fail sometimes");
    assert!(est.offchip_shots > 0, "some shots must go off-chip");
}
