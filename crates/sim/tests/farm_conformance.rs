//! The service-conformance harness: the decode-farm tier must be
//! invisible.
//!
//! Under a [`FarmConfig::generous`] farm, every tenant's outcomes —
//! stats, per-cycle demand trace, end-of-run error state, and
//! `machine.*` cycle-domain telemetry — must be **bit-identical** to
//! the inline single-machine loop ([`machine_offchip_trace`]), for
//! every builtin backend, for `BTWC_WORKERS` ∈ {1, 2, 8}, both pool
//! modes, and any submission interleaving (fleet argument order).

use btwc_pool::PoolMode;
use btwc_sim::{
    machine_farm_trace, machine_offchip_trace_telemetry, DecoderBackend, FarmConfig, FarmTenant,
    FarmTenantRun, LifetimeConfig, Pool,
};
use btwc_telemetry::{Domain, MetricsRegistry};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// The inline reference: stats, trace, and the `machine.*` snapshot of
/// a single-machine run.
fn inline_reference(
    cfg: &LifetimeConfig,
    qubits: usize,
    bandwidth: usize,
) -> (btwc_core::MachineStats, Vec<usize>, String) {
    let registry = MetricsRegistry::new();
    let (stats, trace) = machine_offchip_trace_telemetry(cfg, qubits, bandwidth, &registry);
    let mut snap = registry.snapshot_domains(&[Domain::Cycles]);
    snap.retain_prefix("machine.");
    (stats, trace, snap.to_json())
}

fn assert_tenant_matches_inline(
    run: &FarmTenantRun,
    cfg: &LifetimeConfig,
    qubits: usize,
    bandwidth: usize,
    label: &str,
) {
    let (stats, trace, telemetry) = inline_reference(cfg, qubits, bandwidth);
    assert!(stats.offchip_requests > 0, "{label}: workload never escalated — the pin is vacuous");
    assert_eq!(run.stats, stats, "{label}: machine stats diverge from the inline loop");
    assert_eq!(run.trace, trace, "{label}: demand trace diverges from the inline loop");
    assert_eq!(
        run.telemetry_json, telemetry,
        "{label}: machine.* cycle-domain telemetry diverges from the inline loop"
    );
}

/// The tentpole pin: one tenant per builtin backend, each bit-identical
/// to its inline run, at every worker count.
#[test]
fn farm_outcomes_match_inline_loop_for_every_backend_and_worker_count() {
    let backends = [
        DecoderBackend::DenseMwpm,
        DecoderBackend::SparseBlossom,
        DecoderBackend::UnionFind,
        DecoderBackend::Lut,
    ];
    // d = 5 keeps the Lut backend in range while the rate forces
    // steady escalation traffic (hundreds of farm decodes per tenant).
    let cfgs: Vec<LifetimeConfig> = backends
        .iter()
        .enumerate()
        .map(|(i, &backend)| {
            LifetimeConfig::new(5, 2.2e-2)
                .with_cycles(400)
                .with_seed(0xC0 + i as u64)
                .with_backend(backend)
        })
        .collect();
    let qubits = 4;
    let bandwidth = 2;
    for workers in WORKER_COUNTS {
        let tenants: Vec<FarmTenant> =
            cfgs.iter().map(|cfg| FarmTenant::new(*cfg, qubits, bandwidth)).collect();
        let run = machine_farm_trace(&tenants, FarmConfig::generous(), Pool::new(workers));
        assert_eq!(run.final_queue_depth, 0, "a generous farm never accumulates backlog");
        for (tenant, cfg) in run.tenants.iter().zip(&cfgs) {
            assert_tenant_matches_inline(
                tenant,
                cfg,
                qubits,
                bandwidth,
                &format!("backend {} @ {workers} workers", cfg.backend.name()),
            );
        }
    }
}

/// Submission interleaving must be invisible: permuting the fleet order
/// (which permutes every cycle's submission order into the farm, and
/// regroups which jobs share a batched decode) leaves each tenant's
/// results bit-identical.
#[test]
fn submission_interleaving_is_invisible() {
    // Two tenants share the sparse slot (their jobs batch together),
    // one has its own union-find slot.
    let cfgs = [
        LifetimeConfig::new(5, 2.2e-2)
            .with_cycles(300)
            .with_seed(1)
            .with_backend(DecoderBackend::SparseBlossom),
        LifetimeConfig::new(5, 2.2e-2)
            .with_cycles(300)
            .with_seed(2)
            .with_backend(DecoderBackend::SparseBlossom),
        LifetimeConfig::new(5, 2.2e-2)
            .with_cycles(300)
            .with_seed(3)
            .with_backend(DecoderBackend::UnionFind),
    ];
    let tenant = |i: usize| FarmTenant::new(cfgs[i], 3, 2);
    let order_a = [tenant(0), tenant(1), tenant(2)];
    let order_b = [tenant(2), tenant(0), tenant(1)];
    let run_a = machine_farm_trace(&order_a, FarmConfig::generous(), Pool::new(2));
    let run_b = machine_farm_trace(&order_b, FarmConfig::generous(), Pool::new(2));
    // run_b's tenants are [2, 0, 1] of run_a's.
    for (a, b) in [(0usize, 1usize), (1, 2), (2, 0)] {
        assert_eq!(
            run_a.tenants[a], run_b.tenants[b],
            "tenant with seed {} changed under a different interleaving",
            cfgs[a].seed
        );
    }
    // And each of them still matches its inline run.
    for (i, t) in run_a.tenants.iter().enumerate() {
        assert_tenant_matches_inline(t, &cfgs[i], 3, 2, &format!("interleaving tenant {i}"));
    }
}

/// The pin holds across pool modes: the persistent-worker pool and the
/// legacy per-`map` spawn pool produce byte-identical fleet runs.
#[test]
fn farm_runs_are_identical_across_pool_modes() {
    let cfgs = [
        LifetimeConfig::new(3, 5e-2)
            .with_cycles(400)
            .with_seed(7)
            .with_backend(DecoderBackend::SparseBlossom),
        LifetimeConfig::new(5, 2.2e-2)
            .with_cycles(400)
            .with_seed(8)
            .with_backend(DecoderBackend::DenseMwpm),
    ];
    let tenants: Vec<FarmTenant> = cfgs.iter().map(|cfg| FarmTenant::new(*cfg, 3, 2)).collect();
    let runs: Vec<_> = [PoolMode::Persistent, PoolMode::Legacy]
        .into_iter()
        .map(|mode| {
            machine_farm_trace(&tenants, FarmConfig::generous(), Pool::new(4).with_mode(mode))
        })
        .collect();
    assert_eq!(runs[0], runs[1], "pool mode leaked into fleet results");
}
