//! Determinism extension for the decode farm: a multi-tenant fleet run
//! — 8 machines, mixed distances and backends, a bounded (non-generous)
//! service model, cadence exports on — must be **byte-identical** for
//! `BTWC_WORKERS` ∈ {1, 2, 8} and for the persistent-worker vs legacy
//! per-`map`-spawn pool modes: per-tenant outcomes, stats, traces,
//! cycle-domain telemetry snapshots, cadence exports, and the
//! fleet-wide aggregate snapshot.

use btwc_pool::PoolMode;
use btwc_sim::{
    machine_farm_trace, DecoderBackend, FarmConfig, FarmRun, FarmTenant, LifetimeConfig, Pool,
};

fn fleet() -> Vec<FarmTenant> {
    // 8 machines: mixed distances (3 and 5), mixed backends, two of
    // them sharing each decoder slot so cross-tenant batching happens.
    let shapes = [
        (3u16, DecoderBackend::SparseBlossom),
        (5, DecoderBackend::SparseBlossom),
        (3, DecoderBackend::UnionFind),
        (5, DecoderBackend::UnionFind),
        (3, DecoderBackend::SparseBlossom),
        (5, DecoderBackend::SparseBlossom),
        (3, DecoderBackend::UnionFind),
        (5, DecoderBackend::UnionFind),
    ];
    shapes
        .iter()
        .enumerate()
        .map(|(i, &(d, backend))| {
            let p = if d == 3 { 5e-2 } else { 2.2e-2 };
            let cfg = LifetimeConfig::new(d, p)
                .with_cycles(300)
                .with_seed(0xF0 + i as u64)
                .with_backend(backend);
            FarmTenant::new(cfg, 3, 2)
        })
        .collect()
}

fn config() -> FarmConfig {
    // Bounded on purpose: admission decisions, rejections, and modeled
    // delays must themselves be deterministic, not just trivially zero.
    let mut cfg = FarmConfig::bounded(24, 4);
    cfg.snapshot_cadence = Some(100);
    cfg
}

fn run(workers: usize, mode: PoolMode) -> FarmRun {
    machine_farm_trace(&fleet(), config(), Pool::new(workers).with_mode(mode))
}

#[test]
fn fleet_run_is_identical_for_any_worker_count() {
    let reference = run(1, PoolMode::Persistent);
    assert_eq!(reference.tenants.len(), 8);
    // The bounded model must actually be exercised somewhere: demand
    // exists and the cadence exporter fired.
    assert!(reference.tenants.iter().any(|t| t.stats.offchip_requests > 0));
    assert_eq!(reference.exports.len(), 3 * 8, "300 cycles / cadence 100 × 8 tenants");
    for workers in [2, 8] {
        let got = run(workers, PoolMode::Persistent);
        assert_eq!(reference, got, "fleet run diverged at {workers} workers");
    }
}

#[test]
fn fleet_run_is_identical_across_pool_modes() {
    for workers in [1, 2, 8] {
        let persistent = run(workers, PoolMode::Persistent);
        let legacy = run(workers, PoolMode::Legacy);
        assert_eq!(persistent, legacy, "pool mode leaked into fleet results at {workers} workers");
    }
}
