//! Deterministic, forkable simulation RNG.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The workspace-wide simulation RNG.
///
/// A thin wrapper over a fast non-cryptographic generator with two extra
/// guarantees the Monte Carlo engine relies on:
///
/// * **determinism** — the same seed always reproduces the same error
///   history, so every figure in EXPERIMENTS.md is regenerable bit-for-bit;
/// * **forkability** — [`SimRng::fork`] derives an independent stream for
///   each worker thread / logical qubit from a `(seed, stream)` pair via a
///   SplitMix64 mix, so parallel simulations do not share state.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self { inner: SmallRng::seed_from_u64(splitmix64(seed)), seed }
    }

    /// Derives an independent stream for worker/qubit `stream`.
    ///
    /// Forks of the same `(seed, stream)` pair are identical; forks with
    /// different streams are statistically independent.
    #[must_use]
    pub fn fork(&self, stream: u64) -> Self {
        let mixed = splitmix64(self.seed ^ splitmix64(stream.wrapping_add(0x9E37_79B9_7F4A_7C15)));
        Self { inner: SmallRng::seed_from_u64(mixed), seed: mixed }
    }

    /// The seed this generator was created with (after mixing).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform `f64` in `[0, 1)`.
    #[must_use]
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        self.inner.random_bool(p)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.random_range(0..n)
    }

    /// Raw 64 random bits.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random::<u64>()
    }
}

/// SplitMix64 finalizer — a high-quality 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces_stream() {
        let mut a = SimRng::from_seed(42);
        let mut b = SimRng::from_seed(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let root = SimRng::from_seed(7);
        let mut f1 = root.fork(0);
        let mut f1_again = root.fork(0);
        let mut f2 = root.fork(1);
        assert_eq!(f1.next_u64(), f1_again.next_u64());
        let mut c1 = root.fork(0);
        let same = (0..64).filter(|_| c1.next_u64() == f2.next_u64()).count();
        assert_eq!(same, 0, "distinct streams should not collide");
    }

    #[test]
    fn bernoulli_mean_is_close() {
        let mut rng = SimRng::from_seed(3);
        let n = 200_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.25)).count();
        let mean = hits as f64 / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SimRng::from_seed(9);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SimRng::from_seed(11);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn bernoulli_rejects_bad_probability() {
        let mut rng = SimRng::from_seed(0);
        let _ = rng.bernoulli(1.5);
    }
}
