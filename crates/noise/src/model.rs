//! Noise models: phenomenological (paper default) and code-capacity.

use crate::rng::SimRng;
use crate::sparse::SparseFlips;

/// A per-cycle error process over data qubits and syndrome measurements.
///
/// Implementations flip bits *into* caller-provided buffers (XOR
/// semantics), so accumulated data errors persist across cycles until a
/// decoder corrects them, while measurement flips are transient.
///
/// This trait is sealed in spirit — downstream code normally uses
/// [`PhenomenologicalNoise`] — but is left open so experiments can plug
/// in custom error processes (e.g. correlated or biased noise).
pub trait NoiseModel {
    /// Probability of a data-qubit error per cycle.
    fn data_error_rate(&self) -> f64;

    /// Probability of a measurement flip per cycle.
    fn measurement_error_rate(&self) -> f64;

    /// XORs one cycle of fresh data errors into `data`.
    fn sample_data_into(&self, rng: &mut SimRng, data: &mut [bool]);

    /// Overwrites `meas` with this cycle's measurement flips.
    fn sample_measurement_into(&self, rng: &mut SimRng, meas: &mut [bool]);
}

/// The paper's phenomenological noise model (Sec. 6.1): independent
/// data-qubit errors and measurement flips, by default at the same
/// rate `p` per cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhenomenologicalNoise {
    p_data: f64,
    p_meas: f64,
}

impl PhenomenologicalNoise {
    /// The paper's single-parameter model: data and measurement errors
    /// both at probability `p` per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn uniform(p: f64) -> Self {
        Self::new(p, p)
    }

    /// Independent data and measurement error rates (for ablations).
    ///
    /// # Panics
    ///
    /// Panics if either rate is not in `[0, 1]`.
    #[must_use]
    pub fn new(p_data: f64, p_meas: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_data), "p_data {p_data} out of [0,1]");
        assert!((0.0..=1.0).contains(&p_meas), "p_meas {p_meas} out of [0,1]");
        Self { p_data, p_meas }
    }
}

impl NoiseModel for PhenomenologicalNoise {
    fn data_error_rate(&self) -> f64 {
        self.p_data
    }

    fn measurement_error_rate(&self) -> f64 {
        self.p_meas
    }

    fn sample_data_into(&self, rng: &mut SimRng, data: &mut [bool]) {
        let n = data.len();
        let flips: Vec<usize> = SparseFlips::new(rng, n, self.p_data).collect();
        for i in flips {
            data[i] ^= true;
        }
    }

    fn sample_measurement_into(&self, rng: &mut SimRng, meas: &mut [bool]) {
        meas.fill(false);
        let n = meas.len();
        let flips: Vec<usize> = SparseFlips::new(rng, n, self.p_meas).collect();
        for i in flips {
            meas[i] = true;
        }
    }
}

/// Code-capacity noise: data errors only, perfect measurements.
///
/// Useful as an ablation to isolate how much of Clique's complex-decode
/// traffic is caused by measurement errors versus data-error chains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeCapacityNoise {
    inner: PhenomenologicalNoise,
}

impl CodeCapacityNoise {
    /// Data errors at rate `p`, measurements perfect.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        Self { inner: PhenomenologicalNoise::new(p, 0.0) }
    }
}

impl NoiseModel for CodeCapacityNoise {
    fn data_error_rate(&self) -> f64 {
        self.inner.data_error_rate()
    }

    fn measurement_error_rate(&self) -> f64 {
        0.0
    }

    fn sample_data_into(&self, rng: &mut SimRng, data: &mut [bool]) {
        self.inner.sample_data_into(rng, data);
    }

    fn sample_measurement_into(&self, rng: &mut SimRng, meas: &mut [bool]) {
        self.inner.sample_measurement_into(rng, meas);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sets_both_rates() {
        let n = PhenomenologicalNoise::uniform(1e-3);
        assert_eq!(n.data_error_rate(), 1e-3);
        assert_eq!(n.measurement_error_rate(), 1e-3);
    }

    #[test]
    fn data_errors_accumulate_with_xor() {
        let noise = PhenomenologicalNoise::uniform(0.5);
        let mut rng = SimRng::from_seed(21);
        let mut data = vec![false; 64];
        // After many cycles of XOR at p=0.5 roughly half the bits are set.
        for _ in 0..100 {
            noise.sample_data_into(&mut rng, &mut data);
        }
        let set = data.iter().filter(|&&b| b).count();
        assert!(set > 10 && set < 54, "{set} bits set");
    }

    #[test]
    fn measurement_flips_do_not_accumulate() {
        let noise = PhenomenologicalNoise::uniform(0.1);
        let mut rng = SimRng::from_seed(22);
        let mut meas = vec![true; 64]; // stale values must be cleared
        noise.sample_measurement_into(&mut rng, &mut meas);
        let set = meas.iter().filter(|&&b| b).count();
        assert!(set < 25, "overwrite semantics: got {set} set bits");
    }

    #[test]
    fn empirical_rate_matches_parameter() {
        let noise = PhenomenologicalNoise::uniform(0.02);
        let mut rng = SimRng::from_seed(23);
        let mut total = 0usize;
        let trials = 10_000;
        let mut buf = vec![false; 100];
        for _ in 0..trials {
            buf.fill(false);
            noise.sample_data_into(&mut rng, &mut buf);
            total += buf.iter().filter(|&&b| b).count();
        }
        let rate = total as f64 / (trials * 100) as f64;
        assert!((rate - 0.02).abs() < 0.002, "rate {rate}");
    }

    #[test]
    fn code_capacity_has_no_measurement_errors() {
        let noise = CodeCapacityNoise::new(0.5);
        let mut rng = SimRng::from_seed(24);
        let mut meas = vec![true; 32];
        noise.sample_measurement_into(&mut rng, &mut meas);
        assert!(meas.iter().all(|&b| !b));
        assert_eq!(noise.measurement_error_rate(), 0.0);
        assert_eq!(noise.data_error_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn rejects_invalid_rate() {
        let _ = PhenomenologicalNoise::uniform(2.0);
    }
}
