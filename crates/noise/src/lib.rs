//! Stochastic error injection for surface-code lifetime simulation.
//!
//! Implements the paper's phenomenological noise model (Sec. 6.1): each
//! cycle independently flips every data qubit with probability `p` and
//! every syndrome measurement with the same probability `p`. Variants
//! with independent data/measurement rates and a code-capacity model
//! (no measurement errors) are provided for ablations.
//!
//! Sampling is performed either naively (one Bernoulli draw per site) or
//! through a geometric-skip sparse sampler that is orders of magnitude
//! faster at the low error rates the paper sweeps (5e-4 … 5e-3), which is
//! what makes billion-cycle-scale Monte Carlo tractable.
//!
//! # Example
//!
//! ```
//! use btwc_noise::{NoiseModel, PhenomenologicalNoise, SimRng};
//!
//! let noise = PhenomenologicalNoise::uniform(1e-3);
//! let mut rng = SimRng::from_seed(7);
//! let mut data = vec![false; 49];
//! noise.sample_data_into(&mut rng, &mut data);
//! assert!(data.iter().filter(|&&e| e).count() <= 49);
//! ```

mod model;
mod rng;
mod sparse;

pub use model::{CodeCapacityNoise, NoiseModel, PhenomenologicalNoise};
pub use rng::SimRng;
pub use sparse::SparseFlips;
