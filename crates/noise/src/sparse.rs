//! Geometric-skip sparse Bernoulli sampling.
//!
//! Drawing `n` independent Bernoulli(p) bits costs `n` RNG calls. When
//! `p` is small (the paper's regime: 5e-4 … 5e-3 over ~1e2–1e3 sites),
//! it is much cheaper to jump directly between successes: the gap between
//! consecutive flipped sites is geometrically distributed, and one
//! uniform draw yields one gap via inversion. This sampler is what makes
//! the paper's "billion random cycles" benchmarking style feasible in a
//! test suite.

use crate::rng::SimRng;

/// Iterator over the indices in `[0, n)` that a Bernoulli(p) process
/// flips, produced with O(#flips) RNG draws.
#[derive(Debug)]
pub struct SparseFlips<'a> {
    rng: &'a mut SimRng,
    n: usize,
    next: usize,
    /// ln(1 - p); `None` means p == 0 (no flips ever).
    log_q: Option<f64>,
    /// p == 1 fast path.
    always: bool,
}

impl<'a> SparseFlips<'a> {
    /// Creates a sparse sampler over `n` sites with flip probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn new(rng: &'a mut SimRng, n: usize, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        let always = p >= 1.0;
        let log_q = if p <= 0.0 || always { None } else { Some((1.0 - p).ln()) };
        let mut s = Self { rng, n, next: 0, log_q, always };
        if !always {
            s.advance_from(0);
        }
        s
    }

    /// Positions `self.next` at the first success index `>= start`.
    fn advance_from(&mut self, start: usize) {
        match self.log_q {
            None => self.next = self.n, // p == 0
            Some(log_q) => {
                // Geometric gap via inversion: floor(ln(U) / ln(1-p)).
                let u = self.rng.uniform().max(f64::MIN_POSITIVE);
                let gap = (u.ln() / log_q).floor();
                // Saturate gracefully for enormous gaps.
                if gap >= (self.n - start.min(self.n)) as f64 {
                    self.next = self.n;
                } else {
                    self.next = start + gap as usize;
                }
            }
        }
    }
}

impl Iterator for SparseFlips<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.always {
            if self.next < self.n {
                let i = self.next;
                self.next += 1;
                return Some(i);
            }
            return None;
        }
        if self.next >= self.n {
            return None;
        }
        let i = self.next;
        self.advance_from(i + 1);
        Some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_zero_yields_nothing() {
        let mut rng = SimRng::from_seed(1);
        assert_eq!(SparseFlips::new(&mut rng, 1000, 0.0).count(), 0);
    }

    #[test]
    fn p_one_yields_everything() {
        let mut rng = SimRng::from_seed(1);
        let flips: Vec<usize> = SparseFlips::new(&mut rng, 10, 1.0).collect();
        assert_eq!(flips, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn indices_are_strictly_increasing_and_in_range() {
        let mut rng = SimRng::from_seed(5);
        for _ in 0..100 {
            let flips: Vec<usize> = SparseFlips::new(&mut rng, 500, 0.05).collect();
            for w in flips.windows(2) {
                assert!(w[0] < w[1]);
            }
            for &i in &flips {
                assert!(i < 500);
            }
        }
    }

    #[test]
    fn mean_flip_count_matches_np() {
        let mut rng = SimRng::from_seed(8);
        let (n, p, trials) = (200usize, 0.01f64, 20_000usize);
        let total: usize = (0..trials).map(|_| SparseFlips::new(&mut rng, n, p).count()).sum();
        let mean = total as f64 / trials as f64;
        let expect = n as f64 * p;
        assert!((mean - expect).abs() < 0.1 * expect, "mean {mean}, expected {expect}");
    }

    #[test]
    fn per_site_marginal_is_uniform() {
        // Each site must be flipped with (approximately) equal frequency —
        // a common bug in skip samplers is biasing early indices.
        let mut rng = SimRng::from_seed(13);
        let (n, p, trials) = (50usize, 0.04f64, 50_000usize);
        let mut hits = vec![0usize; n];
        for _ in 0..trials {
            for i in SparseFlips::new(&mut rng, n, p) {
                hits[i] += 1;
            }
        }
        let expect = trials as f64 * p;
        for (i, &h) in hits.iter().enumerate() {
            assert!(
                (h as f64 - expect).abs() < 0.25 * expect,
                "site {i}: {h} hits vs expected {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn rejects_bad_probability() {
        let mut rng = SimRng::from_seed(0);
        let _ = SparseFlips::new(&mut rng, 10, -0.1);
    }
}
