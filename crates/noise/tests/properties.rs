//! Property-based tests of the sparse sampler and RNG invariants.

use btwc_noise::{SimRng, SparseFlips};
use proptest::prelude::*;

proptest! {
    /// Flip indices are strictly increasing and in range for any (n, p).
    #[test]
    fn flips_are_sorted_unique_in_range(
        n in 0usize..300,
        p in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::from_seed(seed);
        let flips: Vec<usize> = SparseFlips::new(&mut rng, n, p).collect();
        for w in flips.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for &i in &flips {
            prop_assert!(i < n);
        }
        if p >= 1.0 {
            prop_assert_eq!(flips.len(), n);
        }
    }

    /// Forked streams are reproducible functions of (seed, stream).
    #[test]
    fn forks_are_reproducible(seed in any::<u64>(), stream in any::<u64>()) {
        let root = SimRng::from_seed(seed);
        let mut a = root.fork(stream);
        let mut b = root.fork(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
