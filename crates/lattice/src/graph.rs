//! The detector graph: one node per ancilla, one edge per data qubit.
//!
//! This single structure backs both decoders in the workspace:
//!
//! * the **Clique** decoder's "clique" around ancilla `a` is exactly `a`
//!   plus its [`DetectorGraph::ancilla_neighbors`], and its boundary
//!   special cases (paper Fig. 5) are exactly the ancillas with
//!   [`DetectorGraph::private_qubits`];
//! * the **MWPM** decoder's spatial metric is the shortest-path distance
//!   on this graph, with [`DetectorGraph::boundary_distance`] giving the
//!   cost of terminating an error chain on the open boundary.

use crate::code::Ancilla;

/// Endpoint of a detector-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// A stabilizer ancilla, by index into [`crate::SurfaceCode::ancillas`].
    Ancilla(usize),
    /// The open boundary where error chains of this species terminate.
    Boundary,
}

/// One detector-graph edge; crossing it corresponds to an error on
/// exactly one data qubit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphEdge {
    /// First endpoint (always an ancilla).
    pub a: usize,
    /// Second endpoint (an ancilla or the boundary).
    pub b: NodeRef,
    /// Linear index of the data qubit whose error flips both endpoints.
    pub qubit: usize,
}

/// Detector graph over the ancillas of one stabilizer type.
#[derive(Debug, Clone)]
pub struct DetectorGraph {
    num_nodes: usize,
    edges: Vec<GraphEdge>,
    /// adjacency[a] = (neighbor, qubit) pairs, boundary included.
    adjacency: Vec<Vec<(NodeRef, usize)>>,
    /// dist[a * n + b] = shortest path length (in data-qubit errors).
    dist: Vec<u32>,
    /// parent[src * n + node] = (previous node, qubit crossed) on the
    /// shortest path from src, encoded as u32 pairs (u32::MAX = none).
    parent: Vec<(u32, u32)>,
    /// Shortest distance from each node to the boundary.
    boundary_dist: Vec<u32>,
    /// First hop of a shortest path toward the boundary:
    /// either directly out (the private qubit) or to a neighbor ancilla.
    boundary_parent: Vec<(NodeRef, usize)>,
    /// CSR ancilla-ancilla adjacency (boundary edges excluded):
    /// neighbors of `a` are `nbr_data[nbr_idx[a]..nbr_idx[a + 1]]`.
    /// Flat and allocation-free to query — the decoders' graph-walk
    /// hot paths (sparse region growth in particular) iterate it per
    /// visited node.
    nbr_idx: Vec<u32>,
    nbr_data: Vec<u32>,
    /// `max(boundary_dist)` — the radius bound sparse region growth uses.
    max_boundary_dist: u32,
}

impl DetectorGraph {
    /// Builds the detector graph from the ancilla incidence lists.
    ///
    /// # Panics
    ///
    /// Panics if any data qubit is checked by zero or more than two
    /// ancillas of this type — that would violate the surface-code
    /// structure this crate is built for.
    #[must_use]
    pub(crate) fn build(ancillas: &[Ancilla], num_data: usize) -> Self {
        let num_nodes = ancillas.len();
        let mut owners: Vec<Vec<usize>> = vec![Vec::new(); num_data];
        for (i, a) in ancillas.iter().enumerate() {
            for &q in a.data_qubits() {
                owners[q].push(i);
            }
        }
        let mut edges = Vec::new();
        let mut adjacency = vec![Vec::new(); num_nodes];
        for (q, own) in owners.iter().enumerate() {
            match own.as_slice() {
                [a] => {
                    edges.push(GraphEdge { a: *a, b: NodeRef::Boundary, qubit: q });
                    adjacency[*a].push((NodeRef::Boundary, q));
                }
                [a, b] => {
                    edges.push(GraphEdge { a: *a, b: NodeRef::Ancilla(*b), qubit: q });
                    adjacency[*a].push((NodeRef::Ancilla(*b), q));
                    adjacency[*b].push((NodeRef::Ancilla(*a), q));
                }
                other => panic!(
                    "data qubit {q} checked by {} ancillas of one type; expected 1 or 2",
                    other.len()
                ),
            }
        }

        // All-pairs BFS (unit edge weights), stored flat so large codes
        // (the paper's d=81 scenario has ~3.3k nodes per type) stay
        // memory-friendly.
        let mut dist = vec![u32::MAX; num_nodes * num_nodes];
        let mut parent = vec![(u32::MAX, u32::MAX); num_nodes * num_nodes];
        for src in 0..num_nodes {
            let (d, p) = bfs_from(src, &adjacency, num_nodes);
            dist[src * num_nodes..(src + 1) * num_nodes].copy_from_slice(&d);
            for (i, entry) in p.into_iter().enumerate() {
                if let Some((prev, q)) = entry {
                    parent[src * num_nodes + i] = (prev as u32, q as u32);
                }
            }
        }

        // Multi-source BFS from the boundary.
        let (boundary_dist, boundary_parent) = bfs_from_boundary(&adjacency, num_nodes);

        // Flatten the ancilla-ancilla adjacency into CSR form.
        let mut nbr_idx = Vec::with_capacity(num_nodes + 1);
        let mut nbr_data = Vec::new();
        nbr_idx.push(0);
        for adj in &adjacency {
            for &(n, _) in adj {
                if let NodeRef::Ancilla(b) = n {
                    nbr_data.push(b as u32);
                }
            }
            nbr_idx.push(nbr_data.len() as u32);
        }
        let max_boundary_dist = boundary_dist.iter().copied().max().unwrap_or(0);

        Self {
            num_nodes,
            edges,
            adjacency,
            dist,
            parent,
            boundary_dist,
            boundary_parent,
            nbr_idx,
            nbr_data,
            max_boundary_dist,
        }
    }

    /// Number of ancilla nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// All edges (one per covered data qubit).
    #[must_use]
    pub fn edges(&self) -> &[GraphEdge] {
        &self.edges
    }

    /// The same-type ancilla neighbors of `a` — the "p, q, r, s" of the
    /// paper's Fig. 5 clique — as `(neighbor, shared data qubit)` pairs.
    #[must_use]
    pub fn ancilla_neighbors(&self, a: usize) -> Vec<(usize, usize)> {
        self.adjacency[a]
            .iter()
            .filter_map(|&(n, q)| match n {
                NodeRef::Ancilla(b) => Some((b, q)),
                NodeRef::Boundary => None,
            })
            .collect()
    }

    /// The same-type ancilla neighbors of `a` as a flat slice —
    /// the allocation-free form of [`DetectorGraph::ancilla_neighbors`]
    /// (without the shared-qubit labels) for graph-walk hot paths.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, a: usize) -> &[u32] {
        &self.nbr_data[self.nbr_idx[a] as usize..self.nbr_idx[a + 1] as usize]
    }

    /// The largest boundary distance over all ancillas — the worst-case
    /// cost of absorbing a lone defect, and the radius bound for region
    /// growth in the sparse matcher.
    #[must_use]
    pub fn max_boundary_distance(&self) -> u32 {
        self.max_boundary_dist
    }

    /// Data qubits checked *only* by ancilla `a` (boundary edges).
    ///
    /// A single error on such a qubit lights `a` alone — the paper's
    /// corner/edge special cases that are trivial despite even
    /// neighborhood parity.
    #[must_use]
    pub fn private_qubits(&self, a: usize) -> Vec<usize> {
        self.adjacency[a]
            .iter()
            .filter_map(|&(n, q)| match n {
                NodeRef::Boundary => Some(q),
                NodeRef::Ancilla(_) => None,
            })
            .collect()
    }

    /// Shortest-path distance between two ancillas, in number of data
    /// qubit errors.
    #[must_use]
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        self.dist[a * self.num_nodes + b]
    }

    /// Shortest distance from ancilla `a` to the open boundary.
    #[must_use]
    pub fn boundary_distance(&self, a: usize) -> u32 {
        self.boundary_dist[a]
    }

    /// Data qubits along one shortest path between ancillas `a` and `b`.
    /// Flipping exactly these qubits moves the defect from `a` to `b`.
    #[must_use]
    pub fn path(&self, a: usize, b: usize) -> Vec<usize> {
        let mut qubits = Vec::new();
        let mut node = b;
        while node != a {
            let (prev, q) = self.parent[a * self.num_nodes + node];
            assert_ne!(prev, u32::MAX, "detector graph is connected");
            qubits.push(q as usize);
            node = prev as usize;
        }
        qubits
    }

    /// Data qubits along one shortest path from ancilla `a` out to the
    /// boundary. Flipping exactly these qubits absorbs the defect at `a`
    /// into the boundary.
    #[must_use]
    pub fn path_to_boundary(&self, a: usize) -> Vec<usize> {
        let mut qubits = Vec::new();
        let mut node = a;
        loop {
            let (next, q) = self.boundary_parent[node];
            qubits.push(q);
            match next {
                NodeRef::Boundary => return qubits,
                NodeRef::Ancilla(b) => node = b,
            }
        }
    }
}

fn bfs_from(
    src: usize,
    adjacency: &[Vec<(NodeRef, usize)>],
    num_nodes: usize,
) -> (Vec<u32>, Vec<Option<(usize, usize)>>) {
    let mut dist = vec![u32::MAX; num_nodes];
    let mut parent = vec![None; num_nodes];
    let mut queue = std::collections::VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for &(n, q) in &adjacency[u] {
            if let NodeRef::Ancilla(v) = n {
                if dist[v] == u32::MAX {
                    dist[v] = dist[u] + 1;
                    parent[v] = Some((u, q));
                    queue.push_back(v);
                }
            }
        }
    }
    (dist, parent)
}

fn bfs_from_boundary(
    adjacency: &[Vec<(NodeRef, usize)>],
    num_nodes: usize,
) -> (Vec<u32>, Vec<(NodeRef, usize)>) {
    let mut dist = vec![u32::MAX; num_nodes];
    let mut parent: Vec<(NodeRef, usize)> = vec![(NodeRef::Boundary, usize::MAX); num_nodes];
    let mut queue = std::collections::VecDeque::new();
    // Seed: every node with a boundary edge is at distance 1, leaving via
    // its private qubit.
    for (a, adj) in adjacency.iter().enumerate() {
        for &(n, q) in adj {
            if n == NodeRef::Boundary && dist[a] == u32::MAX {
                dist[a] = 1;
                parent[a] = (NodeRef::Boundary, q);
                queue.push_back(a);
            }
        }
    }
    while let Some(u) = queue.pop_front() {
        for &(n, q) in &adjacency[u] {
            if let NodeRef::Ancilla(v) = n {
                if dist[v] == u32::MAX {
                    dist[v] = dist[u] + 1;
                    parent[v] = (NodeRef::Ancilla(u), q);
                    queue.push_back(v);
                }
            }
        }
    }
    (dist, parent)
}

#[cfg(test)]
mod tests {
    use crate::{StabilizerType, SurfaceCode};

    #[test]
    fn interior_ancillas_have_up_to_four_neighbors() {
        let code = SurfaceCode::new(7);
        let g = code.detector_graph(StabilizerType::X);
        for a in 0..g.num_nodes() {
            let n = g.ancilla_neighbors(a).len();
            assert!((1..=4).contains(&n), "ancilla {a} has {n} neighbors");
        }
    }

    #[test]
    fn edge_count_equals_covered_data_qubits() {
        for d in [3u16, 5, 7] {
            let code = SurfaceCode::new(d);
            for ty in StabilizerType::both() {
                let g = code.detector_graph(ty);
                // Every data qubit is covered by 1 or 2 ancillas of each
                // type, so there is exactly one edge per data qubit.
                assert_eq!(g.edges().len(), code.num_data_qubits(), "d={d} ty={ty}");
            }
        }
    }

    #[test]
    fn graph_is_connected() {
        let code = SurfaceCode::new(9);
        for ty in StabilizerType::both() {
            let g = code.detector_graph(ty);
            for a in 0..g.num_nodes() {
                for b in 0..g.num_nodes() {
                    assert_ne!(g.distance(a, b), u32::MAX);
                }
            }
        }
    }

    #[test]
    fn distances_are_symmetric_and_triangle() {
        let code = SurfaceCode::new(7);
        let g = code.detector_graph(StabilizerType::X);
        let n = g.num_nodes();
        for a in 0..n {
            assert_eq!(g.distance(a, a), 0);
            for b in 0..n {
                assert_eq!(g.distance(a, b), g.distance(b, a));
                for c in 0..n {
                    assert!(g.distance(a, c) <= g.distance(a, b) + g.distance(b, c));
                }
            }
        }
    }

    #[test]
    fn path_length_matches_distance_and_moves_defect() {
        let code = SurfaceCode::new(7);
        let ty = StabilizerType::X;
        let g = code.detector_graph(ty);
        let n = g.num_nodes();
        for a in 0..n {
            for b in 0..n {
                let path = g.path(a, b);
                assert_eq!(path.len() as u32, g.distance(a, b));
                // Flipping the path qubits produces syndrome {a, b} (or
                // empty when a == b).
                let mut errors = vec![false; code.num_data_qubits()];
                for &q in &path {
                    errors[q] ^= true;
                }
                let syndrome = code.syndrome_of(ty, &errors);
                for (i, &s) in syndrome.iter().enumerate() {
                    let expect = (i == a) ^ (i == b);
                    assert_eq!(s, expect, "a={a} b={b} ancilla {i}");
                }
            }
        }
    }

    #[test]
    fn boundary_path_absorbs_defect() {
        let code = SurfaceCode::new(7);
        let ty = StabilizerType::X;
        let g = code.detector_graph(ty);
        for a in 0..g.num_nodes() {
            let path = g.path_to_boundary(a);
            assert_eq!(path.len() as u32, g.boundary_distance(a));
            let mut errors = vec![false; code.num_data_qubits()];
            for &q in &path {
                errors[q] ^= true;
            }
            let syndrome = code.syndrome_of(ty, &errors);
            for (i, &s) in syndrome.iter().enumerate() {
                assert_eq!(s, i == a, "a={a} ancilla {i}");
            }
        }
    }

    #[test]
    fn boundary_distance_at_most_half_distance_plus_one() {
        // On a distance-d code every ancilla can reach the boundary within
        // ceil(d/2) steps.
        let d = 9u16;
        let code = SurfaceCode::new(d);
        for ty in StabilizerType::both() {
            let g = code.detector_graph(ty);
            for a in 0..g.num_nodes() {
                assert!(g.boundary_distance(a) <= u32::from(d / 2 + 1));
                assert!(g.boundary_distance(a) >= 1);
            }
        }
    }

    #[test]
    fn private_qubits_exist_only_near_boundary() {
        let code = SurfaceCode::new(5);
        let g = code.detector_graph(StabilizerType::X);
        let mut total_private = 0;
        for a in 0..g.num_nodes() {
            total_private += g.private_qubits(a).len();
        }
        // Top and bottom data rows are private to X ancillas: 2*d qubits.
        assert_eq!(total_private, 10);
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let code = SurfaceCode::new(7);
        let g = code.detector_graph(StabilizerType::Z);
        for a in 0..g.num_nodes() {
            for (b, q) in g.ancilla_neighbors(a) {
                assert!(
                    g.ancilla_neighbors(b).contains(&(a, q)),
                    "neighbor relation must be symmetric"
                );
            }
        }
    }

    #[test]
    fn csr_neighbors_match_ancilla_neighbors() {
        let code = SurfaceCode::new(7);
        for ty in StabilizerType::both() {
            let g = code.detector_graph(ty);
            for a in 0..g.num_nodes() {
                let mut from_pairs: Vec<u32> =
                    g.ancilla_neighbors(a).iter().map(|&(b, _)| b as u32).collect();
                let mut from_csr = g.neighbors(a).to_vec();
                from_pairs.sort_unstable();
                from_csr.sort_unstable();
                assert_eq!(from_csr, from_pairs, "ancilla {a}");
            }
        }
    }

    #[test]
    fn max_boundary_distance_is_the_max() {
        for d in [3u16, 5, 9] {
            let code = SurfaceCode::new(d);
            let g = code.detector_graph(StabilizerType::X);
            let max = (0..g.num_nodes()).map(|a| g.boundary_distance(a)).max().unwrap();
            assert_eq!(g.max_boundary_distance(), max);
        }
    }

    #[test]
    fn shortest_logical_chain_has_length_d() {
        // The shortest boundary-to-boundary chain through the lattice has
        // length d: min over ancillas of (bdist via top + bdist via bottom)
        // is d. We verify a weaker form: a straight column has length d and
        // zero syndrome (tested in code.rs), and no ancilla pair plus
        // boundary exits beats d... here we just sanity-check distances
        // scale with d.
        for d in [3u16, 5, 7] {
            let code = SurfaceCode::new(d);
            let g = code.detector_graph(StabilizerType::X);
            let max_b = (0..g.num_nodes()).map(|a| g.boundary_distance(a)).max().unwrap();
            assert!(max_b >= u32::from(d / 2));
        }
    }
}
