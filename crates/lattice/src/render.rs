//! ASCII rendering of the lattice for docs, examples and debugging.

use std::fmt;

use crate::code::SurfaceCode;
use crate::coords::{Plaquette, StabilizerType};

/// A lazily rendered ASCII picture of a [`SurfaceCode`], optionally with
/// an error/syndrome overlay.
///
/// Produced by [`SurfaceCode::render`]. The grid shows data qubits as
/// `D` (or `E` when erring) and ancillas as `x`/`z` (uppercase when their
/// syndrome bit is set).
#[derive(Debug, Clone)]
pub struct Render<'a> {
    code: &'a SurfaceCode,
    errors: Option<&'a [bool]>,
    x_syndrome: Option<&'a [bool]>,
    z_syndrome: Option<&'a [bool]>,
}

impl SurfaceCode {
    /// Renders the bare lattice.
    #[must_use]
    pub fn render(&self) -> Render<'_> {
        Render { code: self, errors: None, x_syndrome: None, z_syndrome: None }
    }

    /// Renders the lattice with a data-error overlay and the X-type
    /// syndrome it produces.
    ///
    /// # Panics
    ///
    /// Panics (in the `Display` impl) if the overlay lengths do not match
    /// the code.
    #[must_use]
    pub fn render_with<'a>(&'a self, errors: &'a [bool], x_syndrome: &'a [bool]) -> Render<'a> {
        Render { code: self, errors: Some(errors), x_syndrome: Some(x_syndrome), z_syndrome: None }
    }

    /// Renders the lattice with error overlay and both syndrome types
    /// (lit ancillas shown uppercase).
    ///
    /// # Panics
    ///
    /// Panics (in the `Display` impl) if the overlay lengths do not match
    /// the code.
    #[must_use]
    pub fn render_full<'a>(
        &'a self,
        errors: &'a [bool],
        x_syndrome: &'a [bool],
        z_syndrome: &'a [bool],
    ) -> Render<'a> {
        Render {
            code: self,
            errors: Some(errors),
            x_syndrome: Some(x_syndrome),
            z_syndrome: Some(z_syndrome),
        }
    }
}

impl fmt::Display for Render<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.code.distance();
        if let Some(e) = self.errors {
            assert_eq!(e.len(), self.code.num_data_qubits());
        }
        // Interleave plaquette rows (r) and data rows.
        for r in 0..=d {
            // Plaquette row r.
            let mut line = String::new();
            for c in 0..=d {
                let p = Plaquette::new(r, c);
                let ch = self.plaquette_char(p);
                line.push(ch);
                line.push(' ');
            }
            writeln!(f, "{}", line.trim_end())?;
            if r < d {
                let mut line = String::from(" ");
                for col in 0..d {
                    let q = usize::from(r) * usize::from(d) + usize::from(col);
                    let erring = self.errors.map(|e| e[q]).unwrap_or(false);
                    line.push(if erring { 'E' } else { 'D' });
                    line.push(' ');
                }
                writeln!(f, "{}", line.trim_end())?;
            }
        }
        Ok(())
    }
}

impl Render<'_> {
    fn plaquette_char(&self, p: Plaquette) -> char {
        let code = self.code;
        let find = |ty: StabilizerType| code.ancillas(ty).iter().position(|a| a.plaquette() == p);
        if let Some(i) = find(StabilizerType::X) {
            let lit = self.x_syndrome.map(|s| s[i]).unwrap_or(false);
            return if lit { 'X' } else { 'x' };
        }
        if let Some(i) = find(StabilizerType::Z) {
            let lit = self.z_syndrome.map(|s| s[i]).unwrap_or(false);
            return if lit { 'Z' } else { 'z' };
        }
        '.'
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_nonempty_and_has_expected_rows() {
        let code = SurfaceCode::new(3);
        let text = code.render().to_string();
        // d+1 plaquette rows + d data rows.
        assert_eq!(text.lines().count(), 7);
        assert!(text.contains('D'));
        assert!(text.contains('x'));
        assert!(text.contains('z'));
    }

    #[test]
    fn overlay_marks_errors_and_lit_syndromes() {
        let code = SurfaceCode::new(3);
        let mut errors = vec![false; 9];
        errors[4] = true; // center qubit
        let syndrome = code.syndrome_of(StabilizerType::X, &errors);
        let text = code.render_with(&errors, &syndrome).to_string();
        assert!(text.contains('E'));
        assert!(text.contains('X'), "lit ancilla should be uppercase");
    }

    #[test]
    fn full_overlay_marks_both_types() {
        let code = SurfaceCode::new(3);
        let mut errors = vec![false; 9];
        errors[4] = true;
        let sx = code.syndrome_of(StabilizerType::X, &errors);
        let sz = code.syndrome_of(StabilizerType::Z, &errors);
        // A single error of one species lights X ancillas for Z errors;
        // for the Z-syndrome overlay we reuse the same pattern as a
        // rendering smoke test.
        let text = code.render_full(&errors, &sx, &sz).to_string();
        assert!(text.contains('E'));
        assert!(text.contains('X') || text.contains('Z'));
    }

    #[test]
    fn corners_are_empty() {
        let code = SurfaceCode::new(3);
        let text = code.render().to_string();
        assert!(text.starts_with('.'), "corner plaquettes hold no stabilizer");
    }
}
