//! The rotated surface code: stabilizer layout and incidence structure.

use crate::coords::{DataQubit, Plaquette, StabilizerType};
use crate::graph::DetectorGraph;
use crate::logical::LogicalOperator;

/// One stabilizer ancilla: its plaquette position and the data qubits it
/// checks (by linear index, see [`DataQubit::index`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ancilla {
    plaquette: Plaquette,
    data: Vec<usize>,
}

impl Ancilla {
    /// Plaquette position of this ancilla.
    #[must_use]
    pub fn plaquette(&self) -> Plaquette {
        self.plaquette
    }

    /// Linear indices of the data qubits this ancilla checks (2 on the
    /// boundary, 4 in the interior).
    #[must_use]
    pub fn data_qubits(&self) -> &[usize] {
        &self.data
    }

    /// Stabilizer weight (number of data qubits checked).
    #[must_use]
    pub fn weight(&self) -> usize {
        self.data.len()
    }
}

/// A distance-`d` rotated surface code.
///
/// Construction follows the paper's Fig. 3 / standard rotated layout:
///
/// * data qubits on the `d × d` grid;
/// * candidate stabilizers at plaquette corners, colored `X` iff `r + c`
///   is even;
/// * all interior plaquettes kept;
/// * on the top and bottom boundary rows only `Z`-type weight-2
///   plaquettes are kept, on the left and right columns only `X`-type —
///   so `Z`-error chains terminate on the top/bottom boundaries and
///   `X`-error chains on the left/right ones;
/// * corner plaquettes dropped.
///
/// This yields `(d²-1)/2` stabilizers per type.
#[derive(Debug, Clone)]
pub struct SurfaceCode {
    distance: u16,
    x_ancillas: Vec<Ancilla>,
    z_ancillas: Vec<Ancilla>,
    x_graph: DetectorGraph,
    z_graph: DetectorGraph,
    logical_z: LogicalOperator,
    logical_x: LogicalOperator,
}

impl SurfaceCode {
    /// Builds the distance-`d` rotated surface code.
    ///
    /// # Panics
    ///
    /// Panics if `d` is even or `d < 3` — the rotated layout is defined
    /// for odd distances of at least 3.
    #[must_use]
    pub fn new(distance: u16) -> Self {
        assert!(
            distance >= 3 && distance % 2 == 1,
            "rotated surface code requires odd distance >= 3, got {distance}"
        );
        let mut x_ancillas = Vec::new();
        let mut z_ancillas = Vec::new();
        for r in 0..=distance {
            for c in 0..=distance {
                let p = Plaquette::new(r, c);
                if !Self::plaquette_kept(p, distance) {
                    continue;
                }
                let data =
                    p.data_neighbors(distance).into_iter().map(|q| q.index(distance)).collect();
                let ancilla = Ancilla { plaquette: p, data };
                match p.stabilizer_type() {
                    StabilizerType::X => x_ancillas.push(ancilla),
                    StabilizerType::Z => z_ancillas.push(ancilla),
                }
            }
        }
        let num_data = usize::from(distance) * usize::from(distance);
        let x_graph = DetectorGraph::build(&x_ancillas, num_data);
        let z_graph = DetectorGraph::build(&z_ancillas, num_data);
        let logical_z = LogicalOperator::column(distance, (distance - 1) / 2);
        let logical_x = LogicalOperator::row(distance, (distance - 1) / 2);
        Self { distance, x_ancillas, z_ancillas, x_graph, z_graph, logical_z, logical_x }
    }

    /// Whether plaquette `p` hosts a stabilizer on a distance-`d` code.
    fn plaquette_kept(p: Plaquette, d: u16) -> bool {
        let on_top_bottom = p.r == 0 || p.r == d;
        let on_left_right = p.c == 0 || p.c == d;
        if on_top_bottom && on_left_right {
            return false; // corner
        }
        if on_top_bottom {
            return p.stabilizer_type() == StabilizerType::Z;
        }
        if on_left_right {
            return p.stabilizer_type() == StabilizerType::X;
        }
        true // interior
    }

    /// Code distance `d`.
    #[must_use]
    pub fn distance(&self) -> u16 {
        self.distance
    }

    /// Total number of data qubits, `d²`.
    #[must_use]
    pub fn num_data_qubits(&self) -> usize {
        usize::from(self.distance) * usize::from(self.distance)
    }

    /// Number of stabilizer ancillas of type `ty`, `(d²-1)/2`.
    #[must_use]
    pub fn num_ancillas(&self, ty: StabilizerType) -> usize {
        self.ancillas(ty).len()
    }

    /// The stabilizer ancillas of type `ty`, indexed by their position in
    /// this slice everywhere else in the workspace (syndrome bit `i`
    /// belongs to `ancillas(ty)[i]`).
    #[must_use]
    pub fn ancillas(&self, ty: StabilizerType) -> &[Ancilla] {
        match ty {
            StabilizerType::X => &self.x_ancillas,
            StabilizerType::Z => &self.z_ancillas,
        }
    }

    /// The detector graph for stabilizer type `ty` (see crate docs).
    #[must_use]
    pub fn detector_graph(&self, ty: StabilizerType) -> &DetectorGraph {
        match ty {
            StabilizerType::X => &self.x_graph,
            StabilizerType::Z => &self.z_graph,
        }
    }

    /// A minimum-weight representative of the logical operator whose
    /// errors are *detected* by stabilizers of type `ty`.
    ///
    /// For `ty == X` this is the logical `Z` (a vertical column of data
    /// qubits terminating on the top/bottom boundaries); for `ty == Z`
    /// the logical `X` (a horizontal row).
    #[must_use]
    pub fn logical_detected_by(&self, ty: StabilizerType) -> &LogicalOperator {
        match ty {
            StabilizerType::X => &self.logical_z,
            StabilizerType::Z => &self.logical_x,
        }
    }

    /// Computes the syndrome of an error pattern: bit `i` is the parity of
    /// errors on the data qubits checked by `ancillas(ty)[i]`.
    ///
    /// `errors[q]` is `true` iff data qubit `q` (linear index) carries an
    /// error of the species detected by `ty` (e.g. a `Z` error when
    /// `ty == X`).
    ///
    /// # Panics
    ///
    /// Panics if `errors.len() != num_data_qubits()`.
    #[must_use]
    pub fn syndrome_of(&self, ty: StabilizerType, errors: &[bool]) -> Vec<bool> {
        assert_eq!(
            errors.len(),
            self.num_data_qubits(),
            "error vector length must equal the number of data qubits"
        );
        self.ancillas(ty)
            .iter()
            .map(|a| a.data.iter().filter(|&&q| errors[q]).count() % 2 == 1)
            .collect()
    }

    /// Whether a *syndrome-free* residual error pattern is a logical
    /// operator (as opposed to a product of stabilizers).
    ///
    /// The check is the standard anti-commutation test: the residual is
    /// logical iff its overlap with the crossing logical representative
    /// has odd parity. Only meaningful when `syndrome_of(ty, errors)` is
    /// all-zero; callers decode first, then ask this.
    #[must_use]
    pub fn is_logical_error(&self, ty: StabilizerType, errors: &[bool]) -> bool {
        let crossing = self.logical_detected_by(ty).crossing_check(self.distance);
        crossing.support().iter().filter(|&&q| errors[q]).count() % 2 == 1
    }

    /// Iterates over all data qubit coordinates in reading order.
    pub fn data_qubits(&self) -> impl Iterator<Item = DataQubit> + '_ {
        let d = self.distance;
        (0..d).flat_map(move |row| (0..d).map(move |col| DataQubit::new(row, col)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ancilla_counts_match_theory() {
        for d in [3u16, 5, 7, 9, 11, 13] {
            let code = SurfaceCode::new(d);
            let expected = (usize::from(d) * usize::from(d) - 1) / 2;
            assert_eq!(code.num_ancillas(StabilizerType::X), expected, "d={d}");
            assert_eq!(code.num_ancillas(StabilizerType::Z), expected, "d={d}");
            assert_eq!(code.num_data_qubits(), usize::from(d) * usize::from(d));
        }
    }

    #[test]
    #[should_panic(expected = "odd distance")]
    fn even_distance_rejected() {
        let _ = SurfaceCode::new(4);
    }

    #[test]
    #[should_panic(expected = "odd distance")]
    fn distance_one_rejected() {
        let _ = SurfaceCode::new(1);
    }

    #[test]
    fn stabilizer_weights_are_two_or_four() {
        let code = SurfaceCode::new(7);
        for ty in StabilizerType::both() {
            for a in code.ancillas(ty) {
                assert!(a.weight() == 2 || a.weight() == 4, "{}", a.plaquette());
            }
        }
    }

    #[test]
    fn every_data_qubit_checked_once_or_twice_per_type() {
        for d in [3u16, 5, 9] {
            let code = SurfaceCode::new(d);
            for ty in StabilizerType::both() {
                let mut cover = vec![0usize; code.num_data_qubits()];
                for a in code.ancillas(ty) {
                    for &q in a.data_qubits() {
                        cover[q] += 1;
                    }
                }
                for (q, &c) in cover.iter().enumerate() {
                    assert!(c == 1 || c == 2, "d={d} ty={ty} qubit {q} covered {c} times");
                }
            }
        }
    }

    #[test]
    fn boundary_rows_hold_z_type_weight_two() {
        let code = SurfaceCode::new(5);
        for a in code.ancillas(StabilizerType::Z) {
            let p = a.plaquette();
            if p.r == 0 || p.r == 5 {
                assert_eq!(a.weight(), 2);
            }
            assert!(p.c != 0 && p.c != 5, "no Z stabilizers on left/right");
        }
        for a in code.ancillas(StabilizerType::X) {
            let p = a.plaquette();
            assert!(p.r != 0 && p.r != 5, "no X stabilizers on top/bottom");
        }
    }

    #[test]
    fn single_error_sets_adjacent_syndromes_only() {
        let code = SurfaceCode::new(5);
        let q = DataQubit::new(2, 2).index(5);
        let mut errors = vec![false; code.num_data_qubits()];
        errors[q] = true;
        let syndrome = code.syndrome_of(StabilizerType::X, &errors);
        let set: Vec<usize> =
            syndrome.iter().enumerate().filter_map(|(i, &s)| s.then_some(i)).collect();
        assert_eq!(set.len(), 2, "interior error flips exactly two X ancillas");
        for &i in &set {
            assert!(code.ancillas(StabilizerType::X)[i].data_qubits().contains(&q));
        }
    }

    #[test]
    fn stabilizer_pattern_has_zero_syndrome_and_is_not_logical() {
        let code = SurfaceCode::new(5);
        // Apply a Z stabilizer as an "error": zero syndrome on X ancillas,
        // and not a logical operator.
        let stab = &code.ancillas(StabilizerType::Z)[3];
        let mut errors = vec![false; code.num_data_qubits()];
        for &q in stab.data_qubits() {
            errors[q] = true;
        }
        assert!(code.syndrome_of(StabilizerType::X, &errors).iter().all(|&s| !s));
        assert!(!code.is_logical_error(StabilizerType::X, &errors));
    }

    #[test]
    fn full_column_is_a_logical_z() {
        let code = SurfaceCode::new(5);
        let mut errors = vec![false; code.num_data_qubits()];
        for row in 0..5u16 {
            errors[DataQubit::new(row, 1).index(5)] = true;
        }
        assert!(
            code.syndrome_of(StabilizerType::X, &errors).iter().all(|&s| !s),
            "a full column commutes with all X stabilizers"
        );
        assert!(code.is_logical_error(StabilizerType::X, &errors));
    }

    #[test]
    fn full_row_is_a_logical_x() {
        let code = SurfaceCode::new(5);
        let mut errors = vec![false; code.num_data_qubits()];
        for col in 0..5u16 {
            errors[DataQubit::new(2, col).index(5)] = true;
        }
        assert!(code.syndrome_of(StabilizerType::Z, &errors).iter().all(|&s| !s));
        assert!(code.is_logical_error(StabilizerType::Z, &errors));
    }

    #[test]
    fn every_column_is_logical_every_stabilizer_is_not() {
        let code = SurfaceCode::new(7);
        for col in 0..7u16 {
            let mut errors = vec![false; code.num_data_qubits()];
            for row in 0..7u16 {
                errors[DataQubit::new(row, col).index(7)] = true;
            }
            assert!(code.is_logical_error(StabilizerType::X, &errors), "col {col}");
        }
        for stab in code.ancillas(StabilizerType::Z) {
            let mut errors = vec![false; code.num_data_qubits()];
            for &q in stab.data_qubits() {
                errors[q] = true;
            }
            assert!(!code.is_logical_error(StabilizerType::X, &errors));
        }
    }

    #[test]
    fn data_qubit_iterator_covers_grid() {
        let code = SurfaceCode::new(3);
        let qubits: Vec<DataQubit> = code.data_qubits().collect();
        assert_eq!(qubits.len(), 9);
        assert_eq!(qubits[0], DataQubit::new(0, 0));
        assert_eq!(qubits[8], DataQubit::new(2, 2));
    }
}
