//! Rotated surface-code lattice geometry for BTWC decoding.
//!
//! This crate is the geometric substrate shared by every decoder in the
//! workspace. It models the *rotated* surface code of odd distance `d`
//! (paper Fig. 3): `d²` data qubits and `(d²-1)/2` stabilizers of each
//! Pauli type, with weight-2 stabilizers on the boundary and the corner
//! plaquettes dropped.
//!
//! The central export is [`SurfaceCode`], which owns, per stabilizer type,
//! a [`DetectorGraph`]: nodes are ancillas, and there is exactly one edge
//! per data qubit — ancilla↔ancilla when two same-type ancillas check the
//! qubit, ancilla↔boundary when only one does. Both the Clique decoder's
//! neighborhoods *and* the MWPM decoder's distance metric derive from this
//! one graph, which keeps the two decoders geometrically consistent by
//! construction.
//!
//! # Example
//!
//! ```
//! use btwc_lattice::{SurfaceCode, StabilizerType};
//!
//! let code = SurfaceCode::new(5);
//! assert_eq!(code.num_data_qubits(), 25);
//! assert_eq!(code.num_ancillas(StabilizerType::X), 12);
//! // Every interior ancilla has four same-type (diagonal) neighbors:
//! let graph = code.detector_graph(StabilizerType::X);
//! assert!(graph.ancilla_neighbors(0).len() <= 4);
//! ```

mod code;
mod coords;
mod graph;
mod logical;
mod render;

pub use code::{Ancilla, SurfaceCode};
pub use coords::{DataQubit, Plaquette, StabilizerType};
pub use graph::{DetectorGraph, GraphEdge, NodeRef};
pub use logical::LogicalOperator;
