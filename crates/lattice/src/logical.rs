//! Logical operator representatives and the logical-failure check.

use crate::coords::DataQubit;

/// A representative of a logical operator: a set of data qubits (by
/// linear index) forming a boundary-to-boundary chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalOperator {
    support: Vec<usize>,
    orientation: Orientation,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Orientation {
    /// A vertical chain (fixed column) — the logical `Z` in this
    /// workspace's convention.
    Column,
    /// A horizontal chain (fixed row) — the logical `X`.
    Row,
}

impl LogicalOperator {
    /// The vertical chain on column `col` of a distance-`d` code.
    #[must_use]
    pub(crate) fn column(d: u16, col: u16) -> Self {
        let support = (0..d).map(|row| DataQubit::new(row, col).index(d)).collect();
        Self { support, orientation: Orientation::Column }
    }

    /// The horizontal chain on row `row` of a distance-`d` code.
    #[must_use]
    pub(crate) fn row(d: u16, row: u16) -> Self {
        let support = (0..d).map(|col| DataQubit::new(row, col).index(d)).collect();
        Self { support, orientation: Orientation::Row }
    }

    /// Data qubits (linear indices) in this representative.
    #[must_use]
    pub fn support(&self) -> &[usize] {
        &self.support
    }

    /// Weight of the representative (always `d`).
    #[must_use]
    pub fn weight(&self) -> usize {
        self.support.len()
    }

    /// The *crossing* logical representative used for the
    /// anti-commutation failure check: a residual error equal to this
    /// operator overlaps the crossing chain in exactly one qubit, while
    /// stabilizers overlap it evenly.
    #[must_use]
    pub(crate) fn crossing_check(&self, d: u16) -> LogicalOperator {
        match self.orientation {
            Orientation::Column => LogicalOperator::row(d, (d - 1) / 2),
            Orientation::Row => LogicalOperator::column(d, (d - 1) / 2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_and_row_have_weight_d() {
        for d in [3u16, 5, 7] {
            assert_eq!(LogicalOperator::column(d, 0).weight(), usize::from(d));
            assert_eq!(LogicalOperator::row(d, d - 1).weight(), usize::from(d));
        }
    }

    #[test]
    fn crossing_check_intersects_once() {
        let d = 5;
        let col = LogicalOperator::column(d, 2);
        let cross = col.crossing_check(d);
        let overlap = col.support().iter().filter(|q| cross.support().contains(q)).count();
        assert_eq!(overlap, 1);
    }

    #[test]
    fn supports_are_distinct_indices() {
        let op = LogicalOperator::column(7, 3);
        let mut sorted = op.support().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), op.weight());
    }
}
