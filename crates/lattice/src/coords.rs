//! Coordinate types for the rotated surface code.

use std::fmt;

/// Pauli type of a stabilizer (parity-check) ancilla.
///
/// `X` stabilizers detect `Z` errors on data qubits and vice versa. The
/// paper simulates one error species at a time ("X-type and Z-type errors
/// are corrected independently, so focusing on either one is sufficient",
/// Sec. 6.1); most of the workspace therefore runs on
/// [`StabilizerType::X`] detecting phase flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StabilizerType {
    /// X-type parity check (detects Z data errors).
    X,
    /// Z-type parity check (detects X data errors).
    Z,
}

impl StabilizerType {
    /// The opposite stabilizer type.
    #[must_use]
    pub fn other(self) -> Self {
        match self {
            StabilizerType::X => StabilizerType::Z,
            StabilizerType::Z => StabilizerType::X,
        }
    }

    /// Both stabilizer types, X first.
    #[must_use]
    pub fn both() -> [Self; 2] {
        [StabilizerType::X, StabilizerType::Z]
    }
}

impl fmt::Display for StabilizerType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StabilizerType::X => write!(f, "X"),
            StabilizerType::Z => write!(f, "Z"),
        }
    }
}

/// Location of a data qubit on the `d × d` grid, `row, col ∈ [0, d)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataQubit {
    /// Row on the data grid, `0 ≤ row < d`.
    pub row: u16,
    /// Column on the data grid, `0 ≤ col < d`.
    pub col: u16,
}

impl DataQubit {
    /// Creates a data-qubit coordinate.
    #[must_use]
    pub fn new(row: u16, col: u16) -> Self {
        Self { row, col }
    }

    /// Linear index of this qubit on a distance-`d` code (`row * d + col`).
    #[must_use]
    pub fn index(self, d: u16) -> usize {
        usize::from(self.row) * usize::from(d) + usize::from(self.col)
    }

    /// Inverse of [`DataQubit::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= d * d`.
    #[must_use]
    pub fn from_index(index: usize, d: u16) -> Self {
        let dd = usize::from(d);
        assert!(index < dd * dd, "data qubit index {index} out of range for d={d}");
        Self { row: (index / dd) as u16, col: (index % dd) as u16 }
    }
}

impl fmt::Display for DataQubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D({},{})", self.row, self.col)
    }
}

/// Location of a plaquette (candidate stabilizer) at the grid corners,
/// `r, c ∈ [0, d]`.
///
/// Plaquette `(r, c)` touches the up-to-four data qubits
/// `(r-1, c-1)`, `(r-1, c)`, `(r, c-1)`, `(r, c)` that fall inside the
/// data grid. Corner plaquettes (one data neighbor) are never stabilizers
/// in the rotated code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Plaquette {
    /// Plaquette row, `0 ≤ r ≤ d`.
    pub r: u16,
    /// Plaquette column, `0 ≤ c ≤ d`.
    pub c: u16,
}

impl Plaquette {
    /// Creates a plaquette coordinate.
    #[must_use]
    pub fn new(r: u16, c: u16) -> Self {
        Self { r, c }
    }

    /// Stabilizer type hosted at this plaquette under the checkerboard
    /// coloring used throughout this workspace: `X` iff `r + c` is even.
    #[must_use]
    pub fn stabilizer_type(self) -> StabilizerType {
        if (self.r + self.c).is_multiple_of(2) {
            StabilizerType::X
        } else {
            StabilizerType::Z
        }
    }

    /// The data qubits this plaquette touches on a distance-`d` code, in
    /// reading order. Between one (corner) and four (interior) entries.
    #[must_use]
    pub fn data_neighbors(self, d: u16) -> Vec<DataQubit> {
        let mut out = Vec::with_capacity(4);
        let candidates = [
            (self.r.checked_sub(1), self.c.checked_sub(1)),
            (self.r.checked_sub(1), Some(self.c)),
            (Some(self.r), self.c.checked_sub(1)),
            (Some(self.r), Some(self.c)),
        ];
        for (row, col) in candidates {
            if let (Some(row), Some(col)) = (row, col) {
                if row < d && col < d {
                    out.push(DataQubit::new(row, col));
                }
            }
        }
        out
    }

    /// The four diagonal plaquette positions, which are the only
    /// candidates for *same-type* neighbors (the checkerboard coloring is
    /// preserved under diagonal moves). Off-grid positions are filtered.
    #[must_use]
    pub fn diagonal_neighbors(self, d: u16) -> Vec<Plaquette> {
        let mut out = Vec::with_capacity(4);
        let deltas: [(i32, i32); 4] = [(-1, -1), (-1, 1), (1, -1), (1, 1)];
        for (dr, dc) in deltas {
            let r = i32::from(self.r) + dr;
            let c = i32::from(self.c) + dc;
            if r >= 0 && c >= 0 && r <= i32::from(d) && c <= i32::from(d) {
                out.push(Plaquette::new(r as u16, c as u16));
            }
        }
        out
    }
}

impl fmt::Display for Plaquette {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({},{})", self.stabilizer_type(), self.r, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stabilizer_type_other_roundtrips() {
        assert_eq!(StabilizerType::X.other(), StabilizerType::Z);
        assert_eq!(StabilizerType::Z.other(), StabilizerType::X);
        assert_eq!(StabilizerType::X.other().other(), StabilizerType::X);
    }

    #[test]
    fn data_qubit_index_roundtrips() {
        let d = 7;
        for row in 0..d {
            for col in 0..d {
                let q = DataQubit::new(row, col);
                assert_eq!(DataQubit::from_index(q.index(d), d), q);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn data_qubit_from_index_panics_out_of_range() {
        let _ = DataQubit::from_index(9, 3);
    }

    #[test]
    fn checkerboard_coloring_alternates() {
        assert_eq!(Plaquette::new(0, 0).stabilizer_type(), StabilizerType::X);
        assert_eq!(Plaquette::new(0, 1).stabilizer_type(), StabilizerType::Z);
        assert_eq!(Plaquette::new(1, 0).stabilizer_type(), StabilizerType::Z);
        assert_eq!(Plaquette::new(1, 1).stabilizer_type(), StabilizerType::X);
    }

    #[test]
    fn corner_plaquette_has_one_data_neighbor() {
        assert_eq!(Plaquette::new(0, 0).data_neighbors(3).len(), 1);
        assert_eq!(Plaquette::new(3, 3).data_neighbors(3).len(), 1);
    }

    #[test]
    fn interior_plaquette_has_four_data_neighbors() {
        let n = Plaquette::new(1, 1).data_neighbors(3);
        assert_eq!(n.len(), 4);
        assert!(n.contains(&DataQubit::new(0, 0)));
        assert!(n.contains(&DataQubit::new(1, 1)));
    }

    #[test]
    fn edge_plaquette_has_two_data_neighbors() {
        let n = Plaquette::new(0, 1).data_neighbors(3);
        assert_eq!(n.len(), 2);
        assert!(n.contains(&DataQubit::new(0, 0)));
        assert!(n.contains(&DataQubit::new(0, 1)));
    }

    #[test]
    fn diagonal_neighbors_preserve_type() {
        let p = Plaquette::new(2, 2);
        for q in p.diagonal_neighbors(5) {
            assert_eq!(q.stabilizer_type(), p.stabilizer_type());
        }
    }

    #[test]
    fn diagonal_neighbors_clip_at_grid_edge() {
        assert_eq!(Plaquette::new(0, 0).diagonal_neighbors(3).len(), 1);
        assert_eq!(Plaquette::new(0, 2).diagonal_neighbors(3).len(), 2);
        assert_eq!(Plaquette::new(2, 2).diagonal_neighbors(3).len(), 4);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(DataQubit::new(1, 2).to_string(), "D(1,2)");
        assert_eq!(Plaquette::new(1, 1).to_string(), "X(1,1)");
        assert_eq!(StabilizerType::Z.to_string(), "Z");
    }
}
