//! Property-based tests of the lattice invariants.

use btwc_lattice::{StabilizerType, SurfaceCode};
use proptest::prelude::*;

fn code_and_errors() -> impl Strategy<Value = (u16, Vec<usize>)> {
    prop_oneof![Just(3u16), Just(5), Just(7), Just(9)].prop_flat_map(|d| {
        let n = usize::from(d) * usize::from(d);
        (Just(d), proptest::collection::vec(0..n, 0..12))
    })
}

proptest! {
    /// The syndrome map is linear: s(a ⊕ b) = s(a) ⊕ s(b).
    #[test]
    fn syndrome_is_linear((d, flips) in code_and_errors()) {
        let code = SurfaceCode::new(d);
        let n = code.num_data_qubits();
        let split = flips.len() / 2;
        let mut a = vec![false; n];
        let mut b = vec![false; n];
        for &q in &flips[..split] { a[q] ^= true; }
        for &q in &flips[split..] { b[q] ^= true; }
        let mut ab = vec![false; n];
        for q in 0..n { ab[q] = a[q] ^ b[q]; }
        for ty in StabilizerType::both() {
            let sa = code.syndrome_of(ty, &a);
            let sb = code.syndrome_of(ty, &b);
            let sab = code.syndrome_of(ty, &ab);
            for i in 0..sa.len() {
                prop_assert_eq!(sab[i], sa[i] ^ sb[i]);
            }
        }
    }

    /// Multiplying by any stabilizer never changes the logical class.
    #[test]
    fn stabilizers_preserve_logical_class((d, flips) in code_and_errors(), stab_idx in 0usize..100) {
        let code = SurfaceCode::new(d);
        let ty = StabilizerType::X;
        let n = code.num_data_qubits();
        let mut errors = vec![false; n];
        for &q in &flips { errors[q] ^= true; }
        // Only meaningful for syndrome-free patterns; make one by
        // clearing via a decode-free trick: square the pattern (XOR with
        // itself is trivial), so instead just test on stabilizer sums.
        let stabs = code.ancillas(ty.other());
        let stab = &stabs[stab_idx % stabs.len()];
        let before = code.is_logical_error(ty, &errors);
        let mut after = errors.clone();
        for &q in stab.data_qubits() { after[q] ^= true; }
        // Z-type stabilizers commute with the crossing X-chain check:
        prop_assert_eq!(code.is_logical_error(ty, &after), before);
    }

    /// Shortest paths between ancillas have matching syndrome endpoints
    /// and respect the triangle inequality through any waypoint.
    #[test]
    fn paths_are_geodesics(d in prop_oneof![Just(3u16), Just(5), Just(7)], seed in 0usize..1000) {
        let code = SurfaceCode::new(d);
        let g = code.detector_graph(StabilizerType::X);
        let n = g.num_nodes();
        let a = seed % n;
        let b = (seed / n) % n;
        let w = (seed / (n * n).max(1)) % n;
        prop_assert!(g.distance(a, b) <= g.distance(a, w) + g.distance(w, b));
        let path = g.path(a, b);
        prop_assert_eq!(path.len() as u32, g.distance(a, b));
    }

    /// Boundary distances are 1-Lipschitz along edges.
    #[test]
    fn boundary_distance_is_lipschitz(d in prop_oneof![Just(3u16), Just(5), Just(7)]) {
        let code = SurfaceCode::new(d);
        for ty in StabilizerType::both() {
            let g = code.detector_graph(ty);
            for a in 0..g.num_nodes() {
                for (b, _) in g.ancilla_neighbors(a) {
                    let (da, db) = (g.boundary_distance(a), g.boundary_distance(b));
                    prop_assert!(da.abs_diff(db) <= 1);
                }
            }
        }
    }
}
