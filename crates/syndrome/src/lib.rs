//! Syndrome extraction, multi-round history, and signature taxonomy.
//!
//! Sits between the lattice ([`btwc_lattice`]) and the decoders: it turns
//! error configurations into per-cycle syndrome bit vectors, maintains
//! the sliding window of measurement rounds that both the Clique
//! decoder's sticky filter (paper Fig. 7) and the MWPM decoder's
//! space-time matching consume, and classifies signatures into the
//! paper's Fig. 4 taxonomy (All-0s / Local-1s / Complex).
//!
//! Syndromes are stored word-packed ([`PackedBits`]): XOR/AND/OR, zero
//! tests, and weight counts are word-parallel, and the sticky filter /
//! detection-event diffs are word ops — the representation the Monte
//! Carlo engines push billions of cycles through.
//!
//! # Example
//!
//! ```
//! use btwc_lattice::{StabilizerType, SurfaceCode};
//! use btwc_syndrome::{RoundHistory, Syndrome};
//!
//! let code = SurfaceCode::new(3);
//! let mut errors = vec![false; code.num_data_qubits()];
//! errors[4] = true; // a single error on the central data qubit
//! let bits = code.syndrome_of(StabilizerType::X, &errors);
//! let syndrome = Syndrome::from_bits(bits);
//! assert_eq!(syndrome.weight(), 2);
//!
//! let mut history = RoundHistory::new(syndrome.len(), 4);
//! history.push_packed(syndrome.as_packed());
//! history.push_packed(syndrome.as_packed());
//! // The two-round sticky filter accepts errors that persist:
//! assert_eq!(history.sticky(2).weight(), 2);
//! ```

mod batch;
mod classify;
mod complex;
mod correction;
mod history;
mod packed;
mod repr;

pub use batch::{BatchHistory, SyndromeBatch};
pub use classify::{classify_true, SignatureClass};
pub use complex::ComplexDecoder;
pub use correction::Correction;
pub use history::{DetectionEvent, RoundHistory};
pub use packed::{PackedBits, SetBits};
pub use repr::Syndrome;
