//! The off-chip decoder interface.
//!
//! Lives here — next to [`RoundHistory`] and [`Correction`], the types
//! it consumes and produces — so that every heavyweight decoder crate
//! (`btwc-mwpm`, `btwc-sparse`, `btwc-uf`, `btwc-lut`, or anything
//! external) can implement it without depending on the assembled
//! pipeline in `btwc-core`, and `btwc-core` in turn can depend on all
//! of them to offer a unified backend registry.

use crate::correction::Correction;
use crate::history::RoundHistory;

/// An off-chip decoder that resolves a window of measurement rounds.
///
/// Implemented by `btwc_mwpm::MwpmDecoder` (the dense default),
/// `btwc_sparse::SparseDecoder` (the sparse-blossom backend),
/// `btwc_uf::UnionFindDecoder`, and `btwc_lut::LutDecoder`; custom
/// implementations let experiments swap in other heavyweight decoders
/// (neural, belief propagation, …) behind the same BTWC front end.
pub trait ComplexDecoder {
    /// Decodes the detection events of `window` into a data correction.
    fn decode_window(&self, window: &RoundHistory) -> Correction;

    /// [`ComplexDecoder::decode_window`] with exclusive access. The
    /// pipeline owns its decoder mutably, so implementations with
    /// internal locking (both built-in matchers guard a reusable
    /// scratch) override this to skip the lock; the default just
    /// forwards to the shared path.
    fn decode_window_mut(&mut self, window: &RoundHistory) -> Correction {
        self.decode_window(window)
    }

    /// Decodes `window` as the latest position of a **sliding stream**:
    /// implementations that keep incremental state (regions, collision
    /// edges, cluster matchings) override this to reuse everything the
    /// previous call already computed when `window` is a forward slide
    /// of the window they decoded last (same [`RoundHistory::stream_id`],
    /// coverage moved forward with overlap). On any other input —
    /// including a fresh or reset window — the result is identical to
    /// [`ComplexDecoder::decode_window_mut`]; the default simply
    /// forwards there, so stateless decoders participate unchanged.
    fn decode_stream_mut(&mut self, window: &RoundHistory) -> Correction {
        self.decode_window_mut(window)
    }

    /// Decodes `k` independent windows in one backend call, returning
    /// corrections in submission order.
    ///
    /// This is the decode farm's batching seam: simultaneous
    /// escalations for the same backend/distance are grouped into one
    /// call so an implementation can amortize per-call setup (or, for
    /// hardware backends, a single DMA round trip). The contract is
    /// **bit-identical to `k` individual
    /// [`ComplexDecoder::decode_window_mut`] calls in the same order**
    /// — flips, weights, and decoder statistics must not depend on the
    /// grouping (pinned by the `btwc-farm` batching proptest, including
    /// the `k = 1` fast path). The default simply loops, so every
    /// existing decoder participates unchanged.
    fn decode_batch_mut(&mut self, windows: &[&RoundHistory]) -> Vec<Correction> {
        windows.iter().map(|w| self.decode_window_mut(w)).collect()
    }

    /// Attach a metrics registry: from here on the decoder records its
    /// internals (stream fast-path hits, warm-start outcomes, cluster
    /// sizes, …) into `registry`. The default is a no-op so stateless or
    /// uninstrumented decoders participate unchanged; implementations
    /// register their metrics under a stable `<backend>.` name prefix.
    fn attach_telemetry(&mut self, registry: &btwc_telemetry::MetricsRegistry) {
        let _ = registry;
    }
}
