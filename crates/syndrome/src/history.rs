//! Sliding window of measurement rounds.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::packed::PackedBits;
use crate::repr::Syndrome;

/// Process-wide source of [`RoundHistory`] stream identities.
static NEXT_STREAM_ID: AtomicU64 = AtomicU64::new(1);

/// A detection event: ancilla `ancilla` changed value at round `round`
/// of the current window (round indices are window-relative, oldest = 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DetectionEvent {
    /// Ancilla index within its stabilizer type.
    pub ancilla: usize,
    /// Window-relative round index.
    pub round: usize,
}

/// Ring buffer of the most recent syndrome measurement rounds, stored
/// word-packed.
///
/// Two consumers read this window:
///
/// * the Clique decoder's **sticky filter** ([`RoundHistory::sticky`]),
///   which accepts an ancilla only when its raw syndrome has been lit for
///   `k` consecutive rounds (paper Fig. 7, default `k = 2`) — this is
///   what suppresses single-round measurement flips. Packed, the filter
///   is a word-parallel AND over the last `k` rounds;
/// * the MWPM decoder's **space-time matching**, which consumes
///   [`RoundHistory::detection_events`] — the round-to-round differences
///   that mark where error chains start and end in time. Packed, the
///   diff is a word-parallel XOR plus a trailing-zeros scan.
///
/// Evicted round buffers are recycled, so a long-running window performs
/// no per-round heap allocation in steady state.
///
/// The window tracks its position in the stream it was fed from: every
/// retained round has an **absolute** stream index
/// (`start_round() + window-relative index`), advanced whenever rounds
/// leave through the front — eviction on push, [`RoundHistory::slide`],
/// or [`RoundHistory::reset`] (which jumps past everything it drops).
/// Incremental consumers ([`crate::ComplexDecoder::decode_stream_mut`])
/// use `(stream_id, start_round, len)` to recognise a forward slide of
/// the same stream and reuse work from the previous call.
#[derive(Debug)]
pub struct RoundHistory {
    num_ancillas: usize,
    capacity: usize,
    rounds: VecDeque<PackedBits>,
    /// Recycled buffers from evicted/reset rounds.
    spare: Vec<PackedBits>,
    /// Absolute stream index of `rounds[0]`.
    start_round: u64,
    /// Process-unique identity of this window's stream (fresh per
    /// construction and per clone, so two windows never alias).
    stream_id: u64,
    /// Detection events contributed by each retained round under the
    /// current window basis: entry 0 is the front round's weight (the
    /// all-zero-baseline diff), entry `t > 0` the XOR weight against
    /// round `t - 1`.
    event_counts: VecDeque<u32>,
    /// Running sum of `event_counts` — O(1) `detection_event_count`.
    event_total: usize,
}

impl Clone for RoundHistory {
    fn clone(&self) -> Self {
        Self {
            num_ancillas: self.num_ancillas,
            capacity: self.capacity,
            rounds: self.rounds.clone(),
            spare: Vec::new(),
            start_round: self.start_round,
            // A clone is a new stream: it can diverge from the original
            // (different pushes at the same coverage), so incremental
            // decoders must never mistake one for the other.
            // det: fetch_add commutes — ids only need to be distinct,
            // never ordered; no decoded result depends on their values.
            stream_id: NEXT_STREAM_ID.fetch_add(1, Ordering::Relaxed),
            event_counts: self.event_counts.clone(),
            event_total: self.event_total,
        }
    }
}

impl RoundHistory {
    /// A window over `num_ancillas` ancillas retaining the most recent
    /// `capacity` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(num_ancillas: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "round history needs capacity >= 1");
        Self {
            num_ancillas,
            capacity,
            rounds: VecDeque::with_capacity(capacity + 1),
            spare: Vec::with_capacity(capacity + 1),
            start_round: 0,
            // det: fetch_add commutes — ids only need to be distinct,
            // never ordered; no decoded result depends on their values.
            stream_id: NEXT_STREAM_ID.fetch_add(1, Ordering::Relaxed),
            event_counts: VecDeque::with_capacity(capacity + 1),
            event_total: 0,
        }
    }

    /// Absolute stream index of the oldest retained round (the index the
    /// next pushed round would get when the window is empty). Advances
    /// by one per eviction, by `k` per [`RoundHistory::slide`], and past
    /// every dropped round on [`RoundHistory::reset`].
    #[must_use]
    pub fn start_round(&self) -> u64 {
        self.start_round
    }

    /// Process-unique identity of this window (fresh per construction
    /// and per clone). Together with [`RoundHistory::start_round`] and
    /// [`RoundHistory::len`] it lets an incremental decoder prove that a
    /// window is a forward slide of the one it decoded last: within one
    /// stream id, retained content only ever changes by appending at the
    /// back and dropping at the front.
    #[must_use]
    pub fn stream_id(&self) -> u64 {
        self.stream_id
    }

    /// Number of ancillas per round.
    #[must_use]
    pub fn num_ancillas(&self) -> usize {
        self.num_ancillas
    }

    /// Maximum number of retained rounds.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of rounds currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether no rounds have been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Takes a recycled (or fresh) buffer of the right width.
    fn take_buffer(&mut self) -> PackedBits {
        self.spare.pop().unwrap_or_else(|| PackedBits::new(self.num_ancillas))
    }

    /// Appends a filled buffer, evicting (and recycling) the oldest
    /// round if full — eviction *slides* the window: the surviving
    /// rounds keep their absolute stream indices and the front round's
    /// detection events re-base against the all-zero baseline.
    fn push_buffer(&mut self, buf: PackedBits) {
        let count = match self.rounds.back() {
            Some(prev) => buf.xor_weight(prev),
            None => buf.weight(),
        };
        self.rounds.push_back(buf);
        self.event_counts.push_back(count as u32);
        self.event_total += count;
        if self.rounds.len() > self.capacity {
            self.drop_front_rounds(1);
        }
    }

    /// Drops the `k` oldest rounds (recycling their buffers), advances
    /// `start_round`, and re-bases the new front round's event count
    /// against the all-zero baseline. `k <= len()`.
    fn drop_front_rounds(&mut self, k: usize) {
        for _ in 0..k {
            let evicted = self.rounds.pop_front().expect("dropped rounds must exist");
            self.spare.push(evicted);
            let dropped = self.event_counts.pop_front().expect("counts track rounds");
            self.event_total -= dropped as usize;
        }
        self.start_round += k as u64;
        if let Some(front) = self.rounds.front() {
            // The new front round now diffs against the all-zero
            // baseline instead of its (dropped) predecessor.
            let rebased = front.weight();
            let old = self.event_counts[0] as usize;
            self.event_counts[0] = rebased as u32;
            self.event_total = self.event_total - old + rebased;
        }
    }

    /// Slides the window forward by `k` rounds: the `k` oldest rounds
    /// are dropped (buffers recycled), the survivors keep their absolute
    /// stream indices, and the surviving detection events re-base — the
    /// new front round's events become its lit bits (the diff against
    /// the all-zero baseline), exactly as if the surviving rounds had
    /// been pushed into a fresh window.
    ///
    /// # Panics
    ///
    /// Panics if `k > len()`.
    pub fn slide(&mut self, k: usize) {
        assert!(k <= self.rounds.len(), "cannot slide {k} of {} rounds", self.rounds.len());
        self.drop_front_rounds(k);
    }

    /// Appends a measurement round given as a bool slice.
    ///
    /// # Panics
    ///
    /// Panics if `round.len() != num_ancillas()`.
    pub fn push(&mut self, round: &[bool]) {
        assert_eq!(round.len(), self.num_ancillas, "round width mismatch");
        let mut buf = self.take_buffer();
        buf.fill_from_bools(round);
        self.push_buffer(buf);
    }

    /// Appends an already-packed measurement round (the hot path —
    /// a word copy into a recycled buffer, no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `round.len() != num_ancillas()`.
    pub fn push_packed(&mut self, round: &PackedBits) {
        assert_eq!(round.len(), self.num_ancillas, "round width mismatch");
        let mut buf = self.take_buffer();
        buf.copy_from(round);
        self.push_buffer(buf);
    }

    /// Appends qubit `qubit`'s round gathered straight out of a
    /// machine-wide [`SyndromeBatch`](crate::SyndromeBatch) — the batch
    /// entry point: the transpose read lands directly in a recycled
    /// buffer, with no intermediate per-qubit round materialized.
    ///
    /// # Panics
    ///
    /// Panics if `batch.num_ancillas() != num_ancillas()` or `qubit`
    /// is out of range.
    pub fn push_from_batch(&mut self, batch: &crate::SyndromeBatch, qubit: usize) {
        assert_eq!(batch.num_ancillas(), self.num_ancillas, "round width mismatch");
        let mut buf = self.take_buffer();
        batch.qubit_round_into(qubit, &mut buf);
        self.push_buffer(buf);
    }

    /// The `i`-th retained round (0 = oldest).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn round(&self, i: usize) -> &PackedBits {
        &self.rounds[i]
    }

    /// The most recent round, if any.
    #[must_use]
    pub fn latest(&self) -> Option<&PackedBits> {
        self.rounds.back()
    }

    /// The `k`-round sticky syndrome: ancilla `i` is accepted iff its raw
    /// syndrome was lit in each of the last `k` rounds — a word-parallel
    /// AND across those rounds.
    ///
    /// Returns all-zeros while fewer than `k` rounds have been recorded —
    /// the hardware equivalent is the DFF pipeline still filling up.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > capacity()`.
    #[must_use]
    pub fn sticky(&self, k: usize) -> Syndrome {
        let mut out = Syndrome::new(self.num_ancillas);
        self.sticky_into(k, &mut out);
        out
    }

    /// [`RoundHistory::sticky`] into a caller-owned buffer (the
    /// allocation-free hot path).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k > capacity()`, or `out` has the wrong width.
    pub fn sticky_into(&self, k: usize, out: &mut Syndrome) {
        assert!(k >= 1 && k <= self.capacity, "sticky window {k} out of range");
        assert_eq!(out.len(), self.num_ancillas, "sticky output width mismatch");
        if self.rounds.len() < k {
            out.clear();
            return;
        }
        let start = self.rounds.len() - k;
        let packed = out.as_packed_mut();
        packed.copy_from(&self.rounds[start]);
        for r in (start + 1)..self.rounds.len() {
            packed.and_with(&self.rounds[r]);
        }
    }

    /// Detection events over the retained window: an event at round `t`
    /// wherever the raw value differs from round `t-1` (round 0 is
    /// compared against an all-zero baseline, i.e. the state right after
    /// the window was last [`RoundHistory::reset`]).
    #[must_use]
    pub fn detection_events(&self) -> Vec<DetectionEvent> {
        let mut events = Vec::new();
        self.detection_events_into(&mut events);
        events
    }

    /// [`RoundHistory::detection_events`] into a caller-owned buffer
    /// (cleared first). The diff of consecutive rounds is a word XOR;
    /// events are then enumerated with a trailing-zeros scan, so quiet
    /// windows cost one word-scan per round and nothing more.
    pub fn detection_events_into(&self, events: &mut Vec<DetectionEvent>) {
        events.clear();
        for t in 0..self.rounds.len() {
            let now = self.rounds[t].words();
            if t == 0 {
                for ancilla in self.rounds[0].iter_set() {
                    events.push(DetectionEvent { ancilla, round: 0 });
                }
                continue;
            }
            let before = self.rounds[t - 1].words();
            for (w, (&a, &b)) in now.iter().zip(before).enumerate() {
                let mut diff = a ^ b;
                while diff != 0 {
                    let bit = diff.trailing_zeros() as usize;
                    diff &= diff - 1;
                    events.push(DetectionEvent { ancilla: w * 64 + bit, round: t });
                }
            }
        }
    }

    /// Number of detection events in the retained window, without
    /// materializing them — O(1): per-round event counters are
    /// maintained as rounds are pushed (one fused XOR+popcount per
    /// push) and re-based as rounds slide out the front. Decoders use
    /// this to skip the event enumeration (and any scratch locking) on
    /// windows with nothing to match.
    #[must_use]
    pub fn detection_event_count(&self) -> usize {
        self.event_total
    }

    /// Detection events contributed by retained round `i` under the
    /// current window basis: the round's lit-bit weight for `i == 0`
    /// (the all-zero-baseline diff), the XOR weight against round
    /// `i - 1` otherwise. Incremental decoders use this to recognise
    /// quiet slides — appended rounds that add no events — without
    /// touching any per-bit state.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn round_event_count(&self, i: usize) -> usize {
        self.event_counts[i] as usize
    }

    /// Forgets all retained rounds (used after a decoder resolves the
    /// window and resets the reference frame). Buffers are recycled.
    /// `start_round` jumps past every dropped round, so incremental
    /// consumers see the coverage gap and rebuild instead of reusing
    /// state across the reset.
    pub fn reset(&mut self) {
        self.start_round += self.rounds.len() as u64;
        self.spare.extend(self.rounds.drain(..));
        self.event_counts.clear();
        self.event_total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(bits: &[u8]) -> Vec<bool> {
        bits.iter().map(|&b| b != 0).collect()
    }

    #[test]
    fn sticky_needs_k_rounds() {
        let mut h = RoundHistory::new(3, 4);
        h.push(&round(&[1, 1, 1]));
        assert!(h.sticky(2).is_zero(), "one round cannot satisfy k=2");
        h.push(&round(&[1, 0, 1]));
        let s = h.sticky(2);
        assert!(s.get(0) && !s.get(1) && s.get(2));
    }

    #[test]
    fn sticky_suppresses_single_round_flip() {
        // A measurement error lights an ancilla for exactly one round.
        let mut h = RoundHistory::new(1, 4);
        h.push(&round(&[0]));
        h.push(&round(&[1])); // transient flip
        assert!(h.sticky(2).is_zero());
        h.push(&round(&[0]));
        assert!(h.sticky(2).is_zero());
    }

    #[test]
    fn sticky_accepts_persistent_data_error() {
        let mut h = RoundHistory::new(1, 4);
        h.push(&round(&[0]));
        h.push(&round(&[1])); // data error appears...
        h.push(&round(&[1])); // ...and sticks
        assert!(h.sticky(2).get(0));
    }

    #[test]
    fn sticky_three_rounds_is_stricter() {
        let mut h = RoundHistory::new(1, 4);
        h.push(&round(&[1]));
        h.push(&round(&[1]));
        assert!(h.sticky(2).get(0));
        assert!(h.sticky(3).is_zero(), "needs three consecutive rounds");
        h.push(&round(&[1]));
        assert!(h.sticky(3).get(0));
    }

    #[test]
    fn sticky_into_reuses_buffer() {
        let mut h = RoundHistory::new(5, 4);
        h.push(&round(&[1, 0, 1, 1, 0]));
        h.push(&round(&[1, 1, 0, 1, 0]));
        let mut out = Syndrome::new(5);
        h.sticky_into(2, &mut out);
        assert_eq!(out, h.sticky(2));
        // A stale buffer must be fully overwritten.
        let mut stale: Syndrome = [true; 5].into_iter().collect();
        h.sticky_into(2, &mut stale);
        assert_eq!(stale, h.sticky(2));
    }

    #[test]
    fn eviction_keeps_window_bounded() {
        let mut h = RoundHistory::new(1, 2);
        h.push(&round(&[1]));
        h.push(&round(&[0]));
        h.push(&round(&[0]));
        assert_eq!(h.len(), 2);
        // The old lit round fell out of the window.
        assert!(h.round(0).is_zero());
    }

    #[test]
    fn push_packed_matches_push() {
        let mut a = RoundHistory::new(9, 4);
        let mut b = RoundHistory::new(9, 4);
        let bits = round(&[1, 0, 0, 1, 1, 0, 1, 0, 1]);
        let packed = PackedBits::from_bools(&bits);
        a.push(&bits);
        b.push_packed(&packed);
        assert_eq!(a.round(0), b.round(0));
        assert_eq!(a.detection_events(), b.detection_events());
    }

    #[test]
    fn detection_events_mark_changes() {
        let mut h = RoundHistory::new(2, 8);
        h.push(&round(&[0, 1])); // event: ancilla 1 @ round 0
        h.push(&round(&[1, 1])); // event: ancilla 0 @ round 1
        h.push(&round(&[1, 0])); // event: ancilla 1 @ round 2
        let ev = h.detection_events();
        assert_eq!(
            ev,
            vec![
                DetectionEvent { ancilla: 1, round: 0 },
                DetectionEvent { ancilla: 0, round: 1 },
                DetectionEvent { ancilla: 1, round: 2 },
            ]
        );
    }

    #[test]
    fn measurement_error_makes_time_like_event_pair() {
        let mut h = RoundHistory::new(1, 8);
        h.push(&round(&[0]));
        h.push(&round(&[1]));
        h.push(&round(&[0]));
        let ev = h.detection_events();
        assert_eq!(ev.len(), 2, "transient flip yields an event pair in time");
        assert_eq!(ev[0].ancilla, ev[1].ancilla);
        assert_eq!(ev[1].round - ev[0].round, 1);
    }

    #[test]
    fn detection_event_count_matches_enumeration() {
        let mut h = RoundHistory::new(130, 8);
        assert_eq!(h.detection_event_count(), 0);
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        for _ in 0..6 {
            let bits: Vec<bool> = (0..130).map(|_| next() % 7 == 0).collect();
            h.push(&bits);
            assert_eq!(h.detection_event_count(), h.detection_events().len());
        }
    }

    #[test]
    fn reset_clears_window_and_recycles() {
        let mut h = RoundHistory::new(2, 4);
        h.push(&round(&[1, 1]));
        h.reset();
        assert!(h.is_empty());
        assert!(h.latest().is_none());
        assert!(h.detection_events().is_empty());
        // Recycled buffers must come back zeroed-or-overwritten: a fresh
        // push after reset must show exactly the new bits.
        h.push(&round(&[0, 1]));
        assert!(!h.round(0).get(0));
        assert!(h.round(0).get(1));
    }

    #[test]
    fn slide_rebases_events_like_a_fresh_window() {
        let mut h = RoundHistory::new(3, 8);
        h.push(&round(&[1, 0, 0]));
        h.push(&round(&[1, 1, 0]));
        h.push(&round(&[0, 1, 1]));
        h.push(&round(&[0, 1, 1]));
        h.slide(2);
        let mut fresh = RoundHistory::new(3, 8);
        fresh.push(&round(&[0, 1, 1]));
        fresh.push(&round(&[0, 1, 1]));
        assert_eq!(h.detection_events(), fresh.detection_events());
        assert_eq!(h.detection_event_count(), fresh.detection_event_count());
        assert_eq!(h.len(), 2);
        assert_eq!(h.start_round(), 2);
    }

    #[test]
    fn start_round_tracks_evictions_slides_and_resets() {
        let mut h = RoundHistory::new(1, 2);
        assert_eq!(h.start_round(), 0);
        h.push(&round(&[1]));
        h.push(&round(&[0]));
        h.push(&round(&[1])); // evicts one
        assert_eq!(h.start_round(), 1);
        h.slide(1);
        assert_eq!(h.start_round(), 2);
        h.reset();
        assert_eq!(h.start_round(), 3, "reset jumps past the retained round");
        assert_eq!(h.detection_event_count(), 0);
    }

    #[test]
    fn eviction_matches_explicit_slide() {
        // Pushing past capacity must behave exactly like slide(1).
        let mut evicting = RoundHistory::new(2, 3);
        let mut sliding = RoundHistory::new(2, 8);
        let rounds = [[1u8, 0], [1, 1], [0, 1], [1, 1], [0, 0], [1, 0]];
        for (i, r) in rounds.iter().enumerate() {
            evicting.push(&round(r));
            sliding.push(&round(r));
            if i >= 3 {
                sliding.slide(1);
            }
        }
        assert_eq!(evicting.len(), sliding.len());
        assert_eq!(evicting.start_round(), sliding.start_round());
        assert_eq!(evicting.detection_events(), sliding.detection_events());
        assert_eq!(evicting.detection_event_count(), sliding.detection_event_count());
    }

    #[test]
    fn per_round_event_counts_match_enumeration() {
        let mut h = RoundHistory::new(70, 6);
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        for _ in 0..9 {
            let bits: Vec<bool> = (0..70).map(|_| next() % 5 == 0).collect();
            h.push(&bits);
            let events = h.detection_events();
            assert_eq!(h.detection_event_count(), events.len());
            for t in 0..h.len() {
                let expect = events.iter().filter(|e| e.round == t).count();
                assert_eq!(h.round_event_count(t), expect, "round {t}");
            }
        }
    }

    #[test]
    fn slide_to_empty_and_full_slide_are_clean() {
        let mut h = RoundHistory::new(2, 4);
        h.push(&round(&[1, 1]));
        h.push(&round(&[0, 1]));
        h.slide(2);
        assert!(h.is_empty());
        assert_eq!(h.detection_event_count(), 0);
        assert_eq!(h.start_round(), 2);
        h.push(&round(&[1, 0]));
        assert_eq!(h.detection_event_count(), 1);
    }

    #[test]
    fn clones_get_fresh_stream_ids() {
        let h = RoundHistory::new(2, 4);
        let c = h.clone();
        assert_ne!(h.stream_id(), c.stream_id());
        assert_ne!(h.stream_id(), RoundHistory::new(2, 4).stream_id());
        assert_eq!(h.start_round(), c.start_round());
    }

    #[test]
    #[should_panic(expected = "cannot slide")]
    fn slide_past_len_rejected() {
        let mut h = RoundHistory::new(2, 4);
        h.push(&round(&[1, 0]));
        h.slide(2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn push_rejects_wrong_width() {
        let mut h = RoundHistory::new(2, 4);
        h.push(&round(&[1]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sticky_rejects_zero_k() {
        let h = RoundHistory::new(2, 4);
        let _ = h.sticky(0);
    }
}
