//! Sliding window of measurement rounds.

use std::collections::VecDeque;

use crate::repr::Syndrome;

/// A detection event: ancilla `ancilla` changed value at round `round`
/// of the current window (round indices are window-relative, oldest = 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DetectionEvent {
    /// Ancilla index within its stabilizer type.
    pub ancilla: usize,
    /// Window-relative round index.
    pub round: usize,
}

/// Ring buffer of the most recent syndrome measurement rounds.
///
/// Two consumers read this window:
///
/// * the Clique decoder's **sticky filter** ([`RoundHistory::sticky`]),
///   which accepts an ancilla only when its raw syndrome has been lit for
///   `k` consecutive rounds (paper Fig. 7, default `k = 2`) — this is
///   what suppresses single-round measurement flips;
/// * the MWPM decoder's **space-time matching**, which consumes
///   [`RoundHistory::detection_events`] — the round-to-round differences
///   that mark where error chains start and end in time.
#[derive(Debug, Clone)]
pub struct RoundHistory {
    num_ancillas: usize,
    capacity: usize,
    rounds: VecDeque<Syndrome>,
}

impl RoundHistory {
    /// A window over `num_ancillas` ancillas retaining the most recent
    /// `capacity` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(num_ancillas: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "round history needs capacity >= 1");
        Self { num_ancillas, capacity, rounds: VecDeque::with_capacity(capacity + 1) }
    }

    /// Number of ancillas per round.
    #[must_use]
    pub fn num_ancillas(&self) -> usize {
        self.num_ancillas
    }

    /// Maximum number of retained rounds.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of rounds currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether no rounds have been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Appends a measurement round, evicting the oldest if full.
    ///
    /// # Panics
    ///
    /// Panics if `round.len() != num_ancillas()`.
    pub fn push(&mut self, round: &[bool]) {
        assert_eq!(round.len(), self.num_ancillas, "round width mismatch");
        self.rounds.push_back(Syndrome::from_bits(round.to_vec()));
        if self.rounds.len() > self.capacity {
            self.rounds.pop_front();
        }
    }

    /// The `i`-th retained round (0 = oldest).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn round(&self, i: usize) -> &Syndrome {
        &self.rounds[i]
    }

    /// The most recent round, if any.
    #[must_use]
    pub fn latest(&self) -> Option<&Syndrome> {
        self.rounds.back()
    }

    /// The `k`-round sticky syndrome: ancilla `i` is accepted iff its raw
    /// syndrome was lit in each of the last `k` rounds.
    ///
    /// Returns all-zeros while fewer than `k` rounds have been recorded —
    /// the hardware equivalent is the DFF pipeline still filling up.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > capacity()`.
    #[must_use]
    pub fn sticky(&self, k: usize) -> Syndrome {
        assert!(k >= 1 && k <= self.capacity, "sticky window {k} out of range");
        let mut out = Syndrome::new(self.num_ancillas);
        if self.rounds.len() < k {
            return out;
        }
        let start = self.rounds.len() - k;
        for i in 0..self.num_ancillas {
            let stuck = (start..self.rounds.len()).all(|r| self.rounds[r].get(i));
            out.set(i, stuck);
        }
        out
    }

    /// Detection events over the retained window: an event at round `t`
    /// wherever the raw value differs from round `t-1` (round 0 is
    /// compared against an all-zero baseline, i.e. the state right after
    /// the window was last [`RoundHistory::reset`]).
    #[must_use]
    pub fn detection_events(&self) -> Vec<DetectionEvent> {
        let mut events = Vec::new();
        for t in 0..self.rounds.len() {
            for i in 0..self.num_ancillas {
                let now = self.rounds[t].get(i);
                let before = if t == 0 { false } else { self.rounds[t - 1].get(i) };
                if now != before {
                    events.push(DetectionEvent { ancilla: i, round: t });
                }
            }
        }
        events
    }

    /// Forgets all retained rounds (used after a decoder resolves the
    /// window and resets the reference frame).
    pub fn reset(&mut self) {
        self.rounds.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(bits: &[u8]) -> Vec<bool> {
        bits.iter().map(|&b| b != 0).collect()
    }

    #[test]
    fn sticky_needs_k_rounds() {
        let mut h = RoundHistory::new(3, 4);
        h.push(&round(&[1, 1, 1]));
        assert!(h.sticky(2).is_zero(), "one round cannot satisfy k=2");
        h.push(&round(&[1, 0, 1]));
        let s = h.sticky(2);
        assert!(s.get(0) && !s.get(1) && s.get(2));
    }

    #[test]
    fn sticky_suppresses_single_round_flip() {
        // A measurement error lights an ancilla for exactly one round.
        let mut h = RoundHistory::new(1, 4);
        h.push(&round(&[0]));
        h.push(&round(&[1])); // transient flip
        assert!(h.sticky(2).is_zero());
        h.push(&round(&[0]));
        assert!(h.sticky(2).is_zero());
    }

    #[test]
    fn sticky_accepts_persistent_data_error() {
        let mut h = RoundHistory::new(1, 4);
        h.push(&round(&[0]));
        h.push(&round(&[1])); // data error appears...
        h.push(&round(&[1])); // ...and sticks
        assert!(h.sticky(2).get(0));
    }

    #[test]
    fn sticky_three_rounds_is_stricter() {
        let mut h = RoundHistory::new(1, 4);
        h.push(&round(&[1]));
        h.push(&round(&[1]));
        assert!(h.sticky(2).get(0));
        assert!(h.sticky(3).is_zero(), "needs three consecutive rounds");
        h.push(&round(&[1]));
        assert!(h.sticky(3).get(0));
    }

    #[test]
    fn eviction_keeps_window_bounded() {
        let mut h = RoundHistory::new(1, 2);
        h.push(&round(&[1]));
        h.push(&round(&[0]));
        h.push(&round(&[0]));
        assert_eq!(h.len(), 2);
        // The old lit round fell out of the window.
        assert!(h.round(0).is_zero());
    }

    #[test]
    fn detection_events_mark_changes() {
        let mut h = RoundHistory::new(2, 8);
        h.push(&round(&[0, 1])); // event: ancilla 1 @ round 0
        h.push(&round(&[1, 1])); // event: ancilla 0 @ round 1
        h.push(&round(&[1, 0])); // event: ancilla 1 @ round 2
        let ev = h.detection_events();
        assert_eq!(
            ev,
            vec![
                DetectionEvent { ancilla: 1, round: 0 },
                DetectionEvent { ancilla: 0, round: 1 },
                DetectionEvent { ancilla: 1, round: 2 },
            ]
        );
    }

    #[test]
    fn measurement_error_makes_time_like_event_pair() {
        let mut h = RoundHistory::new(1, 8);
        h.push(&round(&[0]));
        h.push(&round(&[1]));
        h.push(&round(&[0]));
        let ev = h.detection_events();
        assert_eq!(ev.len(), 2, "transient flip yields an event pair in time");
        assert_eq!(ev[0].ancilla, ev[1].ancilla);
        assert_eq!(ev[1].round - ev[0].round, 1);
    }

    #[test]
    fn reset_clears_window() {
        let mut h = RoundHistory::new(2, 4);
        h.push(&round(&[1, 1]));
        h.reset();
        assert!(h.is_empty());
        assert!(h.latest().is_none());
        assert!(h.detection_events().is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn push_rejects_wrong_width() {
        let mut h = RoundHistory::new(2, 4);
        h.push(&round(&[1]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sticky_rejects_zero_k() {
        let h = RoundHistory::new(2, 4);
        let _ = h.sticky(0);
    }
}
