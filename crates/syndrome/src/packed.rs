//! Word-packed bit vectors — the hot-path representation of syndromes.
//!
//! Every per-cycle structure in the decode pipeline (raw rounds, the
//! sticky filter, detection-event diffs) is a dense bit vector over a
//! few hundred ancillas at most. Storing them as `Vec<bool>` costs one
//! byte per bit and forces bit-at-a-time loops; packing them into `u64`
//! words makes XOR/AND/OR, zero tests, and weight counts word-parallel
//! (64 ancillas per instruction, with hardware `popcnt`/`tzcnt` doing
//! the counting), which is what lets the Monte Carlo engines push
//! billions of cycles through the filter.
//!
//! Invariant: bits at positions `>= len` inside the last word are always
//! zero, so whole-word operations need no per-call masking.

use std::fmt;

/// A fixed-length bit vector packed 64 bits per word.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PackedBits {
    len: usize,
    words: Vec<u64>,
}

#[inline]
const fn words_for(len: usize) -> usize {
    len.div_ceil(64)
}

impl PackedBits {
    /// An all-zero vector of `len` bits.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self { len, words: vec![0; words_for(len)] }
    }

    /// Packs a bool slice.
    #[must_use]
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut out = Self::new(bits.len());
        out.fill_from_bools(bits);
        out
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector covers zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words (tail bits beyond `len` are zero).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable word access for same-crate transpose kernels; callers
    /// must keep tail bits beyond `len` zero.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range for {} bits", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range for {} bits", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`, returning its new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn toggle(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range for {} bits", self.len);
        let mask = 1u64 << (i % 64);
        self.words[i / 64] ^= mask;
        self.words[i / 64] & mask != 0
    }

    /// Clears all bits (length unchanged).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Overwrites this vector from a bool slice of the same length,
    /// without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != len()`.
    pub fn fill_from_bools(&mut self, bits: &[bool]) {
        assert_eq!(bits.len(), self.len, "bit length mismatch");
        for (w, chunk) in self.words.iter_mut().zip(bits.chunks(64)) {
            let mut word = 0u64;
            for (j, &b) in chunk.iter().enumerate() {
                word |= u64::from(b) << j;
            }
            *w = word;
        }
    }

    /// Copies another vector of the same length into this one without
    /// reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, other: &PackedBits) {
        assert_eq!(self.len, other.len, "bit length mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Word-parallel XOR of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_with(&mut self, other: &PackedBits) {
        assert_eq!(self.len, other.len, "bit length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Word-parallel AND of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_with(&mut self, other: &PackedBits) {
        assert_eq!(self.len, other.len, "bit length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Word-parallel OR of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_with(&mut self, other: &PackedBits) {
        assert_eq!(self.len, other.len, "bit length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Weight of `self XOR other` in a single fused pass: per word one
    /// XOR feeding straight into a hardware popcount, with no temporary
    /// buffer and no second traversal. This is the detection-event
    /// count between two adjacent rounds, and the scalar form of the
    /// planned `std::simd` XOR+popcount fusion — the loop body is
    /// already one-load-per-operand, so wider lanes drop in without
    /// restructuring.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn xor_weight(&self, other: &PackedBits) -> usize {
        assert_eq!(self.len, other.len, "bit length mismatch");
        self.words.iter().zip(&other.words).map(|(&a, &b)| (a ^ b).count_ones() as usize).sum()
    }

    /// Whether every bit is zero (word scan, no per-bit work).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits (hardware popcount per word).
    #[must_use]
    pub fn weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of the set bits, ascending (trailing-zeros scan: cost is
    /// O(words + set bits), not O(len)).
    #[must_use]
    pub fn iter_set(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Unpacks to a bool vector (cold paths and tests only).
    #[must_use]
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

/// Iterator over set-bit indices; see [`PackedBits::iter_set`].
#[derive(Debug, Clone)]
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * 64 + bit)
    }
}

impl FromIterator<bool> for PackedBits {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        Self::from_bools(&bits)
    }
}

impl fmt::Display for PackedBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: the same ops on a `Vec<bool>`.
    fn reference_xor(a: &[bool], b: &[bool]) -> Vec<bool> {
        a.iter().zip(b).map(|(&x, &y)| x ^ y).collect()
    }

    #[test]
    fn new_is_zero_across_word_boundaries() {
        for len in [0usize, 1, 63, 64, 65, 127, 128, 129, 300] {
            let p = PackedBits::new(len);
            assert_eq!(p.len(), len);
            assert!(p.is_zero());
            assert_eq!(p.weight(), 0);
            assert_eq!(p.iter_set().count(), 0);
        }
    }

    #[test]
    fn set_get_toggle_roundtrip() {
        let mut p = PackedBits::new(130);
        for i in [0usize, 63, 64, 65, 128, 129] {
            assert!(!p.get(i));
            p.set(i, true);
            assert!(p.get(i));
        }
        assert_eq!(p.weight(), 6);
        assert!(!p.toggle(63));
        assert!(p.toggle(63));
        assert_eq!(p.weight(), 6);
        p.set(63, false);
        assert_eq!(p.weight(), 5);
    }

    #[test]
    fn word_ops_match_boolean_reference() {
        // Deterministic pseudo-random patterns across odd lengths.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [1usize, 5, 64, 65, 100, 129, 255] {
            let a_bits: Vec<bool> = (0..len).map(|_| next() & 1 == 1).collect();
            let b_bits: Vec<bool> = (0..len).map(|_| next() & 1 == 1).collect();
            let mut a = PackedBits::from_bools(&a_bits);
            let b = PackedBits::from_bools(&b_bits);
            assert_eq!(a.weight(), a_bits.iter().filter(|&&x| x).count());
            let set: Vec<usize> = a.iter_set().collect();
            let expect: Vec<usize> =
                a_bits.iter().enumerate().filter_map(|(i, &x)| x.then_some(i)).collect();
            assert_eq!(set, expect, "len {len}");
            assert_eq!(
                a.xor_weight(&b),
                reference_xor(&a_bits, &b_bits).iter().filter(|&&x| x).count(),
                "len {len}: fused xor_weight must equal xor-then-count"
            );
            a.xor_with(&b);
            assert_eq!(a.to_bools(), reference_xor(&a_bits, &b_bits), "len {len}");
            assert_eq!(a.xor_weight(&a), 0, "xor_weight with self is zero");
            a.xor_with(&b);
            assert_eq!(a.to_bools(), a_bits, "xor is an involution");
            let mut o = PackedBits::from_bools(&a_bits);
            o.or_with(&b);
            let mut n = PackedBits::from_bools(&a_bits);
            n.and_with(&b);
            for i in 0..len {
                assert_eq!(o.get(i), a_bits[i] | b_bits[i]);
                assert_eq!(n.get(i), a_bits[i] & b_bits[i]);
            }
        }
    }

    #[test]
    fn tail_bits_stay_clear() {
        let mut p = PackedBits::new(65);
        p.set(64, true);
        assert_eq!(p.words()[1], 1);
        let mut q = PackedBits::new(65);
        q.set(0, true);
        p.xor_with(&q);
        p.or_with(&q);
        p.and_with(&q);
        assert!(p.words().iter().all(|&w| w.leading_zeros() >= 63 || w == 1));
        assert_eq!(PackedBits::from_bools(&[true; 65]).weight(), 65);
    }

    #[test]
    fn copy_and_fill_reuse_without_realloc() {
        let mut dst = PackedBits::new(70);
        let src: PackedBits = (0..70).map(|i| i % 3 == 0).collect();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.clear();
        assert!(dst.is_zero());
        dst.fill_from_bools(&src.to_bools());
        assert_eq!(dst, src);
    }

    #[test]
    fn display_is_bitstring() {
        let p: PackedBits = [true, false, true].into_iter().collect();
        assert_eq!(p.to_string(), "101");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_rejects_length_mismatch() {
        let mut a = PackedBits::new(3);
        a.xor_with(&PackedBits::new(4));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_weight_rejects_length_mismatch() {
        let _ = PackedBits::new(3).xor_weight(&PackedBits::new(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_rejects_out_of_range() {
        let _ = PackedBits::new(64).get(64);
    }
}
