//! Ground-truth signature taxonomy (paper Fig. 4).

use btwc_lattice::{StabilizerType, SurfaceCode};

/// The paper's three-way classification of per-cycle error signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignatureClass {
    /// No ancilla lit — nothing to decode.
    AllZeros,
    /// Errors present, but every error is isolated (no chain of length
    /// ≥ 2 and no measurement involvement) — trivially decodable.
    LocalOnes,
    /// Chained or measurement-corrupted signatures — requires the full
    /// off-chip decoder.
    Complex,
}

impl SignatureClass {
    /// Short label used by the figure harness ("all0" / "local1" / "complex").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SignatureClass::AllZeros => "all0",
            SignatureClass::LocalOnes => "local1",
            SignatureClass::Complex => "complex",
        }
    }
}

/// Classifies a cycle from the *true* injected errors (which a real
/// decoder never sees — this is the simulator's oracle view, used to
/// validate the Clique decoder's decisions).
///
/// Rules, following Sec. 3 of the paper:
///
/// * visible syndrome all-zero → [`SignatureClass::AllZeros`];
/// * any measurement flip contributing to a lit ancilla → `Complex`
///   (measurement errors cannot be resolved from a single round);
/// * two erring data qubits adjacent in the detector graph (sharing an
///   ancilla) → a chain of length ≥ 2 → `Complex`;
/// * otherwise all data errors are isolated → [`SignatureClass::LocalOnes`].
///
/// # Panics
///
/// Panics if the buffer lengths do not match `code`.
#[must_use]
pub fn classify_true(
    code: &SurfaceCode,
    ty: StabilizerType,
    data_errors: &[bool],
    meas_flips: &[bool],
) -> SignatureClass {
    assert_eq!(data_errors.len(), code.num_data_qubits(), "data buffer mismatch");
    assert_eq!(meas_flips.len(), code.num_ancillas(ty), "measurement buffer mismatch");

    let mut syndrome = code.syndrome_of(ty, data_errors);
    for (s, &m) in syndrome.iter_mut().zip(meas_flips) {
        *s ^= m;
    }
    if syndrome.iter().all(|&s| !s) {
        return SignatureClass::AllZeros;
    }
    if meas_flips.iter().any(|&m| m) {
        return SignatureClass::Complex;
    }
    // Chain detection: two errors sharing any ancilla (of either type
    // relevant to this species, i.e. type `ty`) form a chain.
    for a in code.ancillas(ty) {
        let erring = a.data_qubits().iter().filter(|&&q| data_errors[q]).count();
        if erring >= 2 {
            return SignatureClass::Complex;
        }
    }
    SignatureClass::LocalOnes
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_lattice::DataQubit;

    fn empty(code: &SurfaceCode, ty: StabilizerType) -> (Vec<bool>, Vec<bool>) {
        (vec![false; code.num_data_qubits()], vec![false; code.num_ancillas(ty)])
    }

    #[test]
    fn no_errors_is_all_zeros() {
        let code = SurfaceCode::new(5);
        let (data, meas) = empty(&code, StabilizerType::X);
        assert_eq!(classify_true(&code, StabilizerType::X, &data, &meas), SignatureClass::AllZeros);
    }

    #[test]
    fn single_error_is_local_ones() {
        let code = SurfaceCode::new(5);
        let (mut data, meas) = empty(&code, StabilizerType::X);
        data[DataQubit::new(2, 2).index(5)] = true;
        assert_eq!(
            classify_true(&code, StabilizerType::X, &data, &meas),
            SignatureClass::LocalOnes
        );
    }

    #[test]
    fn two_isolated_errors_are_local_ones() {
        let code = SurfaceCode::new(7);
        let (mut data, meas) = empty(&code, StabilizerType::X);
        data[DataQubit::new(0, 0).index(7)] = true;
        data[DataQubit::new(5, 5).index(7)] = true;
        assert_eq!(
            classify_true(&code, StabilizerType::X, &data, &meas),
            SignatureClass::LocalOnes
        );
    }

    #[test]
    fn adjacent_errors_are_complex() {
        let code = SurfaceCode::new(5);
        let (mut data, meas) = empty(&code, StabilizerType::X);
        // Two vertically adjacent data qubits share an X ancilla.
        data[DataQubit::new(1, 2).index(5)] = true;
        data[DataQubit::new(2, 2).index(5)] = true;
        assert_eq!(classify_true(&code, StabilizerType::X, &data, &meas), SignatureClass::Complex);
    }

    #[test]
    fn measurement_flip_is_complex() {
        let code = SurfaceCode::new(5);
        let (data, mut meas) = empty(&code, StabilizerType::X);
        meas[0] = true;
        assert_eq!(classify_true(&code, StabilizerType::X, &data, &meas), SignatureClass::Complex);
    }

    #[test]
    fn stabilizer_loop_is_all_zeros() {
        // A full stabilizer's worth of errors is invisible.
        let code = SurfaceCode::new(5);
        let (mut data, meas) = empty(&code, StabilizerType::X);
        let stab = &code.ancillas(StabilizerType::Z)[2];
        for &q in stab.data_qubits() {
            data[q] = true;
        }
        assert_eq!(classify_true(&code, StabilizerType::X, &data, &meas), SignatureClass::AllZeros);
    }

    #[test]
    fn meas_flip_cancelling_data_error_is_handled() {
        // A measurement flip on an ancilla lit by a data error can hide
        // that ancilla; the partner ancilla stays lit, so still complex.
        let code = SurfaceCode::new(5);
        let q = DataQubit::new(2, 2).index(5);
        let (mut data, mut meas) = empty(&code, StabilizerType::X);
        data[q] = true;
        let syndrome = code.syndrome_of(StabilizerType::X, &data);
        let lit = syndrome.iter().position(|&s| s).unwrap();
        meas[lit] = true;
        assert_eq!(classify_true(&code, StabilizerType::X, &data, &meas), SignatureClass::Complex);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            SignatureClass::AllZeros.label(),
            SignatureClass::LocalOnes.label(),
            SignatureClass::Complex.label(),
        ];
        assert_eq!(labels, ["all0", "local1", "complex"]);
    }
}
