//! Machine-wide syndrome rounds, stored transposed ("structure of
//! planes") for word-parallel filtering across logical qubits.
//!
//! A [`SyndromeBatch`] holds one measurement round for *every* logical
//! qubit of a machine, as one [`PackedBits`] plane per ancilla index:
//! bit `q` of plane `a` is qubit `q`'s raw value for ancilla `a`. In
//! this layout the two-round sticky filter is a word-AND of *planes* —
//! 64 logical qubits per instruction — and "which qubits need any
//! decoding at all this cycle" is a word-OR over the planes, so the
//! mostly-quiet common case (>90% of cycles at practical rates) costs
//! `O(num_ancillas × num_qubits / 64)` word operations for the whole
//! machine instead of a per-qubit loop.
//!
//! [`BatchHistory`] is the machine-wide counterpart of
//! [`RoundHistory`](crate::RoundHistory): a recycled ring of the most
//! recent batches with a word-parallel `k`-round sticky filter.

use std::collections::VecDeque;

use crate::history::RoundHistory;
use crate::packed::PackedBits;

/// One syndrome measurement round for every logical qubit of a
/// machine, stored as one qubit-indexed [`PackedBits`] plane per
/// ancilla.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyndromeBatch {
    num_qubits: usize,
    num_ancillas: usize,
    /// `planes[a]` has `num_qubits` bits; bit `q` = qubit `q`'s raw
    /// syndrome for ancilla `a`.
    planes: Vec<PackedBits>,
}

impl SyndromeBatch {
    /// An all-zero batch for `num_qubits` logical qubits of
    /// `num_ancillas` ancillas each.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0` or `num_ancillas == 0`.
    #[must_use]
    pub fn new(num_qubits: usize, num_ancillas: usize) -> Self {
        assert!(num_qubits > 0, "batch needs at least one qubit");
        assert!(num_ancillas > 0, "batch needs at least one ancilla");
        Self {
            num_qubits,
            num_ancillas,
            planes: (0..num_ancillas).map(|_| PackedBits::new(num_qubits)).collect(),
        }
    }

    /// Number of logical qubits per round.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of ancillas per qubit.
    #[must_use]
    pub fn num_ancillas(&self) -> usize {
        self.num_ancillas
    }

    /// The qubit-indexed plane for ancilla `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a >= num_ancillas()`.
    #[must_use]
    pub fn plane(&self, a: usize) -> &PackedBits {
        &self.planes[a]
    }

    /// Qubit `q`'s raw value for ancilla `a`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn get(&self, qubit: usize, ancilla: usize) -> bool {
        self.planes[ancilla].get(qubit)
    }

    /// Sets qubit `q`'s raw value for ancilla `a`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, qubit: usize, ancilla: usize, value: bool) {
        self.planes[ancilla].set(qubit, value);
    }

    /// Clears every plane (dimensions unchanged).
    pub fn clear(&mut self) {
        for p in &mut self.planes {
            p.clear();
        }
    }

    /// Copies another batch of the same dimensions into this one
    /// without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn copy_from(&mut self, other: &SyndromeBatch) {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        assert_eq!(self.num_ancillas, other.num_ancillas, "ancilla count mismatch");
        for (dst, src) in self.planes.iter_mut().zip(&other.planes) {
            dst.copy_from(src);
        }
    }

    /// Scatters one qubit's packed round (ancilla-indexed, as consumed
    /// by the per-qubit pipelines) into this batch's column `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `round.len() != num_ancillas()` or `qubit` is out of
    /// range.
    pub fn set_qubit_round(&mut self, qubit: usize, round: &PackedBits) {
        assert_eq!(round.len(), self.num_ancillas, "round width mismatch");
        for (a, plane) in self.planes.iter_mut().enumerate() {
            plane.set(qubit, round.get(a));
        }
    }

    /// [`SyndromeBatch::set_qubit_round`] from a bool slice.
    ///
    /// # Panics
    ///
    /// Panics if `round.len() != num_ancillas()` or `qubit` is out of
    /// range.
    pub fn set_qubit_round_bools(&mut self, qubit: usize, round: &[bool]) {
        assert_eq!(round.len(), self.num_ancillas, "round width mismatch");
        for (a, plane) in self.planes.iter_mut().enumerate() {
            plane.set(qubit, round[a]);
        }
    }

    /// Gathers column `qubit` back into an ancilla-indexed round
    /// (every bit of `out` is overwritten). This is the transpose read
    /// the machine performs only for the rare non-quiet qubits.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != num_ancillas()` or `qubit` is out of
    /// range.
    pub fn qubit_round_into(&self, qubit: usize, out: &mut PackedBits) {
        assert_eq!(out.len(), self.num_ancillas, "round width mismatch");
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        // Transpose kernel: the source word and shift are fixed by the
        // qubit, so each output word is 64 single-bit extracts with no
        // per-bit bounds checks.
        let w = qubit / 64;
        let shift = qubit % 64;
        for (wi, word) in out.words_mut().iter_mut().enumerate() {
            let base = wi * 64;
            let n = (self.num_ancillas - base).min(64);
            let mut acc = 0u64;
            for j in 0..n {
                acc |= ((self.planes[base + j].words()[w] >> shift) & 1) << j;
            }
            *word = acc;
        }
    }

    /// Word-ORs every plane into `out`: bit `q` is set iff qubit `q`
    /// has *any* lit ancilla this round — the machine-wide "who is not
    /// all-zero" mask, computed without visiting qubits individually.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != num_qubits()`.
    pub fn active_qubits_into(&self, out: &mut PackedBits) {
        assert_eq!(out.len(), self.num_qubits, "qubit mask width mismatch");
        out.clear();
        for plane in &self.planes {
            out.or_with(plane);
        }
    }
}

/// Ring buffer of the most recent machine-wide measurement rounds with
/// a word-parallel sticky filter — the batched counterpart of
/// [`RoundHistory`](crate::RoundHistory) for the Clique filter tier.
///
/// Evicted batches are recycled, so a long-running machine performs no
/// per-cycle heap allocation in steady state.
#[derive(Debug, Clone)]
pub struct BatchHistory {
    num_qubits: usize,
    num_ancillas: usize,
    capacity: usize,
    rounds: VecDeque<SyndromeBatch>,
    spare: Vec<SyndromeBatch>,
}

impl BatchHistory {
    /// A window retaining the most recent `capacity` machine rounds.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    #[must_use]
    pub fn new(num_qubits: usize, num_ancillas: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "batch history needs capacity >= 1");
        assert!(num_qubits > 0, "batch history needs at least one qubit");
        assert!(num_ancillas > 0, "batch history needs at least one ancilla");
        Self {
            num_qubits,
            num_ancillas,
            capacity,
            rounds: VecDeque::with_capacity(capacity + 1),
            spare: Vec::with_capacity(capacity + 1),
        }
    }

    /// Number of logical qubits per round.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of ancillas per qubit.
    #[must_use]
    pub fn num_ancillas(&self) -> usize {
        self.num_ancillas
    }

    /// Maximum number of retained rounds.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of rounds currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether no rounds have been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Appends a machine round (a plane-by-plane word copy into a
    /// recycled batch), evicting the oldest round if full.
    ///
    /// # Panics
    ///
    /// Panics if the batch dimensions mismatch.
    pub fn push(&mut self, batch: &SyndromeBatch) {
        assert_eq!(batch.num_qubits, self.num_qubits, "qubit count mismatch");
        assert_eq!(batch.num_ancillas, self.num_ancillas, "ancilla count mismatch");
        let mut buf = self
            .spare
            .pop()
            .unwrap_or_else(|| SyndromeBatch::new(self.num_qubits, self.num_ancillas));
        buf.copy_from(batch);
        self.rounds.push_back(buf);
        if self.rounds.len() > self.capacity {
            let evicted = self.rounds.pop_front().expect("non-empty after push");
            self.spare.push(evicted);
        }
    }

    /// The machine-wide `k`-round sticky filter: bit `q` of `out`'s
    /// plane `a` is accepted iff qubit `q`'s ancilla `a` was lit in
    /// each of the last `k` rounds — one word-AND chain per plane,
    /// 64 qubits per instruction.
    ///
    /// `out` is all-zeros while fewer than `k` rounds have been
    /// recorded (the filter pipeline still filling), exactly matching
    /// the per-qubit [`RoundHistory::sticky`](crate::RoundHistory)
    /// semantics.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k > capacity()`, or `out` has the wrong
    /// dimensions.
    pub fn sticky_into(&self, k: usize, out: &mut SyndromeBatch) {
        assert!(k >= 1 && k <= self.capacity, "sticky window {k} out of range");
        assert_eq!(out.num_qubits, self.num_qubits, "qubit count mismatch");
        assert_eq!(out.num_ancillas, self.num_ancillas, "ancilla count mismatch");
        if self.rounds.len() < k {
            out.clear();
            return;
        }
        let start = self.rounds.len() - k;
        out.copy_from(&self.rounds[start]);
        for r in (start + 1)..self.rounds.len() {
            let newer = &self.rounds[r];
            for (dst, src) in out.planes.iter_mut().zip(&newer.planes) {
                dst.and_with(src);
            }
        }
    }

    /// Materializes one qubit's decode window out of the machine-wide
    /// ring: gathers qubit `qubit`'s most recent `len` rounds into
    /// `out` (reset first), oldest first. The machine tier pays this
    /// transpose read only when a window is actually consumed (an
    /// off-chip escalation), never on the per-cycle hot path.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the retained rounds, `out` has the
    /// wrong width, or `out.capacity() < len`.
    pub fn gather_qubit_window(&self, qubit: usize, len: usize, out: &mut RoundHistory) {
        assert!(len <= self.rounds.len(), "window length {len} exceeds retained rounds");
        assert!(len <= out.capacity(), "window capacity too small");
        out.reset();
        let start = self.rounds.len() - len;
        for r in start..self.rounds.len() {
            out.push_from_batch(&self.rounds[r], qubit);
        }
    }

    /// Forgets all retained rounds (buffers are recycled).
    pub fn reset(&mut self) {
        self.spare.extend(self.rounds.drain(..));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::RoundHistory;
    use crate::repr::Syndrome;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_round(state: &mut u64, n: usize, density: u64) -> Vec<bool> {
        (0..n).map(|_| xorshift(state).is_multiple_of(density)).collect()
    }

    #[test]
    fn transpose_roundtrips() {
        let mut state = 0xBA7C4u64;
        let (q, a) = (70, 13); // qubit planes cross a word boundary
        let mut batch = SyndromeBatch::new(q, a);
        let rounds: Vec<Vec<bool>> = (0..q).map(|_| random_round(&mut state, a, 3)).collect();
        for (qi, round) in rounds.iter().enumerate() {
            batch.set_qubit_round_bools(qi, round);
        }
        let mut out = PackedBits::new(a);
        for (qi, round) in rounds.iter().enumerate() {
            batch.qubit_round_into(qi, &mut out);
            assert_eq!(out.to_bools(), *round, "qubit {qi}");
            for (ai, &bit) in round.iter().enumerate() {
                assert_eq!(batch.get(qi, ai), bit);
            }
        }
    }

    #[test]
    fn packed_scatter_matches_bool_scatter() {
        let mut state = 0x5EEDu64;
        let mut a_batch = SyndromeBatch::new(9, 21);
        let mut b_batch = SyndromeBatch::new(9, 21);
        for qi in 0..9 {
            let round = random_round(&mut state, 21, 2);
            a_batch.set_qubit_round_bools(qi, &round);
            b_batch.set_qubit_round(qi, &PackedBits::from_bools(&round));
        }
        assert_eq!(a_batch, b_batch);
    }

    #[test]
    fn scatter_overwrites_stale_column() {
        let mut batch = SyndromeBatch::new(3, 4);
        batch.set_qubit_round_bools(1, &[true; 4]);
        batch.set_qubit_round_bools(1, &[false, true, false, false]);
        let mut out = PackedBits::new(4);
        batch.qubit_round_into(1, &mut out);
        assert_eq!(out.to_bools(), vec![false, true, false, false]);
    }

    #[test]
    fn active_mask_is_or_of_planes() {
        let mut batch = SyndromeBatch::new(130, 5);
        batch.set(0, 0, true);
        batch.set(64, 3, true);
        batch.set(129, 4, true);
        let mut mask = PackedBits::new(130);
        batch.active_qubits_into(&mut mask);
        assert_eq!(mask.iter_set().collect::<Vec<_>>(), vec![0, 64, 129]);
        // Stale bits must be cleared.
        batch.set(64, 3, false);
        batch.active_qubits_into(&mut mask);
        assert_eq!(mask.iter_set().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn batch_sticky_matches_per_qubit_sticky() {
        // The machine-wide filter must agree bit-for-bit with each
        // qubit's own RoundHistory filter on an identical stream.
        let (q, a, k, cycles) = (67usize, 12usize, 2usize, 40usize);
        let mut state = 0xF117E4u64;
        let mut history = BatchHistory::new(q, a, k);
        let mut per_qubit: Vec<RoundHistory> = (0..q).map(|_| RoundHistory::new(a, k)).collect();
        let mut batch = SyndromeBatch::new(q, a);
        let mut sticky = SyndromeBatch::new(q, a);
        let mut expect = Syndrome::new(a);
        let mut got = PackedBits::new(a);
        for t in 0..cycles {
            for (qi, h) in per_qubit.iter_mut().enumerate() {
                let round = random_round(&mut state, a, 4);
                batch.set_qubit_round_bools(qi, &round);
                h.push(&round);
            }
            history.push(&batch);
            history.sticky_into(k, &mut sticky);
            for (qi, h) in per_qubit.iter().enumerate() {
                h.sticky_into(k, &mut expect);
                sticky.qubit_round_into(qi, &mut got);
                assert_eq!(got.to_bools(), expect.to_bools(), "cycle {t}, qubit {qi}");
            }
        }
    }

    #[test]
    fn sticky_is_zero_while_filling_and_after_reset() {
        let mut history = BatchHistory::new(4, 3, 2);
        let mut batch = SyndromeBatch::new(4, 3);
        batch.set(2, 1, true);
        let mut sticky = SyndromeBatch::new(4, 3);
        history.push(&batch);
        history.sticky_into(2, &mut sticky);
        assert!(sticky.plane(1).is_zero(), "one round cannot satisfy k=2");
        history.push(&batch);
        history.sticky_into(2, &mut sticky);
        assert!(sticky.get(2, 1));
        history.reset();
        assert!(history.is_empty());
        history.push(&batch);
        history.sticky_into(2, &mut sticky);
        assert!(sticky.plane(1).is_zero(), "reset must refill the pipeline");
        // Recycled buffers must come back fully overwritten.
        let quiet = SyndromeBatch::new(4, 3);
        history.push(&quiet);
        history.push(&quiet);
        history.sticky_into(2, &mut sticky);
        assert!(sticky.plane(1).is_zero());
    }

    #[test]
    fn eviction_keeps_window_bounded() {
        let mut history = BatchHistory::new(2, 2, 2);
        let mut lit = SyndromeBatch::new(2, 2);
        lit.set(0, 0, true);
        let quiet = SyndromeBatch::new(2, 2);
        history.push(&lit);
        history.push(&lit);
        history.push(&quiet);
        assert_eq!(history.len(), 2);
        let mut sticky = SyndromeBatch::new(2, 2);
        history.sticky_into(2, &mut sticky);
        assert!(!sticky.get(0, 0), "the quiet round must break the streak");
    }

    #[test]
    #[should_panic(expected = "round width mismatch")]
    fn scatter_rejects_wrong_width() {
        let mut batch = SyndromeBatch::new(2, 3);
        batch.set_qubit_round_bools(0, &[true; 4]);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn zero_qubits_rejected() {
        let _ = SyndromeBatch::new(0, 3);
    }
}
