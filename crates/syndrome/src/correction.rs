//! Corrections: the output side of every decoder.

use std::fmt;

/// A set of data qubits to flip (XOR semantics — flipping twice is the
/// identity, so the set is kept deduplicated and sorted).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Correction {
    qubits: Vec<usize>,
}

impl Correction {
    /// The empty correction.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a correction from a list of qubit flips; duplicate entries
    /// cancel pairwise (XOR semantics).
    #[must_use]
    pub fn from_flips(mut flips: Vec<usize>) -> Self {
        flips.sort_unstable();
        let mut qubits = Vec::with_capacity(flips.len());
        let mut i = 0;
        while i < flips.len() {
            let mut run = 1;
            while i + run < flips.len() && flips[i + run] == flips[i] {
                run += 1;
            }
            if run % 2 == 1 {
                qubits.push(flips[i]);
            }
            i += run;
        }
        Self { qubits }
    }

    /// Sorted, deduplicated data-qubit indices to flip.
    #[must_use]
    pub fn qubits(&self) -> &[usize] {
        &self.qubits
    }

    /// Number of qubits flipped.
    #[must_use]
    pub fn weight(&self) -> usize {
        self.qubits.len()
    }

    /// Whether this correction flips nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.qubits.is_empty()
    }

    /// XORs this correction into an error buffer.
    ///
    /// # Panics
    ///
    /// Panics if any qubit index is out of range for `errors`.
    pub fn apply_to(&self, errors: &mut [bool]) {
        for &q in &self.qubits {
            errors[q] ^= true;
        }
    }

    /// Merges another correction into this one (XOR semantics).
    pub fn merge(&mut self, other: &Correction) {
        let mut flips = self.qubits.clone();
        flips.extend_from_slice(&other.qubits);
        *self = Self::from_flips(flips);
    }
}

impl FromIterator<usize> for Correction {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        Self::from_flips(iter.into_iter().collect())
    }
}

impl fmt::Display for Correction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flip{:?}", self.qubits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_flips_dedups_pairs() {
        let c = Correction::from_flips(vec![3, 1, 3, 2, 1, 1]);
        assert_eq!(c.qubits(), &[1, 2]);
        assert_eq!(c.weight(), 2);
    }

    #[test]
    fn apply_to_xors() {
        let c = Correction::from_flips(vec![0, 2]);
        let mut errors = vec![true, false, true];
        c.apply_to(&mut errors);
        assert_eq!(errors, vec![false, false, false]);
    }

    #[test]
    fn merge_cancels_common_qubits() {
        let mut a = Correction::from_flips(vec![1, 2]);
        let b = Correction::from_flips(vec![2, 3]);
        a.merge(&b);
        assert_eq!(a.qubits(), &[1, 3]);
    }

    #[test]
    fn empty_correction() {
        let c = Correction::new();
        assert!(c.is_empty());
        assert_eq!(c.to_string(), "flip[]");
    }

    #[test]
    fn collect_from_iterator() {
        let c: Correction = [5usize, 5, 7].into_iter().collect();
        assert_eq!(c.qubits(), &[7]);
    }
}
