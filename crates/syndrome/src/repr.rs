//! The per-cycle syndrome bit vector.

use std::fmt;

/// One round of syndrome bits for one stabilizer type; bit `i` belongs
/// to ancilla `i` (the indexing of [`btwc_lattice::SurfaceCode::ancillas`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Syndrome {
    bits: Vec<bool>,
}

impl Syndrome {
    /// An all-zero syndrome over `n` ancillas.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { bits: vec![false; n] }
    }

    /// Wraps an existing bit vector.
    #[must_use]
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Self { bits }
    }

    /// Number of ancillas covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the syndrome covers zero ancillas.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of set bits (lit ancillas).
    #[must_use]
    pub fn weight(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Whether no ancilla is lit — the paper's "All-0s" signature.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.bits.iter().all(|&b| !b)
    }

    /// Bit for ancilla `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Sets the bit for ancilla `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        self.bits[i] = value;
    }

    /// XORs another syndrome into this one.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_with(&mut self, other: &Syndrome) {
        assert_eq!(self.len(), other.len(), "syndrome lengths must match");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a ^= *b;
        }
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.bits.fill(false);
    }

    /// Indices of the lit ancillas, ascending.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
    }

    /// Borrow as a plain bool slice.
    #[must_use]
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }
}

impl From<Vec<bool>> for Syndrome {
    fn from(bits: Vec<bool>) -> Self {
        Self::from_bits(bits)
    }
}

impl FromIterator<bool> for Syndrome {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bits(iter.into_iter().collect())
    }
}

impl fmt::Display for Syndrome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zero() {
        let s = Syndrome::new(12);
        assert!(s.is_zero());
        assert_eq!(s.len(), 12);
        assert_eq!(s.weight(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut s = Syndrome::new(8);
        s.set(3, true);
        assert!(s.get(3));
        assert_eq!(s.weight(), 1);
        assert!(!s.is_zero());
        s.set(3, false);
        assert!(s.is_zero());
    }

    #[test]
    fn xor_cancels() {
        let mut a: Syndrome = [true, false, true, false].into_iter().collect();
        let b = a.clone();
        a.xor_with(&b);
        assert!(a.is_zero());
    }

    #[test]
    fn iter_set_lists_lit_ancillas() {
        let s: Syndrome = [false, true, false, true, true].into_iter().collect();
        let set: Vec<usize> = s.iter_set().collect();
        assert_eq!(set, vec![1, 3, 4]);
    }

    #[test]
    fn display_is_bitstring() {
        let s: Syndrome = [true, false, true].into_iter().collect();
        assert_eq!(s.to_string(), "101");
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn xor_length_mismatch_panics() {
        let mut a = Syndrome::new(3);
        let b = Syndrome::new(4);
        a.xor_with(&b);
    }

    #[test]
    fn from_vec_and_clear() {
        let mut s = Syndrome::from(vec![true, true]);
        assert_eq!(s.weight(), 2);
        s.clear();
        assert!(s.is_zero());
    }
}
