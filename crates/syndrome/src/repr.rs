//! The per-cycle syndrome bit vector.

use std::fmt;

use crate::packed::{PackedBits, SetBits};

/// One round of syndrome bits for one stabilizer type; bit `i` belongs
/// to ancilla `i` (the indexing of [`btwc_lattice::SurfaceCode::ancillas`]).
///
/// Backed by a word-packed bit vector ([`PackedBits`]), so the
/// operations the decode hot path leans on — [`Syndrome::is_zero`],
/// [`Syndrome::weight`], [`Syndrome::xor_with`], [`Syndrome::iter_set`]
/// — are word-parallel rather than bit-at-a-time.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Syndrome {
    bits: PackedBits,
}

impl Syndrome {
    /// An all-zero syndrome over `n` ancillas.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { bits: PackedBits::new(n) }
    }

    /// Packs an existing bit vector.
    #[must_use]
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Self { bits: PackedBits::from_bools(&bits) }
    }

    /// Wraps an already-packed bit vector.
    #[must_use]
    pub fn from_packed(bits: PackedBits) -> Self {
        Self { bits }
    }

    /// Number of ancillas covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the syndrome covers zero ancillas.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of set bits (lit ancillas) — hardware popcount.
    #[must_use]
    pub fn weight(&self) -> usize {
        self.bits.weight()
    }

    /// Whether no ancilla is lit — the paper's "All-0s" signature
    /// (a word scan, not a bit loop).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.bits.is_zero()
    }

    /// Bit for ancilla `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// Sets the bit for ancilla `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        self.bits.set(i, value);
    }

    /// XORs another syndrome into this one (word-parallel).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_with(&mut self, other: &Syndrome) {
        assert_eq!(self.len(), other.len(), "syndrome lengths must match");
        self.bits.xor_with(&other.bits);
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.bits.clear();
    }

    /// Indices of the lit ancillas, ascending (trailing-zeros scan).
    #[must_use]
    pub fn iter_set(&self) -> SetBits<'_> {
        self.bits.iter_set()
    }

    /// Borrow the packed representation.
    #[must_use]
    pub fn as_packed(&self) -> &PackedBits {
        &self.bits
    }

    /// Mutably borrow the packed representation.
    pub fn as_packed_mut(&mut self) -> &mut PackedBits {
        &mut self.bits
    }

    /// Unpacks to a plain bool vector (cold paths and tests only).
    #[must_use]
    pub fn to_bools(&self) -> Vec<bool> {
        self.bits.to_bools()
    }
}

impl From<Vec<bool>> for Syndrome {
    fn from(bits: Vec<bool>) -> Self {
        Self::from_bits(bits)
    }
}

impl From<PackedBits> for Syndrome {
    fn from(bits: PackedBits) -> Self {
        Self::from_packed(bits)
    }
}

impl FromIterator<bool> for Syndrome {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self { bits: iter.into_iter().collect() }
    }
}

impl fmt::Display for Syndrome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.bits.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zero() {
        let s = Syndrome::new(12);
        assert!(s.is_zero());
        assert_eq!(s.len(), 12);
        assert_eq!(s.weight(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut s = Syndrome::new(8);
        s.set(3, true);
        assert!(s.get(3));
        assert_eq!(s.weight(), 1);
        assert!(!s.is_zero());
        s.set(3, false);
        assert!(s.is_zero());
    }

    #[test]
    fn xor_cancels() {
        let mut a: Syndrome = [true, false, true, false].into_iter().collect();
        let b = a.clone();
        a.xor_with(&b);
        assert!(a.is_zero());
    }

    #[test]
    fn iter_set_lists_lit_ancillas() {
        let s: Syndrome = [false, true, false, true, true].into_iter().collect();
        let set: Vec<usize> = s.iter_set().collect();
        assert_eq!(set, vec![1, 3, 4]);
    }

    #[test]
    fn display_is_bitstring() {
        let s: Syndrome = [true, false, true].into_iter().collect();
        assert_eq!(s.to_string(), "101");
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn xor_length_mismatch_panics() {
        let mut a = Syndrome::new(3);
        let b = Syndrome::new(4);
        a.xor_with(&b);
    }

    #[test]
    fn from_vec_and_clear() {
        let mut s = Syndrome::from(vec![true, true]);
        assert_eq!(s.weight(), 2);
        s.clear();
        assert!(s.is_zero());
    }

    #[test]
    fn packed_views_roundtrip() {
        let bools = vec![true, false, true, true, false, false, true];
        let s = Syndrome::from_bits(bools.clone());
        assert_eq!(s.to_bools(), bools);
        let p = s.as_packed().clone();
        assert_eq!(Syndrome::from_packed(p), s);
    }
}
