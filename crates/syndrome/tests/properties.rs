#![allow(clippy::needless_range_loop)]

//! Property-based tests of the round history and correction algebra,
//! plus packed-vs-reference equivalence for the word-parallel bitset.

use btwc_syndrome::{Correction, PackedBits, RoundHistory, Syndrome};
use proptest::prelude::*;

proptest! {
    /// sticky(k) is monotone in k: accepting at depth k+1 implies
    /// accepting at depth k.
    #[test]
    fn sticky_is_monotone_in_depth(
        rounds in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 6), 1..8),
    ) {
        let mut h = RoundHistory::new(6, 8);
        for r in &rounds {
            h.push(r);
        }
        for k in 1..7usize {
            let deep = h.sticky(k + 1);
            let shallow = h.sticky(k);
            for i in 0..6 {
                if deep.get(i) {
                    prop_assert!(shallow.get(i), "k={} ancilla={}", k, i);
                }
            }
        }
    }

    /// Detection events reconstruct the final round exactly: XOR of all
    /// events per ancilla equals the latest raw value.
    #[test]
    fn events_reconstruct_latest_round(
        rounds in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 5), 1..8),
    ) {
        let mut h = RoundHistory::new(5, 16);
        for r in &rounds {
            h.push(r);
        }
        let mut acc = [false; 5];
        for ev in h.detection_events() {
            acc[ev.ancilla] ^= true;
        }
        let latest = h.latest().unwrap();
        for i in 0..5 {
            prop_assert_eq!(acc[i], latest.get(i));
        }
    }

    /// Correction merge is an abelian-group operation (XOR): commutative,
    /// associative, self-inverse.
    #[test]
    fn correction_merge_is_xor_group(
        a in proptest::collection::vec(0usize..30, 0..8),
        b in proptest::collection::vec(0usize..30, 0..8),
        c in proptest::collection::vec(0usize..30, 0..8),
    ) {
        let ca = Correction::from_flips(a);
        let cb = Correction::from_flips(b);
        let cc = Correction::from_flips(c);
        // commutative
        let mut ab = ca.clone();
        ab.merge(&cb);
        let mut ba = cb.clone();
        ba.merge(&ca);
        prop_assert_eq!(&ab, &ba);
        // associative
        let mut ab_c = ab.clone();
        ab_c.merge(&cc);
        let mut bc = cb.clone();
        bc.merge(&cc);
        let mut a_bc = ca.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        // self-inverse
        let mut aa = ca.clone();
        aa.merge(&ca);
        prop_assert!(aa.is_empty());
    }

    /// Applying a correction twice is the identity on any buffer.
    #[test]
    fn apply_twice_is_identity(
        flips in proptest::collection::vec(0usize..20, 0..10),
        start in proptest::collection::vec(any::<bool>(), 20),
    ) {
        let c = Correction::from_flips(flips);
        let mut buf = start.clone();
        c.apply_to(&mut buf);
        c.apply_to(&mut buf);
        prop_assert_eq!(buf, start);
    }

    /// Syndrome XOR is an involution and weight is bounded by length.
    #[test]
    fn syndrome_algebra(bits in proptest::collection::vec(any::<bool>(), 1..40)) {
        let s = Syndrome::from_bits(bits.clone());
        prop_assert!(s.weight() <= s.len());
        let mut t = s.clone();
        t.xor_with(&s);
        prop_assert!(t.is_zero());
        prop_assert_eq!(s.iter_set().count(), s.weight());
    }

    /// The packed bitset agrees with the `Vec<bool>` reference on every
    /// operation, across odd lengths straddling word boundaries.
    #[test]
    fn packed_matches_bool_reference(
        len in prop_oneof![Just(1usize), Just(7), Just(63), Just(64),
                           Just(65), Just(127), Just(129), Just(200)],
        seed_a in proptest::collection::vec(any::<bool>(), 200),
        seed_b in proptest::collection::vec(any::<bool>(), 200),
    ) {
        let a_bits = &seed_a[..len];
        let b_bits = &seed_b[..len];
        let a = PackedBits::from_bools(a_bits);
        let b = PackedBits::from_bools(b_bits);
        // Round-trips.
        prop_assert_eq!(&a.to_bools()[..], a_bits);
        // Scalar queries.
        prop_assert_eq!(a.weight(), a_bits.iter().filter(|&&x| x).count());
        prop_assert_eq!(a.is_zero(), a_bits.iter().all(|&x| !x));
        for i in 0..len {
            prop_assert_eq!(a.get(i), a_bits[i]);
        }
        // iter_set equals the enumerate-filter reference.
        let set: Vec<usize> = a.iter_set().collect();
        let set_ref: Vec<usize> = a_bits
            .iter()
            .enumerate()
            .filter_map(|(i, &x)| x.then_some(i))
            .collect();
        prop_assert_eq!(set, set_ref);
        // xor / and / or match the per-bit reference.
        let mut x = a.clone();
        x.xor_with(&b);
        let mut n = a.clone();
        n.and_with(&b);
        let mut o = a.clone();
        o.or_with(&b);
        for i in 0..len {
            prop_assert_eq!(x.get(i), a_bits[i] ^ b_bits[i]);
            prop_assert_eq!(n.get(i), a_bits[i] & b_bits[i]);
            prop_assert_eq!(o.get(i), a_bits[i] | b_bits[i]);
        }
        // Fused xor_weight equals xor-then-count, both ways around.
        let xor_count = (0..len).filter(|&i| a_bits[i] ^ b_bits[i]).count();
        prop_assert_eq!(a.xor_weight(&b), xor_count);
        prop_assert_eq!(b.xor_weight(&a), xor_count);
        // xor round-trips.
        x.xor_with(&b);
        prop_assert_eq!(x, a);
    }

    /// set / toggle keep weight, tail invariants, and bit state in sync
    /// with a mutable `Vec<bool>` model.
    #[test]
    fn packed_mutation_matches_model(
        len in prop_oneof![Just(5usize), Just(64), Just(65), Just(130)],
        ops in proptest::collection::vec((0usize..130, any::<bool>(), any::<bool>()), 0..40),
    ) {
        let mut p = PackedBits::new(len);
        let mut model = vec![false; len];
        for (i, use_toggle, value) in ops {
            let i = i % len;
            if use_toggle {
                let now = p.toggle(i);
                model[i] ^= true;
                prop_assert_eq!(now, model[i]);
            } else {
                p.set(i, value);
                model[i] = value;
            }
        }
        prop_assert_eq!(p.to_bools(), model.clone());
        prop_assert_eq!(p.weight(), model.iter().filter(|&&x| x).count());
        // The tail of the last word must stay clear (whole-word ops
        // rely on it).
        if let Some(&last) = p.words().last() {
            let used = len - (p.words().len() - 1) * 64;
            if used < 64 {
                prop_assert_eq!(last >> used, 0);
            }
        }
    }

    /// The packed sticky filter and detection events equal a bit-at-a-
    /// time reference over random windows.
    #[test]
    fn history_matches_bool_reference(
        rounds in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 67), 1..7),
    ) {
        let n = 67usize;
        let mut h = RoundHistory::new(n, 8);
        for r in &rounds {
            h.push(r);
        }
        // Sticky reference: AND of the last k rounds, per bit.
        for k in 1..=rounds.len() {
            let sticky = h.sticky(k);
            for i in 0..n {
                let expect = rounds[rounds.len() - k..].iter().all(|r| r[i]);
                prop_assert_eq!(sticky.get(i), expect, "k={} i={}", k, i);
            }
        }
        // Detection-event reference: diff against the previous round.
        let mut expect = Vec::new();
        for (t, r) in rounds.iter().enumerate() {
            for i in 0..n {
                let before = if t == 0 { false } else { rounds[t - 1][i] };
                if r[i] != before {
                    expect.push((i, t));
                }
            }
        }
        let got: Vec<(usize, usize)> = h
            .detection_events()
            .into_iter()
            .map(|e| (e.ancilla, e.round))
            .collect();
        let mut expect_sorted = expect.clone();
        expect_sorted.sort_by_key(|&(i, t)| (t, i));
        let mut got_sorted = got.clone();
        got_sorted.sort_by_key(|&(i, t)| (t, i));
        prop_assert_eq!(got_sorted, expect_sorted);
    }
}

/// Sliding compaction: after `slide(k)`, the re-based detection events
/// (front round diffed against the all-zero baseline again) must match
/// a window freshly built from the surviving rounds — across word
/// boundaries, partial words, and quiet (empty-event) prefixes.
mod slide_rebases_like_fresh {
    use super::*;

    fn check(width: usize, rounds: &[Vec<bool>], k: usize, quiet_prefix: usize) {
        let mut slid = RoundHistory::new(width, rounds.len().max(1) + quiet_prefix);
        for _ in 0..quiet_prefix {
            slid.push(&vec![false; width]);
        }
        for r in rounds {
            slid.push(r);
        }
        let k = k.min(slid.len());
        slid.slide(k);
        let mut fresh = RoundHistory::new(width, rounds.len().max(1) + quiet_prefix);
        for t in k..(quiet_prefix + rounds.len()) {
            if t < quiet_prefix {
                fresh.push(&vec![false; width]);
            } else {
                fresh.push(&rounds[t - quiet_prefix]);
            }
        }
        assert_eq!(slid.detection_events(), fresh.detection_events());
        assert_eq!(slid.detection_event_count(), fresh.detection_event_count());
        assert_eq!(slid.len(), fresh.len());
        for t in 0..slid.len() {
            assert_eq!(slid.round_event_count(t), fresh.round_event_count(t), "round {t}");
            assert_eq!(slid.round(t), fresh.round(t), "round {t}");
        }
    }

    proptest! {
        /// Multi-word rounds: ancilla counts straddling the 64-bit word
        /// boundary, arbitrary slide depths.
        #[test]
        fn across_word_boundaries(
            rounds in proptest::collection::vec(
                proptest::collection::vec(any::<bool>(), 130), 1..7),
            k in 0usize..7,
        ) {
            check(130, &rounds, k, 0);
        }

        /// Partial words: widths well below one word and just past one.
        #[test]
        fn partial_words(
            rounds in proptest::collection::vec(
                proptest::collection::vec(any::<bool>(), 5), 1..8),
            k in 0usize..8,
            wide in proptest::collection::vec(
                proptest::collection::vec(any::<bool>(), 65), 1..5),
        ) {
            check(5, &rounds, k, 0);
            check(65, &wide, k.min(wide.len()), 0);
        }

        /// Empty-prefix windows: all-zero leading rounds, slides that
        /// stop inside, at, and beyond the quiet prefix.
        #[test]
        fn empty_prefix_windows(
            rounds in proptest::collection::vec(
                proptest::collection::vec(any::<bool>(), 9), 1..5),
            quiet in 1usize..4,
            k in 0usize..8,
        ) {
            check(9, &rounds, k, quiet);
        }

        /// Repeated single-round slides traverse every boundary a long
        /// stream crosses, staying equal to fresh windows throughout.
        #[test]
        fn repeated_slides_stay_rebased(
            rounds in proptest::collection::vec(
                proptest::collection::vec(any::<bool>(), 70), 2..9),
        ) {
            let mut h = RoundHistory::new(70, rounds.len());
            for r in &rounds {
                h.push(r);
            }
            for dropped in 1..rounds.len() {
                h.slide(1);
                let mut fresh = RoundHistory::new(70, rounds.len());
                for r in &rounds[dropped..] {
                    fresh.push(r);
                }
                prop_assert_eq!(h.detection_events(), fresh.detection_events());
                prop_assert_eq!(
                    h.detection_event_count(), fresh.detection_event_count());
            }
        }
    }
}
