#![allow(clippy::needless_range_loop)]

//! Property-based tests of the round history and correction algebra.

use btwc_syndrome::{Correction, RoundHistory, Syndrome};
use proptest::prelude::*;

proptest! {
    /// sticky(k) is monotone in k: accepting at depth k+1 implies
    /// accepting at depth k.
    #[test]
    fn sticky_is_monotone_in_depth(
        rounds in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 6), 1..8),
    ) {
        let mut h = RoundHistory::new(6, 8);
        for r in &rounds {
            h.push(r);
        }
        for k in 1..7usize {
            let deep = h.sticky(k + 1);
            let shallow = h.sticky(k);
            for i in 0..6 {
                if deep.get(i) {
                    prop_assert!(shallow.get(i), "k={} ancilla={}", k, i);
                }
            }
        }
    }

    /// Detection events reconstruct the final round exactly: XOR of all
    /// events per ancilla equals the latest raw value.
    #[test]
    fn events_reconstruct_latest_round(
        rounds in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 5), 1..8),
    ) {
        let mut h = RoundHistory::new(5, 16);
        for r in &rounds {
            h.push(r);
        }
        let mut acc = [false; 5];
        for ev in h.detection_events() {
            acc[ev.ancilla] ^= true;
        }
        let latest = h.latest().unwrap();
        for i in 0..5 {
            prop_assert_eq!(acc[i], latest.get(i));
        }
    }

    /// Correction merge is an abelian-group operation (XOR): commutative,
    /// associative, self-inverse.
    #[test]
    fn correction_merge_is_xor_group(
        a in proptest::collection::vec(0usize..30, 0..8),
        b in proptest::collection::vec(0usize..30, 0..8),
        c in proptest::collection::vec(0usize..30, 0..8),
    ) {
        let ca = Correction::from_flips(a);
        let cb = Correction::from_flips(b);
        let cc = Correction::from_flips(c);
        // commutative
        let mut ab = ca.clone();
        ab.merge(&cb);
        let mut ba = cb.clone();
        ba.merge(&ca);
        prop_assert_eq!(&ab, &ba);
        // associative
        let mut ab_c = ab.clone();
        ab_c.merge(&cc);
        let mut bc = cb.clone();
        bc.merge(&cc);
        let mut a_bc = ca.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        // self-inverse
        let mut aa = ca.clone();
        aa.merge(&ca);
        prop_assert!(aa.is_empty());
    }

    /// Applying a correction twice is the identity on any buffer.
    #[test]
    fn apply_twice_is_identity(
        flips in proptest::collection::vec(0usize..20, 0..10),
        start in proptest::collection::vec(any::<bool>(), 20),
    ) {
        let c = Correction::from_flips(flips);
        let mut buf = start.clone();
        c.apply_to(&mut buf);
        c.apply_to(&mut buf);
        prop_assert_eq!(buf, start);
    }

    /// Syndrome XOR is an involution and weight is bounded by length.
    #[test]
    fn syndrome_algebra(bits in proptest::collection::vec(any::<bool>(), 1..40)) {
        let s = Syndrome::from_bits(bits.clone());
        prop_assert!(s.weight() <= s.len());
        let mut t = s.clone();
        t.xor_with(&s);
        prop_assert!(t.is_zero());
        prop_assert_eq!(s.iter_set().count(), s.weight());
    }
}
