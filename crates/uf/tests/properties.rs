//! Property-based tests: union-find corrections always explain the
//! detection events they were given.

use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_syndrome::RoundHistory;
use btwc_uf::UnionFindDecoder;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For an arbitrary accumulated data-error pattern observed over a
    /// closed (perfect-readout) window, the UF correction must cancel
    /// the full syndrome.
    #[test]
    fn corrections_cancel_arbitrary_error_patterns(
        d in prop_oneof![Just(3u16), Just(5), Just(7)],
        flips in proptest::collection::vec(0usize..49, 0..10),
    ) {
        let code = SurfaceCode::new(d);
        let n = code.num_data_qubits();
        let decoder = UnionFindDecoder::new(&code, StabilizerType::X);
        let mut errors = vec![false; n];
        for &q in &flips {
            errors[q % n] ^= true;
        }
        let round = code.syndrome_of(StabilizerType::X, &errors);
        let mut window = RoundHistory::new(round.len(), 3);
        window.push(&round);
        window.push(&round);
        let c = decoder.decode_window(&window);
        let mut residual = errors.clone();
        c.apply_to(&mut residual);
        let s = code.syndrome_of(StabilizerType::X, &residual);
        prop_assert!(s.iter().all(|&b| !b), "residual syndrome after UF");
    }

    /// Decoding is deterministic.
    #[test]
    fn decode_is_deterministic(
        flips in proptest::collection::vec(0usize..25, 0..6),
    ) {
        let code = SurfaceCode::new(5);
        let decoder = UnionFindDecoder::new(&code, StabilizerType::X);
        let mut errors = vec![false; 25];
        for &q in &flips {
            errors[q] ^= true;
        }
        let round = code.syndrome_of(StabilizerType::X, &errors);
        let mut window = RoundHistory::new(round.len(), 2);
        window.push(&round);
        window.push(&round);
        prop_assert_eq!(decoder.decode_window(&window), decoder.decode_window(&window));
    }
}
