//! The space-time graph union-find clusters grow on.

use btwc_lattice::{DetectorGraph, NodeRef};

/// One space-time edge. Spatial edges carry the data qubit whose error
/// flips both endpoints; temporal edges (measurement errors) carry none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StEdge {
    /// First endpoint (vertex id).
    pub u: usize,
    /// Second endpoint (vertex id; may be the boundary vertex).
    pub v: usize,
    /// Data qubit flipped by crossing this edge, if spatial.
    pub qubit: Option<usize>,
}

/// The detector graph replicated over `rounds` measurement rounds, with
/// temporal edges between consecutive copies of each ancilla and one
/// shared boundary super-vertex.
///
/// Vertex ids: `t * num_ancillas + a`; the boundary vertex is
/// `rounds * num_ancillas`.
#[derive(Debug, Clone)]
pub struct SpaceTimeGraph {
    num_ancillas: usize,
    rounds: usize,
    edges: Vec<StEdge>,
    adjacency: Vec<Vec<usize>>,
}

impl SpaceTimeGraph {
    /// Builds the graph for `rounds` rounds over `spatial`.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn new(spatial: &DetectorGraph, rounds: usize) -> Self {
        assert!(rounds > 0, "need at least one round");
        let n = spatial.num_nodes();
        let boundary = rounds * n;
        let mut edges = Vec::new();
        for t in 0..rounds {
            let base = t * n;
            for e in spatial.edges() {
                let u = base + e.a;
                let v = match e.b {
                    NodeRef::Ancilla(b) => base + b,
                    NodeRef::Boundary => boundary,
                };
                edges.push(StEdge { u, v, qubit: Some(e.qubit) });
            }
            if t + 1 < rounds {
                for a in 0..n {
                    edges.push(StEdge { u: base + a, v: base + n + a, qubit: None });
                }
            }
        }
        let mut adjacency = vec![Vec::new(); boundary + 1];
        for (i, e) in edges.iter().enumerate() {
            adjacency[e.u].push(i);
            adjacency[e.v].push(i);
        }
        Self { num_ancillas: n, rounds, edges, adjacency }
    }

    /// Number of ancillas per round.
    #[must_use]
    pub fn num_ancillas(&self) -> usize {
        self.num_ancillas
    }

    /// Number of rounds.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Total vertices including the boundary super-vertex.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.rounds * self.num_ancillas + 1
    }

    /// The boundary super-vertex id.
    #[must_use]
    pub fn boundary(&self) -> usize {
        self.rounds * self.num_ancillas
    }

    /// Vertex id of ancilla `a` at round `t`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn vertex(&self, a: usize, t: usize) -> usize {
        assert!(a < self.num_ancillas && t < self.rounds, "vertex out of range");
        t * self.num_ancillas + a
    }

    /// All edges.
    #[must_use]
    pub fn edges(&self) -> &[StEdge] {
        &self.edges
    }

    /// Edge ids incident to vertex `v`.
    #[must_use]
    pub fn incident(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_lattice::{StabilizerType, SurfaceCode};

    #[test]
    fn edge_and_vertex_counts() {
        let code = SurfaceCode::new(5);
        let g = code.detector_graph(StabilizerType::X);
        let st = SpaceTimeGraph::new(g, 3);
        let n = g.num_nodes();
        assert_eq!(st.num_vertices(), 3 * n + 1);
        // Per round: one spatial edge per data qubit; between rounds: n
        // temporal edges.
        let expected = 3 * code.num_data_qubits() + 2 * n;
        assert_eq!(st.edges().len(), expected);
    }

    #[test]
    fn temporal_edges_have_no_qubit() {
        let code = SurfaceCode::new(3);
        let g = code.detector_graph(StabilizerType::X);
        let st = SpaceTimeGraph::new(g, 2);
        let temporal = st.edges().iter().filter(|e| e.qubit.is_none()).count();
        assert_eq!(temporal, g.num_nodes());
    }

    #[test]
    fn boundary_vertex_has_incident_edges_every_round() {
        let code = SurfaceCode::new(5);
        let g = code.detector_graph(StabilizerType::X);
        let st = SpaceTimeGraph::new(g, 4);
        // 2*d private qubits per round feed the boundary.
        assert_eq!(st.incident(st.boundary()).len(), 4 * 10);
    }

    #[test]
    fn vertex_indexing_roundtrips() {
        let code = SurfaceCode::new(3);
        let g = code.detector_graph(StabilizerType::X);
        let st = SpaceTimeGraph::new(g, 3);
        assert_eq!(st.vertex(0, 0), 0);
        assert_eq!(st.vertex(1, 2), 2 * g.num_nodes() + 1);
        assert!(st.vertex(1, 2) < st.boundary());
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let code = SurfaceCode::new(3);
        let _ = SpaceTimeGraph::new(code.detector_graph(StabilizerType::X), 0);
    }
}
