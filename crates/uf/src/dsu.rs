//! Weighted disjoint-set forest with the cluster metadata union-find
//! decoding needs: defect parity and boundary contact.

/// Disjoint sets over vertex ids, tracking per-cluster defect parity
/// and whether the cluster has absorbed the open boundary.
#[derive(Debug, Clone)]
pub struct ClusterSet {
    parent: Vec<usize>,
    rank: Vec<u8>,
    /// Number of defects in the cluster rooted here (valid at roots).
    defects: Vec<u32>,
    /// Whether the cluster touches the boundary (valid at roots).
    boundary: Vec<bool>,
}

impl ClusterSet {
    /// `n` singleton clusters with no defects.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
            defects: vec![0; n],
            boundary: vec![false; n],
        }
    }

    /// Finds the cluster root of `v` (path halving).
    pub fn find(&mut self, mut v: usize) -> usize {
        while self.parent[v] != v {
            self.parent[v] = self.parent[self.parent[v]];
            v = self.parent[v];
        }
        v
    }

    /// Marks vertex `v` as a defect (detection event).
    pub fn add_defect(&mut self, v: usize) {
        let r = self.find(v);
        self.defects[r] += 1;
    }

    /// Marks the cluster of `v` as boundary-connected.
    pub fn touch_boundary(&mut self, v: usize) {
        let r = self.find(v);
        self.boundary[r] = true;
    }

    /// Merges the clusters of `a` and `b`; returns the new root.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        if self.rank[ra] < self.rank[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        if self.rank[ra] == self.rank[rb] {
            self.rank[ra] += 1;
        }
        self.defects[ra] += self.defects[rb];
        self.boundary[ra] |= self.boundary[rb];
        ra
    }

    /// Defect count of the cluster containing `v`.
    pub fn defect_count(&mut self, v: usize) -> u32 {
        let r = self.find(v);
        self.defects[r]
    }

    /// Whether the cluster containing `v` touches the boundary.
    pub fn touches_boundary(&mut self, v: usize) -> bool {
        let r = self.find(v);
        self.boundary[r]
    }

    /// A cluster is *satisfied* (stops growing) when its defect parity
    /// is even or it has reached the boundary.
    pub fn is_satisfied(&mut self, v: usize) -> bool {
        let r = self.find(v);
        self.defects[r].is_multiple_of(2) || self.boundary[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_their_own_roots() {
        let mut s = ClusterSet::new(4);
        for v in 0..4 {
            assert_eq!(s.find(v), v);
            assert!(s.is_satisfied(v), "no defects, trivially satisfied");
        }
    }

    #[test]
    fn defect_parity_tracks_unions() {
        let mut s = ClusterSet::new(4);
        s.add_defect(0);
        assert!(!s.is_satisfied(0), "odd cluster wants to grow");
        s.add_defect(1);
        s.union(0, 1);
        assert_eq!(s.defect_count(0), 2);
        assert!(s.is_satisfied(1), "even cluster is satisfied");
    }

    #[test]
    fn boundary_satisfies_odd_cluster() {
        let mut s = ClusterSet::new(3);
        s.add_defect(2);
        assert!(!s.is_satisfied(2));
        s.touch_boundary(2);
        assert!(s.is_satisfied(2));
        assert!(s.touches_boundary(2));
    }

    #[test]
    fn union_propagates_boundary_flag() {
        let mut s = ClusterSet::new(4);
        s.touch_boundary(0);
        s.add_defect(3);
        s.union(0, 3);
        assert!(s.is_satisfied(3));
        assert!(s.touches_boundary(0));
    }

    #[test]
    fn union_is_idempotent_on_same_cluster() {
        let mut s = ClusterSet::new(3);
        s.add_defect(0);
        s.union(0, 1);
        let r1 = s.union(0, 1);
        let r2 = s.union(1, 0);
        assert_eq!(r1, r2);
        assert_eq!(s.defect_count(0), 1);
    }
}
