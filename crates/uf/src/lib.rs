//! Union-Find decoding — the paper's "deeper decoder hierarchy"
//! extension (Sec. 8.1, future work 2).
//!
//! The paper proposes exploring a hierarchy of decoders between the
//! on-chip Clique predecoder and the exact off-chip MWPM matcher. The
//! natural middle tier is the Union-Find decoder (Delfosse–Nickerson):
//! almost-linear-time cluster growth plus peeling, markedly cheaper than
//! blossom matching at a modest accuracy cost. This crate implements it
//! from scratch on the same space-time detector graph the MWPM decoder
//! uses, and plugs it into the BTWC pipeline via
//! [`btwc_syndrome::ComplexDecoder`].
//!
//! Algorithm (standard):
//!
//! 1. every detection event seeds a cluster;
//! 2. clusters of **odd** defect parity that do not touch the open
//!    boundary grow by half an edge in every direction each step;
//!    fully-grown edges merge clusters (weighted union-find);
//! 3. once every cluster is even or boundary-connected, the grown edge
//!    set is treated as an erasure and **peeled**: a spanning forest is
//!    built and leaf edges are consumed inward, emitting a data-qubit
//!    flip whenever a leaf vertex holds a defect;
//! 4. temporal edges flip nothing (measurement errors), spatial edges
//!    flip their data qubit.
//!
//! # Example
//!
//! ```
//! use btwc_lattice::{StabilizerType, SurfaceCode};
//! use btwc_syndrome::RoundHistory;
//! use btwc_uf::UnionFindDecoder;
//!
//! let code = SurfaceCode::new(5);
//! let decoder = UnionFindDecoder::new(&code, StabilizerType::X);
//! let mut errors = vec![false; code.num_data_qubits()];
//! errors[12] = true;
//! let round = code.syndrome_of(StabilizerType::X, &errors);
//! let mut window = RoundHistory::new(round.len(), 4);
//! window.push(&round);
//! window.push(&round);
//! assert_eq!(decoder.decode_window(&window).qubits(), &[12]);
//! ```

mod decoder;
mod dsu;
mod graph;

pub use decoder::UnionFindDecoder;
pub use dsu::ClusterSet;
pub use graph::SpaceTimeGraph;
