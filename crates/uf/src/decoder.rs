//! Cluster growth and peeling.

use btwc_lattice::{DetectorGraph, StabilizerType, SurfaceCode};
use btwc_syndrome::ComplexDecoder;
use btwc_syndrome::{Correction, DetectionEvent, RoundHistory};

use crate::dsu::ClusterSet;
use crate::graph::SpaceTimeGraph;

/// The Union-Find decoder for one stabilizer type of one code.
///
/// Drop-in alternative to the exact MWPM matcher: almost-linear-time
/// decoding at a small accuracy cost, the natural middle tier of the
/// paper's proposed decoder hierarchy (Sec. 8.1). Implements
/// [`btwc_syndrome::ComplexDecoder`], so `BtwcDecoder::builder(...)
/// .complex_decoder(Box::new(uf))` swaps it in behind Clique.
#[derive(Debug, Clone)]
pub struct UnionFindDecoder {
    ty: StabilizerType,
    graph: DetectorGraph,
}

impl UnionFindDecoder {
    /// Builds the decoder for stabilizer type `ty` of `code`.
    #[must_use]
    pub fn new(code: &SurfaceCode, ty: StabilizerType) -> Self {
        Self { ty, graph: code.detector_graph(ty).clone() }
    }

    /// The stabilizer type served.
    #[must_use]
    pub fn stabilizer_type(&self) -> StabilizerType {
        self.ty
    }

    /// Decodes detection events observed over a `rounds`-round window.
    ///
    /// # Panics
    ///
    /// Panics if any event lies outside the window or references an
    /// unknown ancilla.
    #[must_use]
    pub fn decode_events(&self, events: &[DetectionEvent], rounds: usize) -> Correction {
        if events.is_empty() {
            return Correction::new();
        }
        let st = SpaceTimeGraph::new(&self.graph, rounds.max(1));
        let boundary = st.boundary();
        let mut clusters = ClusterSet::new(st.num_vertices());
        let mut is_defect = vec![false; st.num_vertices()];
        for ev in events {
            let v = st.vertex(ev.ancilla, ev.round);
            is_defect[v] = true;
            clusters.add_defect(v);
        }

        // --- Growth ---------------------------------------------------
        // support[e] in {0, 1, 2}; an edge joins the erasure at 2.
        let mut support = vec![0u8; st.edges().len()];
        loop {
            // An endpoint grows its edges iff its cluster is unsatisfied.
            let mut grew = false;
            let mut to_merge = Vec::new();
            for (ei, edge) in st.edges().iter().enumerate() {
                if support[ei] >= 2 {
                    continue;
                }
                let mut inc = 0u8;
                for v in [edge.u, edge.v] {
                    if v != boundary && !clusters.is_satisfied(v) {
                        inc += 1;
                    }
                }
                if inc == 0 {
                    continue;
                }
                grew = true;
                support[ei] = (support[ei] + inc).min(2);
                if support[ei] >= 2 {
                    to_merge.push(ei);
                }
            }
            for ei in to_merge {
                let edge = st.edges()[ei];
                if edge.v == boundary {
                    clusters.touch_boundary(edge.u);
                } else if edge.u == boundary {
                    clusters.touch_boundary(edge.v);
                } else {
                    clusters.union(edge.u, edge.v);
                }
            }
            if !grew {
                break;
            }
            // Terminate once every defect's cluster is satisfied.
            let all_done = events.iter().all(|ev| {
                let v = st.vertex(ev.ancilla, ev.round);
                clusters.is_satisfied(v)
            });
            if all_done {
                break;
            }
        }

        // --- Peeling ----------------------------------------------------
        // Spanning forest over the erasure (support == 2), rooted at the
        // boundary first so boundary-connected clusters drain into it.
        let n_v = st.num_vertices();
        let mut visited = vec![false; n_v];
        let mut parent_edge: Vec<Option<usize>> = vec![None; n_v];
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        let mut seeds: Vec<usize> = Vec::with_capacity(n_v);
        seeds.push(boundary);
        seeds.extend(0..n_v - 1);
        for seed in seeds {
            if visited[seed] {
                continue;
            }
            visited[seed] = true;
            queue.push_back(seed);
            while let Some(v) = queue.pop_front() {
                order.push(v);
                for &ei in st.incident(v) {
                    if support[ei] < 2 {
                        continue;
                    }
                    let edge = st.edges()[ei];
                    let w = if edge.u == v { edge.v } else { edge.u };
                    if !visited[w] {
                        visited[w] = true;
                        parent_edge[w] = Some(ei);
                        queue.push_back(w);
                    }
                }
            }
        }
        // Peel leaves inward (reverse BFS order).
        let mut flips = Vec::new();
        for &v in order.iter().rev() {
            if !is_defect[v] {
                continue;
            }
            let Some(ei) = parent_edge[v] else {
                // Root of a tree: parity must already be even here.
                debug_assert!(false, "unresolved defect at a forest root — growth incomplete");
                continue;
            };
            let edge = st.edges()[ei];
            let parent = if edge.u == v { edge.v } else { edge.u };
            if let Some(q) = edge.qubit {
                flips.push(q);
            }
            is_defect[v] = false;
            if parent != boundary {
                is_defect[parent] ^= true;
            }
        }
        Correction::from_flips(flips)
    }

    /// Decodes a window of raw measurement rounds.
    #[must_use]
    pub fn decode_window(&self, window: &RoundHistory) -> Correction {
        self.decode_events(&window.detection_events(), window.len())
    }
}

impl ComplexDecoder for UnionFindDecoder {
    fn decode_window(&self, window: &RoundHistory) -> Correction {
        UnionFindDecoder::decode_window(self, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_noise::{NoiseModel, PhenomenologicalNoise, SimRng};

    fn window_for(code: &SurfaceCode, errors: &[bool], rounds: usize) -> RoundHistory {
        let round = code.syndrome_of(StabilizerType::X, errors);
        let mut h = RoundHistory::new(round.len(), rounds.max(2));
        for _ in 0..rounds {
            h.push(&round);
        }
        h
    }

    #[test]
    fn empty_window_is_a_noop() {
        let code = SurfaceCode::new(5);
        let dec = UnionFindDecoder::new(&code, StabilizerType::X);
        let errors = vec![false; code.num_data_qubits()];
        assert!(dec.decode_window(&window_for(&code, &errors, 2)).is_empty());
    }

    #[test]
    fn every_single_error_is_corrected_equivalently() {
        for d in [3u16, 5, 7] {
            let code = SurfaceCode::new(d);
            let dec = UnionFindDecoder::new(&code, StabilizerType::X);
            for q in 0..code.num_data_qubits() {
                let mut errors = vec![false; code.num_data_qubits()];
                errors[q] = true;
                let c = dec.decode_window(&window_for(&code, &errors, 2));
                let mut residual = errors.clone();
                c.apply_to(&mut residual);
                assert!(
                    code.syndrome_of(StabilizerType::X, &residual).iter().all(|&s| !s),
                    "d={d} q={q}: residual syndrome"
                );
                assert!(
                    !code.is_logical_error(StabilizerType::X, &residual),
                    "d={d} q={q}: logical injected"
                );
            }
        }
    }

    #[test]
    fn measurement_error_produces_no_data_correction() {
        let code = SurfaceCode::new(5);
        let dec = UnionFindDecoder::new(&code, StabilizerType::X);
        let n_anc = code.num_ancillas(StabilizerType::X);
        let mut h = RoundHistory::new(n_anc, 8);
        let quiet = vec![false; n_anc];
        let mut flipped = quiet.clone();
        // Use an interior ancilla: its time-like pair should cost less
        // than two boundary exits.
        let g = code.detector_graph(StabilizerType::X);
        let interior = (0..n_anc).find(|&a| g.private_qubits(a).is_empty()).unwrap();
        flipped[interior] = true;
        h.push(&quiet);
        h.push(&flipped);
        h.push(&quiet);
        assert!(dec.decode_window(&h).is_empty());
    }

    #[test]
    fn chain_is_resolved_without_residual_syndrome() {
        let code = SurfaceCode::new(9);
        let dec = UnionFindDecoder::new(&code, StabilizerType::X);
        let mut errors = vec![false; code.num_data_qubits()];
        for row in 2..6u16 {
            errors[usize::from(row) * 9 + 4] = true;
        }
        let c = dec.decode_window(&window_for(&code, &errors, 2));
        let mut residual = errors.clone();
        c.apply_to(&mut residual);
        assert!(code.syndrome_of(StabilizerType::X, &residual).iter().all(|&s| !s));
    }

    #[test]
    fn corrections_always_cancel_the_syndrome_under_noise() {
        // The decoder's structural guarantee: whatever it returns must
        // explain the detection events (zero residual syndrome after a
        // closed window).
        let code = SurfaceCode::new(7);
        let ty = StabilizerType::X;
        let dec = UnionFindDecoder::new(&code, ty);
        let noise = PhenomenologicalNoise::uniform(1e-2);
        let mut rng = SimRng::from_seed(0xDF);
        let n_anc = code.num_ancillas(ty);
        for _ in 0..150 {
            let mut errors = vec![false; code.num_data_qubits()];
            let mut meas = vec![false; n_anc];
            let mut h = RoundHistory::new(n_anc, 8);
            for _ in 0..7 {
                noise.sample_data_into(&mut rng, &mut errors);
                noise.sample_measurement_into(&mut rng, &mut meas);
                let mut round = code.syndrome_of(ty, &errors);
                for (r, &m) in round.iter_mut().zip(&meas) {
                    *r ^= m;
                }
                h.push(&round);
            }
            h.push(&code.syndrome_of(ty, &errors)); // perfect readout
            let c = dec.decode_window(&h);
            let mut residual = errors.clone();
            c.apply_to(&mut residual);
            assert!(
                code.syndrome_of(ty, &residual).iter().all(|&s| !s),
                "residual syndrome after UF decode"
            );
        }
    }

    #[test]
    fn low_weight_errors_never_cause_logical_failure() {
        // Delfosse–Nickerson guarantee: weight <= (d-1)/2 is corrected.
        for d in [3u16, 5, 7] {
            let code = SurfaceCode::new(d);
            let dec = UnionFindDecoder::new(&code, StabilizerType::X);
            let t = usize::from((d - 1) / 2);
            let mut rng = SimRng::from_seed(0xFACE + u64::from(d));
            for _ in 0..300 {
                let mut errors = vec![false; code.num_data_qubits()];
                for _ in 0..t {
                    errors[rng.below(code.num_data_qubits())] = true;
                }
                let c = dec.decode_window(&window_for(&code, &errors, 2));
                let mut residual = errors.clone();
                c.apply_to(&mut residual);
                assert!(code.syndrome_of(StabilizerType::X, &residual).iter().all(|&s| !s));
                assert!(
                    !code.is_logical_error(StabilizerType::X, &residual),
                    "d={d}: low-weight error mis-decoded: {errors:?}"
                );
            }
        }
    }

    #[test]
    fn plugs_into_the_btwc_pipeline() {
        use btwc_core::{BtwcDecoder, BtwcOutcome, DecoderBackend};
        let code = SurfaceCode::new(7);
        let mut dec = BtwcDecoder::builder(&code, StabilizerType::X)
            .backend(DecoderBackend::UnionFind)
            .build();
        let mut errors = vec![false; code.num_data_qubits()];
        errors[3 * 7 + 3] = true;
        errors[4 * 7 + 3] = true; // interior chain -> complex
        let round = code.syndrome_of(StabilizerType::X, &errors);
        let _ = dec.process_round(&round);
        let out = dec.process_round(&round);
        assert!(matches!(out, BtwcOutcome::OffChip(_)));
        let c = out.correction().unwrap();
        let mut residual = errors.clone();
        c.apply_to(&mut residual);
        assert!(code.syndrome_of(StabilizerType::X, &residual).iter().all(|&s| !s));
    }
}
