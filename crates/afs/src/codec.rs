//! The three AFS compression schemes and the dynamic selector.

use btwc_syndrome::Syndrome;

use crate::bits::{index_width, BitReader, BitWriter};

/// A lossless per-cycle syndrome compressor.
///
/// Every implementation must satisfy `decode(encode(s)) == s` for any
/// syndrome of the configured width; the property tests enforce this.
pub trait Compressor {
    /// Syndrome width this codec was configured for.
    fn width(&self) -> usize;

    /// Encodes one syndrome into a bit stream.
    fn encode(&self, syndrome: &Syndrome) -> Vec<bool>;

    /// Decodes a bit stream produced by [`Compressor::encode`].
    fn decode(&self, bits: &[bool]) -> Syndrome;

    /// Convenience: encoded size in bits.
    fn encoded_len(&self, syndrome: &Syndrome) -> usize {
        self.encode(syndrome).len()
    }
}

/// AFS *Sparse Representation*: a flag bit, then (if non-zero) a count
/// field and one `⌈log₂N⌉`-bit index per lit ancilla.
///
/// This is the scheme the paper quotes as AFS's most effective
/// (`1 + O(k·log N)` bits) and the one Fig. 13 compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseRepr {
    width: usize,
}

impl SparseRepr {
    /// Codec for `width`-bit syndromes.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "syndrome width must be positive");
        Self { width }
    }
}

impl Compressor for SparseRepr {
    fn width(&self) -> usize {
        self.width
    }

    fn encode(&self, syndrome: &Syndrome) -> Vec<bool> {
        assert_eq!(syndrome.len(), self.width, "syndrome width mismatch");
        let mut w = BitWriter::new();
        if syndrome.is_zero() {
            w.push_bit(false);
            return w.into_bits();
        }
        w.push_bit(true);
        let iw = index_width(self.width);
        let cw = index_width(self.width + 1);
        w.push_uint(syndrome.weight() as u64, cw);
        for i in syndrome.iter_set() {
            w.push_uint(i as u64, iw);
        }
        w.into_bits()
    }

    fn decode(&self, bits: &[bool]) -> Syndrome {
        let mut r = BitReader::new(bits);
        let mut s = Syndrome::new(self.width);
        if !r.read_bit() {
            return s;
        }
        let cw = index_width(self.width + 1);
        let iw = index_width(self.width);
        let k = r.read_uint(cw) as usize;
        for _ in 0..k {
            let i = r.read_uint(iw) as usize;
            s.set(i, true);
        }
        s
    }
}

/// Run-length scheme: the syndrome is serialized as alternating run
/// lengths of zeros and ones, each a fixed-width counter; degenerates
/// gracefully on dense syndromes, wins on long quiet stretches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLength {
    width: usize,
}

impl RunLength {
    /// Codec for `width`-bit syndromes.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "syndrome width must be positive");
        Self { width }
    }
}

impl Compressor for RunLength {
    fn width(&self) -> usize {
        self.width
    }

    fn encode(&self, syndrome: &Syndrome) -> Vec<bool> {
        assert_eq!(syndrome.len(), self.width, "syndrome width mismatch");
        // Runs always start with the zero symbol; a leading one-run is a
        // zero-length zero-run.
        let rw = index_width(self.width + 1);
        let mut w = BitWriter::new();
        let mut current = false;
        let mut run = 0u64;
        for i in 0..self.width {
            if syndrome.get(i) == current {
                run += 1;
            } else {
                w.push_uint(run, rw);
                current = !current;
                run = 1;
            }
        }
        w.push_uint(run, rw);
        w.into_bits()
    }

    fn decode(&self, bits: &[bool]) -> Syndrome {
        let rw = index_width(self.width + 1);
        let mut r = BitReader::new(bits);
        let mut s = Syndrome::new(self.width);
        let mut pos = 0usize;
        let mut symbol = false;
        while pos < self.width {
            let run = r.read_uint(rw) as usize;
            if symbol {
                for i in pos..pos + run {
                    s.set(i, true);
                }
            }
            pos += run;
            symbol = !symbol;
        }
        s
    }
}

/// The identity scheme: ship the syndrome verbatim (`N` bits). The
/// fallback AFS uses when compression would expand the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawRepr {
    width: usize,
}

impl RawRepr {
    /// Codec for `width`-bit syndromes.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "syndrome width must be positive");
        Self { width }
    }
}

impl Compressor for RawRepr {
    fn width(&self) -> usize {
        self.width
    }

    fn encode(&self, syndrome: &Syndrome) -> Vec<bool> {
        assert_eq!(syndrome.len(), self.width, "syndrome width mismatch");
        syndrome.to_bools()
    }

    fn decode(&self, bits: &[bool]) -> Syndrome {
        assert_eq!(bits.len(), self.width, "raw stream width mismatch");
        Syndrome::from_bits(bits.to_vec())
    }
}

/// AFS's dynamic selection: encode with all three schemes, ship the
/// shortest, prefixed by a 2-bit scheme tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicCompressor {
    sparse: SparseRepr,
    rle: RunLength,
    raw: RawRepr,
}

impl DynamicCompressor {
    /// Codec for `width`-bit syndromes.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn new(width: usize) -> Self {
        Self {
            sparse: SparseRepr::new(width),
            rle: RunLength::new(width),
            raw: RawRepr::new(width),
        }
    }
}

impl Compressor for DynamicCompressor {
    fn width(&self) -> usize {
        self.raw.width()
    }

    fn encode(&self, syndrome: &Syndrome) -> Vec<bool> {
        let candidates = [
            (0u64, self.sparse.encode(syndrome)),
            (1u64, self.rle.encode(syndrome)),
            (2u64, self.raw.encode(syndrome)),
        ];
        let (tag, best) =
            candidates.into_iter().min_by_key(|(_, bits)| bits.len()).expect("three candidates");
        let mut w = BitWriter::new();
        w.push_uint(tag, 2);
        let mut out = w.into_bits();
        out.extend(best);
        out
    }

    fn decode(&self, bits: &[bool]) -> Syndrome {
        let mut r = BitReader::new(bits);
        let tag = r.read_uint(2);
        let rest = &bits[2..];
        match tag {
            0 => self.sparse.decode(rest),
            1 => self.rle.decode(rest),
            2 => self.raw.decode(rest),
            other => panic!("unknown scheme tag {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_noise::SimRng;

    fn random_syndrome(rng: &mut SimRng, n: usize, p: f64) -> Syndrome {
        (0..n).map(|_| rng.bernoulli(p)).collect()
    }

    fn roundtrip<C: Compressor>(codec: &C, s: &Syndrome) {
        let bits = codec.encode(s);
        assert_eq!(&codec.decode(&bits), s, "lossless roundtrip violated");
    }

    #[test]
    fn sparse_all_zero_is_one_bit() {
        let codec = SparseRepr::new(40);
        let s = Syndrome::new(40);
        assert_eq!(codec.encoded_len(&s), 1);
        roundtrip(&codec, &s);
    }

    #[test]
    fn sparse_cost_grows_with_k() {
        let codec = SparseRepr::new(64);
        let mut prev = 0;
        for k in 1..6 {
            let mut s = Syndrome::new(64);
            for i in 0..k {
                s.set(i * 7, true);
            }
            let len = codec.encoded_len(&s);
            assert!(len > prev, "cost must grow with weight");
            prev = len;
            roundtrip(&codec, &s);
        }
        // k lit bits cost 1 + count + k*log2(64).
        let mut s = Syndrome::new(64);
        s.set(5, true);
        s.set(9, true);
        assert_eq!(codec.encoded_len(&s), 1 + 7 + 2 * 6);
    }

    #[test]
    fn sparse_dense_syndrome_expands_beyond_raw() {
        // The paper's point: AFS compression backfires on dense signatures.
        let codec = SparseRepr::new(32);
        let s: Syndrome = (0..32).map(|i| i % 2 == 0).collect();
        assert!(codec.encoded_len(&s) > 32);
        roundtrip(&codec, &s);
    }

    #[test]
    fn rle_roundtrips_edge_patterns() {
        let codec = RunLength::new(16);
        for pattern in [
            vec![false; 16],
            vec![true; 16],
            (0..16).map(|i| i % 2 == 0).collect::<Vec<_>>(),
            (0..16).map(|i| i < 8).collect::<Vec<_>>(),
            (0..16).map(|i| i == 15).collect::<Vec<_>>(),
            (0..16).map(|i| i == 0).collect::<Vec<_>>(),
        ] {
            roundtrip(&codec, &Syndrome::from_bits(pattern));
        }
    }

    #[test]
    fn raw_is_identity_width() {
        let codec = RawRepr::new(24);
        let mut rng = SimRng::from_seed(5);
        let s = random_syndrome(&mut rng, 24, 0.3);
        assert_eq!(codec.encoded_len(&s), 24);
        roundtrip(&codec, &s);
    }

    #[test]
    fn dynamic_never_worse_than_raw_plus_tag() {
        let codec = DynamicCompressor::new(48);
        let mut rng = SimRng::from_seed(77);
        for p in [0.0, 0.01, 0.1, 0.5, 0.9] {
            for _ in 0..200 {
                let s = random_syndrome(&mut rng, 48, p);
                let len = codec.encoded_len(&s);
                assert!(len <= 48 + 2, "dynamic len {len} worse than raw");
                roundtrip(&codec, &s);
            }
        }
    }

    #[test]
    fn all_codecs_roundtrip_random_syndromes() {
        let n = 60;
        let sparse = SparseRepr::new(n);
        let rle = RunLength::new(n);
        let raw = RawRepr::new(n);
        let dynamic = DynamicCompressor::new(n);
        let mut rng = SimRng::from_seed(31337);
        for _ in 0..500 {
            let p = rng.uniform();
            let s = random_syndrome(&mut rng, n, p);
            roundtrip(&sparse, &s);
            roundtrip(&rle, &s);
            roundtrip(&raw, &s);
            roundtrip(&dynamic, &s);
        }
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = SparseRepr::new(0);
    }
}
