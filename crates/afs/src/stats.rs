//! Bandwidth accounting for the Fig. 13 comparison.

/// Accumulates per-cycle off-chip bit counts and reports average
/// reduction factors relative to shipping the raw syndrome every cycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompressionStats {
    cycles: u64,
    total_bits: u64,
    raw_bits_per_cycle: u64,
}

impl CompressionStats {
    /// Stats for a stream whose uncompressed cost is
    /// `raw_bits_per_cycle` bits each cycle.
    ///
    /// # Panics
    ///
    /// Panics if `raw_bits_per_cycle == 0`.
    #[must_use]
    pub fn new(raw_bits_per_cycle: u64) -> Self {
        assert!(raw_bits_per_cycle > 0, "raw bits per cycle must be positive");
        Self { cycles: 0, total_bits: 0, raw_bits_per_cycle }
    }

    /// Records one cycle that shipped `bits` bits off-chip.
    pub fn record(&mut self, bits: u64) {
        self.cycles += 1;
        self.total_bits += bits;
    }

    /// Number of cycles recorded.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Mean off-chip bits per cycle.
    ///
    /// # Panics
    ///
    /// Panics if no cycles were recorded.
    #[must_use]
    pub fn mean_bits(&self) -> f64 {
        assert!(self.cycles > 0, "no cycles recorded");
        self.total_bits as f64 / self.cycles as f64
    }

    /// Average off-chip data reduction factor (raw / compressed); this
    /// is the quantity on Fig. 13's y-axis. Returns `f64::INFINITY` when
    /// no bits were ever shipped.
    ///
    /// # Panics
    ///
    /// Panics if no cycles were recorded.
    #[must_use]
    pub fn reduction_factor(&self) -> f64 {
        assert!(self.cycles > 0, "no cycles recorded");
        if self.total_bits == 0 {
            return f64::INFINITY;
        }
        (self.raw_bits_per_cycle * self.cycles) as f64 / self.total_bits as f64
    }

    /// Merges another accumulator (e.g. from a worker thread).
    ///
    /// # Panics
    ///
    /// Panics if the raw widths differ.
    pub fn merge(&mut self, other: &CompressionStats) {
        assert_eq!(
            self.raw_bits_per_cycle, other.raw_bits_per_cycle,
            "cannot merge stats with different raw widths"
        );
        self.cycles += other.cycles;
        self.total_bits += other.total_bits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_factor_basic() {
        let mut s = CompressionStats::new(100);
        s.record(10);
        s.record(30);
        assert_eq!(s.cycles(), 2);
        assert!((s.mean_bits() - 20.0).abs() < 1e-12);
        // 200 raw bits over 2 cycles vs 40 shipped bits = 5x.
        assert!((s.reduction_factor() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_traffic_is_infinite_reduction() {
        let mut s = CompressionStats::new(64);
        s.record(0);
        s.record(0);
        assert!(s.reduction_factor().is_infinite());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CompressionStats::new(10);
        a.record(5);
        let mut b = CompressionStats::new(10);
        b.record(15);
        a.merge(&b);
        assert_eq!(a.cycles(), 2);
        assert!((a.mean_bits() - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no cycles recorded")]
    fn mean_requires_cycles() {
        let s = CompressionStats::new(10);
        let _ = s.mean_bits();
    }

    #[test]
    #[should_panic(expected = "different raw widths")]
    fn merge_rejects_width_mismatch() {
        let mut a = CompressionStats::new(10);
        let b = CompressionStats::new(20);
        a.merge(&b);
    }
}
