//! AFS-style syndrome compression — the off-chip-bandwidth baseline.
//!
//! AFS (Das et al., HPCA 2022) reduces decode I/O by compressing each
//! cycle's syndrome before it crosses the refrigerator boundary. The
//! paper compares Clique against AFS's most effective scheme, *Sparse
//! Representation* (Sec. 7.2 / Fig. 13): one flag bit for the all-zero
//! case, otherwise explicit indices for every non-zero bit, which costs
//! `1 + O(k·log N)` bits and degrades quickly as the error rate or code
//! distance grows.
//!
//! This crate implements the full baseline: a real bit-level encoder /
//! decoder for sparse representation, a run-length scheme, the raw
//! fallback, and AFS's dynamic best-of-N selection, plus the statistics
//! accumulator that feeds the Fig. 13 comparison.
//!
//! # Example
//!
//! ```
//! use btwc_afs::{Compressor, SparseRepr};
//! use btwc_syndrome::Syndrome;
//!
//! let mut syndrome = Syndrome::new(24);
//! syndrome.set(5, true);
//! let codec = SparseRepr::new(24);
//! let bits = codec.encode(&syndrome);
//! assert!(bits.len() < 24, "one lit bit compresses well");
//! assert_eq!(codec.decode(&bits), syndrome);
//! ```

mod bits;
mod codec;
mod stats;

pub use bits::{BitReader, BitWriter};
pub use codec::{Compressor, DynamicCompressor, RawRepr, RunLength, SparseRepr};
pub use stats::CompressionStats;
