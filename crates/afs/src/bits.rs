//! Minimal bit-level I/O used by the compression codecs.

/// Append-only bit buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    bits: Vec<bool>,
}

impl BitWriter {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        self.bits.push(bit);
    }

    /// Appends the low `width` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` does not fit in `width` bits.
    pub fn push_uint(&mut self, value: u64, width: usize) {
        assert!(width <= 64, "width {width} exceeds u64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            self.bits.push((value >> i) & 1 == 1);
        }
    }

    /// Number of bits written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Consumes the writer, returning the bit vector.
    #[must_use]
    pub fn into_bits(self) -> Vec<bool> {
        self.bits
    }
}

/// Sequential reader over an encoded bit vector.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bits: &'a [bool],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Starts reading at the first bit.
    #[must_use]
    pub fn new(bits: &'a [bool]) -> Self {
        Self { bits, pos: 0 }
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics on exhausted input.
    pub fn read_bit(&mut self) -> bool {
        assert!(self.pos < self.bits.len(), "bit stream exhausted");
        let b = self.bits[self.pos];
        self.pos += 1;
        b
    }

    /// Reads a `width`-bit unsigned integer (most significant first).
    ///
    /// # Panics
    ///
    /// Panics on exhausted input or `width > 64`.
    pub fn read_uint(&mut self, width: usize) -> u64 {
        assert!(width <= 64, "width {width} exceeds u64");
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | u64::from(self.read_bit());
        }
        v
    }

    /// Bits remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }
}

/// Number of bits needed to represent values in `[0, n)` (at least 1).
#[must_use]
pub fn index_width(n: usize) -> usize {
    if n <= 1 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        w.push_bit(true);
        w.push_bit(false);
        w.push_bit(true);
        let bits = w.into_bits();
        let mut r = BitReader::new(&bits);
        assert!(r.read_bit());
        assert!(!r.read_bit());
        assert!(r.read_bit());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn uint_roundtrip() {
        let mut w = BitWriter::new();
        w.push_uint(0b1011, 4);
        w.push_uint(7, 3);
        w.push_uint(0, 1);
        let bits = w.into_bits();
        assert_eq!(bits.len(), 8);
        let mut r = BitReader::new(&bits);
        assert_eq!(r.read_uint(4), 0b1011);
        assert_eq!(r.read_uint(3), 7);
        assert_eq!(r.read_uint(1), 0);
    }

    #[test]
    fn index_width_values() {
        assert_eq!(index_width(0), 1);
        assert_eq!(index_width(1), 1);
        assert_eq!(index_width(2), 1);
        assert_eq!(index_width(3), 2);
        assert_eq!(index_width(4), 2);
        assert_eq!(index_width(5), 3);
        assert_eq!(index_width(256), 8);
        assert_eq!(index_width(257), 9);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn push_uint_checks_width() {
        let mut w = BitWriter::new();
        w.push_uint(8, 3);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn reader_panics_past_end() {
        let bits = [true];
        let mut r = BitReader::new(&bits);
        let _ = r.read_bit();
        let _ = r.read_bit();
    }
}
