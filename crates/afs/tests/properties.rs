//! Property-based tests: every codec is lossless on arbitrary syndromes
//! and the dynamic selector is never beaten by its own candidates.

use btwc_afs::{Compressor, DynamicCompressor, RawRepr, RunLength, SparseRepr};
use btwc_syndrome::Syndrome;
use proptest::prelude::*;

fn syndrome_strategy() -> impl Strategy<Value = Syndrome> {
    (1usize..80).prop_flat_map(|n| {
        proptest::collection::vec(any::<bool>(), n).prop_map(Syndrome::from_bits)
    })
}

proptest! {
    #[test]
    fn sparse_roundtrips(s in syndrome_strategy()) {
        let codec = SparseRepr::new(s.len());
        prop_assert_eq!(codec.decode(&codec.encode(&s)), s);
    }

    #[test]
    fn rle_roundtrips(s in syndrome_strategy()) {
        let codec = RunLength::new(s.len());
        prop_assert_eq!(codec.decode(&codec.encode(&s)), s);
    }

    #[test]
    fn raw_roundtrips(s in syndrome_strategy()) {
        let codec = RawRepr::new(s.len());
        prop_assert_eq!(codec.decode(&codec.encode(&s)), s);
    }

    #[test]
    fn dynamic_roundtrips_and_wins(s in syndrome_strategy()) {
        let n = s.len();
        let dynamic = DynamicCompressor::new(n);
        let bits = dynamic.encode(&s);
        prop_assert_eq!(dynamic.decode(&bits), s.clone());
        // The dynamic pick is the best candidate plus the 2-bit tag.
        let best = [
            SparseRepr::new(n).encoded_len(&s),
            RunLength::new(n).encoded_len(&s),
            RawRepr::new(n).encoded_len(&s),
        ]
        .into_iter()
        .min()
        .unwrap();
        prop_assert_eq!(bits.len(), best + 2);
    }

    /// AFS's structural weakness from the paper: sparse-representation
    /// cost is monotone in syndrome weight for fixed width.
    #[test]
    fn sparse_cost_is_monotone_in_weight(n in 4usize..64, w in 0usize..16) {
        let w = w.min(n - 1);
        let codec = SparseRepr::new(n);
        let mut light = Syndrome::new(n);
        let mut heavy = Syndrome::new(n);
        for i in 0..w {
            light.set(i, true);
            heavy.set(i, true);
        }
        heavy.set(w, true);
        prop_assert!(codec.encoded_len(&heavy) > codec.encoded_len(&light));
    }
}
