//! Lookup-table decoding for small code distances — the LILLIPUT-style
//! baseline the paper's related work discusses (Das et al., "LILLIPUT:
//! a lightweight low-latency lookup-table based decoder").
//!
//! For small distances the whole per-round syndrome space is
//! enumerable: `2^((d²-1)/2)` entries (4096 at d = 5). This crate builds
//! the table once — decoding *every* possible syndrome with the exact
//! MWPM matcher — and then answers per-round decodes with a single
//! indexed load. It serves two roles in the workspace:
//!
//! * a related-work baseline with genuinely O(1) decode latency, for the
//!   hierarchy ablations;
//! * an exhaustive cross-check: building the table *proves* the MWPM
//!   decoder terminates and produces syndrome-consistent corrections on
//!   every one of the `2^n` inputs (see this crate's tests).
//!
//! Like the hardware LILLIPUT, the table covers a single round and
//! therefore does not handle measurement errors; callers needing
//! temporal robustness put it behind a sticky filter or use it as the
//! final-readout cleanup stage.
//!
//! # Example
//!
//! ```
//! use btwc_lattice::{StabilizerType, SurfaceCode};
//! use btwc_lut::LutDecoder;
//! use btwc_syndrome::Syndrome;
//!
//! let code = SurfaceCode::new(3);
//! let lut = LutDecoder::build(&code, StabilizerType::X);
//! let mut errors = vec![false; code.num_data_qubits()];
//! errors[4] = true;
//! let syndrome = Syndrome::from_bits(code.syndrome_of(StabilizerType::X, &errors));
//! assert_eq!(lut.decode(&syndrome).qubits(), &[4]);
//! ```

use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_mwpm::MwpmDecoder;
use btwc_syndrome::ComplexDecoder;
use btwc_syndrome::{Correction, DetectionEvent, RoundHistory, Syndrome};

/// Maximum supported syndrome width (table size `2^24` ≈ 16M entries).
pub const MAX_LUT_BITS: usize = 24;

/// A fully materialized single-round decoder table.
#[derive(Debug, Clone)]
pub struct LutDecoder {
    ty: StabilizerType,
    bits: usize,
    table: Vec<Correction>,
}

impl LutDecoder {
    /// Builds the table for stabilizer type `ty` of `code` by decoding
    /// every possible syndrome with the exact MWPM matcher.
    ///
    /// # Panics
    ///
    /// Panics if the code has more than [`MAX_LUT_BITS`] ancillas of
    /// this type (d ≤ 7 fits; beyond that the table is impractical,
    /// which is exactly the paper's argument for Clique).
    #[must_use]
    pub fn build(code: &SurfaceCode, ty: StabilizerType) -> Self {
        let bits = code.num_ancillas(ty);
        assert!(
            bits <= MAX_LUT_BITS,
            "lookup table for {bits} syndrome bits is impractical (max {MAX_LUT_BITS})"
        );
        let mwpm = MwpmDecoder::new(code, ty);
        let table = (0..1usize << bits)
            .map(|pattern| {
                let events: Vec<DetectionEvent> = (0..bits)
                    .filter(|i| (pattern >> i) & 1 == 1)
                    .map(|ancilla| DetectionEvent { ancilla, round: 0 })
                    .collect();
                mwpm.decode_events(&events)
            })
            .collect();
        Self { ty, bits, table }
    }

    /// The stabilizer type served.
    #[must_use]
    pub fn stabilizer_type(&self) -> StabilizerType {
        self.ty
    }

    /// Syndrome width.
    #[must_use]
    pub fn syndrome_bits(&self) -> usize {
        self.bits
    }

    /// Number of table entries (`2^bits`).
    #[must_use]
    pub fn table_entries(&self) -> usize {
        self.table.len()
    }

    /// Total stored correction qubits — a proxy for the table's memory
    /// footprint, the LILLIPUT scalability limit.
    #[must_use]
    pub fn table_weight(&self) -> usize {
        self.table.iter().map(Correction::weight).sum()
    }

    /// O(1) decode of one syndrome round.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome width does not match.
    #[must_use]
    pub fn decode(&self, syndrome: &Syndrome) -> Correction {
        assert_eq!(syndrome.len(), self.bits, "syndrome width mismatch");
        let mut idx = 0usize;
        for i in syndrome.iter_set() {
            idx |= 1 << i;
        }
        self.table[idx].clone()
    }
}

impl ComplexDecoder for LutDecoder {
    /// Window decoding via the final effective round: the XOR of all
    /// detection events per ancilla (equivalently the latest raw round
    /// relative to the window baseline).
    fn decode_window(&self, window: &RoundHistory) -> Correction {
        let mut effective = Syndrome::new(self.bits);
        for ev in window.detection_events() {
            effective.set(ev.ancilla, !effective.get(ev.ancilla));
        }
        self.decode(&effective)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d3_table_has_16_entries() {
        let code = SurfaceCode::new(3);
        let lut = LutDecoder::build(&code, StabilizerType::X);
        assert_eq!(lut.syndrome_bits(), 4);
        assert_eq!(lut.table_entries(), 16);
        assert!(lut.table_weight() > 0);
    }

    #[test]
    fn zero_syndrome_decodes_to_nothing() {
        let code = SurfaceCode::new(3);
        let lut = LutDecoder::build(&code, StabilizerType::X);
        assert!(lut.decode(&Syndrome::new(4)).is_empty());
    }

    #[test]
    fn every_entry_reproduces_its_syndrome() {
        // Exhaustive soundness: for all 2^n syndromes, the stored
        // correction must produce exactly that syndrome.
        for d in [3u16, 5] {
            let code = SurfaceCode::new(d);
            let ty = StabilizerType::X;
            let lut = LutDecoder::build(&code, ty);
            let n = lut.syndrome_bits();
            for pattern in 0..lut.table_entries() {
                let syndrome: Syndrome = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
                let c = lut.decode(&syndrome);
                let mut errors = vec![false; code.num_data_qubits()];
                c.apply_to(&mut errors);
                let produced = code.syndrome_of(ty, &errors);
                for (i, &bit) in produced.iter().enumerate() {
                    assert_eq!(bit, syndrome.get(i), "d={d} pattern={pattern} bit {i}");
                }
            }
        }
    }

    #[test]
    fn lut_matches_mwpm_per_round() {
        let code = SurfaceCode::new(5);
        let ty = StabilizerType::X;
        let lut = LutDecoder::build(&code, ty);
        let mwpm = MwpmDecoder::new(&code, ty);
        // All single- and double-error syndromes agree exactly.
        for q in 0..code.num_data_qubits() {
            let mut errors = vec![false; code.num_data_qubits()];
            errors[q] = true;
            let syndrome = Syndrome::from_bits(code.syndrome_of(ty, &errors));
            let events: Vec<DetectionEvent> =
                syndrome.iter_set().map(|ancilla| DetectionEvent { ancilla, round: 0 }).collect();
            assert_eq!(lut.decode(&syndrome), mwpm.decode_events(&events), "qubit {q}");
        }
    }

    #[test]
    fn plugs_into_btwc_pipeline_as_complex_tier() {
        use btwc_core::{BtwcDecoder, BtwcOutcome, DecoderBackend};
        let code = SurfaceCode::new(5);
        let mut dec =
            BtwcDecoder::builder(&code, StabilizerType::X).backend(DecoderBackend::Lut).build();
        let mut errors = vec![false; code.num_data_qubits()];
        errors[5 + 2] = true;
        errors[2 * 5 + 2] = true; // interior chain => complex
        let round = code.syndrome_of(StabilizerType::X, &errors);
        let _ = dec.process_round(&round);
        let out = dec.process_round(&round);
        assert!(matches!(out, BtwcOutcome::OffChip(_)));
        let mut residual = errors.clone();
        out.correction().unwrap().apply_to(&mut residual);
        assert!(code.syndrome_of(StabilizerType::X, &residual).iter().all(|&s| !s));
    }

    #[test]
    #[should_panic(expected = "impractical")]
    fn large_distance_rejected() {
        let code = SurfaceCode::new(9);
        let _ = LutDecoder::build(&code, StabilizerType::X);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_rejected() {
        let code = SurfaceCode::new(3);
        let lut = LutDecoder::build(&code, StabilizerType::X);
        let _ = lut.decode(&Syndrome::new(7));
    }
}
