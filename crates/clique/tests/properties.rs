#![allow(clippy::needless_range_loop)]

//! Property-based tests of the Clique decision logic.

use btwc_clique::{CliqueDecision, CliqueDecoder};
use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_syndrome::Syndrome;
use proptest::prelude::*;

proptest! {
    /// Whenever Clique declares a syndrome trivial, its correction must
    /// exactly reproduce that syndrome — for *any* bit pattern, not just
    /// realizable ones. This is the Fig. 5 pseudocode's soundness.
    #[test]
    fn trivial_corrections_explain_the_syndrome(
        d in prop_oneof![Just(3u16), Just(5), Just(7)],
        seed in proptest::collection::vec(proptest::bool::weighted(0.15), 60),
    ) {
        let code = SurfaceCode::new(d);
        let decoder = CliqueDecoder::new(&code, StabilizerType::X);
        let n = decoder.num_cliques();
        let syndrome = Syndrome::from_bits(seed[..n].to_vec());
        if let CliqueDecision::Trivial(c) = decoder.decode(&syndrome) {
            let mut errors = vec![false; code.num_data_qubits()];
            c.apply_to(&mut errors);
            let produced = code.syndrome_of(StabilizerType::X, &errors);
            for i in 0..n {
                prop_assert_eq!(produced[i], syndrome.get(i), "ancilla {}", i);
            }
        }
    }

    /// The decision is a pure function (same syndrome, same answer) and
    /// the per-clique gate flags agree with it.
    #[test]
    fn decision_is_pure_and_matches_gate_flags(
        d in prop_oneof![Just(3u16), Just(5)],
        bits in proptest::collection::vec(any::<bool>(), 60),
    ) {
        let code = SurfaceCode::new(d);
        let decoder = CliqueDecoder::new(&code, StabilizerType::X);
        let n = decoder.num_cliques();
        let syndrome = Syndrome::from_bits(bits[..n].to_vec());
        let first = decoder.decode(&syndrome);
        prop_assert_eq!(&decoder.decode(&syndrome), &first);
        let any_flag = (0..n).any(|a| decoder.complex_flag(a, &syndrome));
        prop_assert_eq!(any_flag, matches!(first, CliqueDecision::Complex));
    }

    /// Monotone extension: clearing a lit ancilla from an AllZeros-or-
    /// Trivial syndrome never produces Complex out of nothing when the
    /// syndrome becomes empty.
    #[test]
    fn empty_is_always_all_zeros(d in prop_oneof![Just(3u16), Just(5), Just(7)]) {
        let code = SurfaceCode::new(d);
        let decoder = CliqueDecoder::new(&code, StabilizerType::X);
        let syndrome = Syndrome::new(decoder.num_cliques());
        prop_assert_eq!(decoder.decode(&syndrome), CliqueDecision::AllZeros);
    }
}
