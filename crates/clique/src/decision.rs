//! Decoder outputs: decisions and corrections.

pub use btwc_syndrome::Correction;

/// Outcome of a Clique decode for one filtered syndrome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliqueDecision {
    /// All syndrome bits are zero; nothing to do (paper: the >90% common
    /// case at practical error rates).
    AllZeros,
    /// Every active clique has trivially decodable structure; apply this
    /// correction on-chip and do not go off-chip.
    Trivial(Correction),
    /// At least one active clique has even, non-special neighborhood
    /// parity; the syndrome must be shipped to the off-chip decoder.
    Complex,
}

impl CliqueDecision {
    /// Whether this decision keeps the decode on-chip.
    #[must_use]
    pub fn is_on_chip(&self) -> bool {
        !matches!(self, CliqueDecision::Complex)
    }

    /// The correction, if one was produced.
    #[must_use]
    pub fn correction(&self) -> Option<&Correction> {
        match self {
            CliqueDecision::Trivial(c) => Some(c),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_helpers() {
        assert!(CliqueDecision::AllZeros.is_on_chip());
        assert!(CliqueDecision::Trivial(Correction::new()).is_on_chip());
        assert!(!CliqueDecision::Complex.is_on_chip());
        assert!(CliqueDecision::Complex.correction().is_none());
        let d = CliqueDecision::Trivial(Correction::from_flips(vec![1]));
        assert_eq!(d.correction().unwrap().qubits(), &[1]);
    }
}
