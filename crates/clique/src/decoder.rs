//! The combinational Clique decision and correction logic.

use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_syndrome::Syndrome;

use crate::decision::{CliqueDecision, Correction};

/// Precomputed clique structure for one ancilla.
#[derive(Debug, Clone)]
struct CliqueSite {
    /// Same-type neighbor ancillas and the data qubit shared with each.
    neighbors: Vec<(usize, usize)>,
    /// A boundary data qubit seen only by this ancilla, if any (the
    /// Fig. 5 corner/edge special case). When several exist they are
    /// stabilizer-equivalent; the lowest index is kept.
    private_qubit: Option<usize>,
}

/// The Clique decoder for one stabilizer type of one code.
///
/// This is the *behavioral* model of the paper's Fig. 5/6 hardware: all
/// state is precomputed geometry, and [`CliqueDecoder::decode`] is a pure
/// function of the filtered syndrome — exactly as cheap as the paper
/// claims (a parity tree and an AND per clique).
#[derive(Debug, Clone)]
pub struct CliqueDecoder {
    ty: StabilizerType,
    sites: Vec<CliqueSite>,
}

impl CliqueDecoder {
    /// Builds the decoder for stabilizer type `ty` of `code`.
    #[must_use]
    pub fn new(code: &SurfaceCode, ty: StabilizerType) -> Self {
        let graph = code.detector_graph(ty);
        let sites: Vec<CliqueSite> = (0..graph.num_nodes())
            .map(|a| CliqueSite {
                neighbors: graph.ancilla_neighbors(a),
                private_qubit: graph.private_qubits(a).into_iter().min(),
            })
            .collect();
        // `decode` keeps its lit-neighbor scratch on the stack.
        assert!(
            sites.iter().all(|s| s.neighbors.len() <= 4),
            "surface-code cliques have at most 4 same-type neighbors"
        );
        Self { ty, sites }
    }

    /// The stabilizer type this decoder watches.
    #[must_use]
    pub fn stabilizer_type(&self) -> StabilizerType {
        self.ty
    }

    /// Number of cliques (one per ancilla).
    #[must_use]
    pub fn num_cliques(&self) -> usize {
        self.sites.len()
    }

    /// Decides one filtered syndrome (paper Fig. 5 pseudocode).
    ///
    /// # Panics
    ///
    /// Panics if `syndrome.len()` does not match the number of cliques.
    #[must_use]
    pub fn decode(&self, syndrome: &Syndrome) -> CliqueDecision {
        assert_eq!(syndrome.len(), self.sites.len(), "syndrome width mismatch");
        if syndrome.is_zero() {
            return CliqueDecision::AllZeros;
        }
        let mut flips = Vec::new();
        // A clique has at most 4 same-type neighbors on any surface
        // code, so the lit-neighbor scratch lives on the stack.
        let mut lit = [0usize; 4];
        for a in syndrome.iter_set() {
            let site = &self.sites[a];
            let mut lit_n = 0;
            for &(n, q) in &site.neighbors {
                if syndrome.get(n) {
                    lit[lit_n] = q;
                    lit_n += 1;
                }
            }
            let lit = &lit[..lit_n];
            if lit.len() % 2 == 1 {
                // Odd parity: each lit neighbor pair fixes its shared qubit.
                flips.extend_from_slice(lit);
            } else if lit.is_empty() {
                match site.private_qubit {
                    // Boundary special case: a lone lit ancilla with a
                    // private qubit is explained by one boundary error.
                    Some(q) => flips.push(q),
                    None => return CliqueDecision::Complex,
                }
            } else {
                // Even, non-zero parity: a chain passes through here.
                return CliqueDecision::Complex;
            }
        }
        // Adjacent cliques may both indicate the same data qubit (the
        // paper's "it does not matter which clique(s) is/are triggering
        // it"): the flips are OR-combined, not parity-combined.
        flips.sort_unstable();
        flips.dedup();
        CliqueDecision::Trivial(Correction::from_flips(flips))
    }

    /// Best-effort **emergency** correction for a syndrome Clique
    /// declared [`CliqueDecision::Complex`] — the graceful-degradation
    /// fallback the machine tier applies when the off-chip link fails a
    /// decode (retries exhausted or deadline blown).
    ///
    /// One greedy ascending pass over the lit ancillas: each still-lit
    /// clique pairs with its first still-lit neighbor (flipping the
    /// shared data qubit), falls back to its private boundary qubit, or
    /// — for a lone interior defect — flips the qubit shared with its
    /// first neighbor, pushing the defect one step so later rounds can
    /// resolve it. Unlike [`CliqueDecoder::decode`] this never refuses:
    /// it always returns *a* correction. It may leave residual
    /// syndrome; the sticky filter re-escalates whatever survives once
    /// the link recovers, so degradation trades a possible logical
    /// error for guaranteed forward progress — never a permanent stall.
    ///
    /// Deterministic: a pure function of the syndrome and the code
    /// geometry.
    ///
    /// # Panics
    ///
    /// Panics if `syndrome.len()` does not match the number of cliques.
    #[must_use]
    pub fn emergency_correction(&self, syndrome: &Syndrome) -> Correction {
        assert_eq!(syndrome.len(), self.sites.len(), "syndrome width mismatch");
        let mut lit: Vec<bool> = (0..self.sites.len()).map(|a| syndrome.get(a)).collect();
        let mut flips = Vec::new();
        for a in 0..self.sites.len() {
            if !lit[a] {
                continue;
            }
            let site = &self.sites[a];
            if let Some(&(n, q)) = site.neighbors.iter().find(|&&(n, _)| lit[n]) {
                // Pair with the first lit neighbor: one shared-qubit
                // flip explains both defects.
                flips.push(q);
                lit[a] = false;
                lit[n] = false;
            } else if let Some(q) = site.private_qubit {
                // Boundary: a single private-qubit flip explains it.
                flips.push(q);
                lit[a] = false;
            } else if let Some(&(n, q)) =
                site.neighbors.iter().find(|&&(n, _)| n > a).or_else(|| site.neighbors.first())
            {
                // Lone interior defect: push it onto a neighbor —
                // preferably one not yet visited, so this same pass can
                // absorb it further along (pair it, or drain it through
                // a boundary). Whatever survives relights and the sticky
                // filter re-escalates next cycle.
                flips.push(q);
                lit[a] = false;
                lit[n] = !lit[n];
            }
        }
        // Cancel by parity: a qubit pushed onto and later pushed back is
        // toggled twice, i.e. not flipped at all. Plain dedup would turn
        // that even count into a real flip and desync the correction
        // from the bookkeeping above.
        flips.sort_unstable();
        let mut net = Vec::with_capacity(flips.len());
        let mut i = 0;
        while i < flips.len() {
            let q = flips[i];
            let run = flips[i..].iter().take_while(|&&x| x == q).count();
            if run % 2 == 1 {
                net.push(q);
            }
            i += run;
        }
        Correction::from_flips(net)
    }

    /// The per-clique COMPLEX flag of the paper's Fig. 6 gate netlist:
    /// `active AND NOT(parity of lit neighbors) AND NOT(special-case)`.
    ///
    /// Exposed so the SFQ netlist simulator can be checked gate-for-gate
    /// against the behavioral decoder.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range or the syndrome width mismatches.
    #[must_use]
    pub fn complex_flag(&self, a: usize, syndrome: &Syndrome) -> bool {
        assert_eq!(syndrome.len(), self.sites.len(), "syndrome width mismatch");
        let site = &self.sites[a];
        if !syndrome.get(a) {
            return false;
        }
        let lit = site.neighbors.iter().filter(|&&(n, _)| syndrome.get(n)).count();
        if lit % 2 == 1 {
            return false;
        }
        !(lit == 0 && site.private_qubit.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_lattice::DataQubit;
    use btwc_noise::{NoiseModel, PhenomenologicalNoise, SimRng};

    fn decode_errors(code: &SurfaceCode, errors: &[bool]) -> CliqueDecision {
        let decoder = CliqueDecoder::new(code, StabilizerType::X);
        let syndrome = Syndrome::from_bits(code.syndrome_of(StabilizerType::X, errors));
        decoder.decode(&syndrome)
    }

    #[test]
    fn all_zero_syndrome_is_all_zeros() {
        let code = SurfaceCode::new(5);
        let errors = vec![false; code.num_data_qubits()];
        assert_eq!(decode_errors(&code, &errors), CliqueDecision::AllZeros);
    }

    #[test]
    fn every_single_data_error_is_corrected_equivalently() {
        // Fig. 8a generalized: every possible isolated data error must be
        // decoded on-chip with a correction equivalent to the true error.
        for d in [3u16, 5, 7] {
            let code = SurfaceCode::new(d);
            for q in 0..code.num_data_qubits() {
                let mut errors = vec![false; code.num_data_qubits()];
                errors[q] = true;
                match decode_errors(&code, &errors) {
                    CliqueDecision::Trivial(c) => {
                        let mut residual = errors.clone();
                        c.apply_to(&mut residual);
                        assert!(
                            code.syndrome_of(StabilizerType::X, &residual).iter().all(|&s| !s),
                            "d={d} q={q}: residual syndrome nonzero"
                        );
                        assert!(
                            !code.is_logical_error(StabilizerType::X, &residual),
                            "d={d} q={q}: correction introduced a logical error"
                        );
                    }
                    other => panic!("d={d} q={q}: expected trivial, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn isolated_error_pair_is_trivial() {
        let code = SurfaceCode::new(7);
        let mut errors = vec![false; code.num_data_qubits()];
        errors[DataQubit::new(1, 1).index(7)] = true;
        errors[DataQubit::new(5, 5).index(7)] = true;
        let decision = decode_errors(&code, &errors);
        let c = decision.correction().expect("trivial decode");
        let mut residual = errors.clone();
        c.apply_to(&mut residual);
        assert!(code.syndrome_of(StabilizerType::X, &residual).iter().all(|&s| !s));
        assert!(!code.is_logical_error(StabilizerType::X, &residual));
    }

    #[test]
    fn chain_of_two_interior_errors_is_complex_or_equivalent() {
        // Fig. 8c flavor: a short chain leaves two standalone defects at
        // distance 2; in the interior Clique must flag complex.
        let code = SurfaceCode::new(7);
        let mut errors = vec![false; code.num_data_qubits()];
        errors[DataQubit::new(3, 3).index(7)] = true;
        errors[DataQubit::new(4, 3).index(7)] = true;
        assert_eq!(decode_errors(&code, &errors), CliqueDecision::Complex);
    }

    #[test]
    fn long_chain_is_complex() {
        // Fig. 8c exactly: a chain of 4 data errors in one column.
        let code = SurfaceCode::new(9);
        let mut errors = vec![false; code.num_data_qubits()];
        for row in 2..6u16 {
            errors[DataQubit::new(row, 4).index(9)] = true;
        }
        assert_eq!(decode_errors(&code, &errors), CliqueDecision::Complex);
    }

    #[test]
    fn lone_interior_defect_is_complex() {
        // Fig. 8d: a sticky measurement error shows up as a single lit
        // interior ancilla — no data-error explanation, must go off-chip.
        let code = SurfaceCode::new(7);
        let decoder = CliqueDecoder::new(&code, StabilizerType::X);
        let graph = code.detector_graph(StabilizerType::X);
        // Find an interior ancilla (no private qubit).
        let a = (0..graph.num_nodes())
            .find(|&a| graph.private_qubits(a).is_empty())
            .expect("interior ancilla exists");
        let mut syndrome = Syndrome::new(decoder.num_cliques());
        syndrome.set(a, true);
        assert_eq!(decoder.decode(&syndrome), CliqueDecision::Complex);
    }

    #[test]
    fn lone_boundary_defect_uses_private_qubit() {
        // The Fig. 5 special case: a lit ancilla owning a boundary qubit
        // decodes trivially even with zero neighborhood parity.
        let code = SurfaceCode::new(5);
        let decoder = CliqueDecoder::new(&code, StabilizerType::X);
        let graph = code.detector_graph(StabilizerType::X);
        let a = (0..graph.num_nodes())
            .find(|&a| !graph.private_qubits(a).is_empty())
            .expect("boundary ancilla exists");
        let mut syndrome = Syndrome::new(decoder.num_cliques());
        syndrome.set(a, true);
        match decoder.decode(&syndrome) {
            CliqueDecision::Trivial(c) => {
                assert_eq!(c.weight(), 1);
                let mut residual = vec![false; code.num_data_qubits()];
                c.apply_to(&mut residual);
                let s = code.syndrome_of(StabilizerType::X, &residual);
                assert!(s[a], "correction must explain the lit ancilla");
                assert_eq!(s.iter().filter(|&&b| b).count(), 1);
            }
            other => panic!("expected trivial, got {other:?}"),
        }
    }

    #[test]
    fn complex_flag_matches_decode() {
        // The gate-level per-clique flag ORed over cliques must agree
        // with the behavioral decision on random syndromes.
        let code = SurfaceCode::new(7);
        let decoder = CliqueDecoder::new(&code, StabilizerType::X);
        let n = decoder.num_cliques();
        let mut rng = SimRng::from_seed(99);
        for _ in 0..2000 {
            let bits: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.1)).collect();
            let syndrome = Syndrome::from_bits(bits);
            let flag_any = (0..n).any(|a| decoder.complex_flag(a, &syndrome));
            let is_complex = matches!(decoder.decode(&syndrome), CliqueDecision::Complex);
            assert_eq!(flag_any, is_complex);
        }
    }

    #[test]
    fn trivial_decisions_on_sparse_data_noise_are_sound() {
        // Property: whenever Clique declares a pure-data-error cycle
        // trivial, its correction must exactly cancel the syndrome and
        // must not introduce a logical error (for sub-distance weights).
        let code = SurfaceCode::new(9);
        let noise = PhenomenologicalNoise::new(5e-3, 0.0);
        let mut rng = SimRng::from_seed(1234);
        let mut trivial_seen = 0;
        for _ in 0..20_000 {
            let mut errors = vec![false; code.num_data_qubits()];
            noise.sample_data_into(&mut rng, &mut errors);
            let weight = errors.iter().filter(|&&e| e).count();
            if weight == 0 || weight >= 4 {
                continue;
            }
            if let CliqueDecision::Trivial(c) = decode_errors(&code, &errors) {
                trivial_seen += 1;
                let mut residual = errors.clone();
                c.apply_to(&mut residual);
                assert!(
                    code.syndrome_of(StabilizerType::X, &residual).iter().all(|&s| !s),
                    "residual syndrome nonzero for {errors:?}"
                );
                assert!(!code.is_logical_error(StabilizerType::X, &residual));
            }
        }
        assert!(trivial_seen > 100, "test exercised {trivial_seen} trivial decodes");
    }

    #[test]
    fn emergency_correction_never_grows_the_syndrome() {
        // Best-effort guarantee on real data-error syndromes: applying
        // the emergency flips never increases the syndrome weight —
        // degradation makes forward progress (or at worst marks time),
        // it does not compound the damage.
        let code = SurfaceCode::new(7);
        let ty = StabilizerType::X;
        let decoder = CliqueDecoder::new(&code, ty);
        let noise = PhenomenologicalNoise::new(2e-2, 0.0);
        let mut rng = SimRng::from_seed(0xE13);
        let mut complex_seen = 0;
        for _ in 0..2000 {
            let mut errors = vec![false; code.num_data_qubits()];
            noise.sample_data_into(&mut rng, &mut errors);
            let syndrome = Syndrome::from_bits(code.syndrome_of(ty, &errors));
            if !matches!(decoder.decode(&syndrome), CliqueDecision::Complex) {
                continue;
            }
            complex_seen += 1;
            let before = syndrome.iter_set().count();
            let c = decoder.emergency_correction(&syndrome);
            assert!(c.weight() > 0, "complex syndromes must produce flips");
            let mut residual = errors;
            c.apply_to(&mut residual);
            let after = code.syndrome_of(ty, &residual).iter().filter(|&&s| s).count();
            assert!(after <= before, "emergency pass grew the syndrome: {before} -> {after}");
        }
        assert!(complex_seen > 50, "test exercised {complex_seen} complex syndromes");
    }

    #[test]
    fn emergency_correction_always_acts_and_is_deterministic() {
        // Random syndromes (including impossible ones): the emergency
        // path must always return some correction — non-empty whenever
        // the syndrome is lit — and identical across calls.
        let code = SurfaceCode::new(7);
        let decoder = CliqueDecoder::new(&code, StabilizerType::X);
        let n = decoder.num_cliques();
        let mut rng = SimRng::from_seed(17);
        for _ in 0..500 {
            let bits: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.15)).collect();
            let any_lit = bits.iter().any(|&b| b);
            let syndrome = Syndrome::from_bits(bits);
            let c = decoder.emergency_correction(&syndrome);
            assert_eq!(c, decoder.emergency_correction(&syndrome));
            assert_eq!(c.weight() > 0, any_lit, "lit syndromes must produce flips");
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn decode_rejects_wrong_width() {
        let code = SurfaceCode::new(5);
        let decoder = CliqueDecoder::new(&code, StabilizerType::X);
        let _ = decoder.decode(&Syndrome::new(3));
    }
}
