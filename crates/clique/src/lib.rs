//! The Clique decoder — the paper's lightweight on-chip predecoder.
//!
//! Clique (Sec. 4) inspects, for every *active* ancilla (one whose
//! sticky-filtered syndrome bit is lit), only the local "clique" of
//! same-type neighbor ancillas:
//!
//! * **odd** neighborhood parity → the signature is trivial; each lit
//!   neighbor pair identifies the shared data qubit to correct;
//! * **even** parity with **zero** lit neighbors *and* a private
//!   boundary data qubit → still trivial (the Fig. 5 corner/edge special
//!   cases); flip that private qubit;
//! * anything else → **complex**; raise the flag and ship the syndrome
//!   off-chip to the heavyweight decoder.
//!
//! Measurement errors are suppressed before Clique ever sees a syndrome
//! by the `k`-round sticky filter (Fig. 7, `k = 2` by default) provided
//! by [`btwc_syndrome::RoundHistory::sticky`]; [`CliqueFrontend`] bundles
//! the filter and the decoder into the complete on-chip unit.
//!
//! # Example
//!
//! ```
//! use btwc_clique::{CliqueDecoder, CliqueDecision};
//! use btwc_lattice::{StabilizerType, SurfaceCode};
//! use btwc_syndrome::Syndrome;
//!
//! let code = SurfaceCode::new(5);
//! let decoder = CliqueDecoder::new(&code, StabilizerType::X);
//!
//! // A single error on the central data qubit lights two ancillas that
//! // are clique neighbors — trivially decodable on-chip:
//! let mut errors = vec![false; code.num_data_qubits()];
//! errors[12] = true;
//! let syndrome = Syndrome::from_bits(code.syndrome_of(StabilizerType::X, &errors));
//! match decoder.decode(&syndrome) {
//!     CliqueDecision::Trivial(correction) => assert_eq!(correction.qubits(), &[12]),
//!     other => panic!("expected trivial, got {other:?}"),
//! }
//! ```

mod batch;
mod decision;
mod decoder;
mod frontend;

pub use batch::BatchFrontend;
pub use decision::{CliqueDecision, Correction};
pub use decoder::CliqueDecoder;
pub use frontend::CliqueFrontend;
