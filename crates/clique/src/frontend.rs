//! The complete on-chip unit: sticky filter + clique logic.

use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_syndrome::{PackedBits, RoundHistory, Syndrome};

use crate::decision::CliqueDecision;
use crate::decoder::CliqueDecoder;

/// The Clique decoder together with its `k`-round measurement filter —
/// the full on-chip pipeline of the paper's Figs. 6–7.
///
/// Feed one raw measurement round per cycle with
/// [`CliqueFrontend::push_round`]; the frontend applies the sticky
/// filter and returns the Clique decision for that cycle. Because the
/// filter requires `k` consecutive lit rounds, corrections lag the error
/// by `k - 1` cycles, exactly like the DFF pipeline in hardware.
#[derive(Debug, Clone)]
pub struct CliqueFrontend {
    decoder: CliqueDecoder,
    history: RoundHistory,
    rounds: usize,
    /// Reused sticky-filter output (no per-cycle allocation).
    filtered: Syndrome,
}

impl CliqueFrontend {
    /// Frontend with the paper's default two measurement rounds.
    #[must_use]
    pub fn new(code: &SurfaceCode, ty: StabilizerType) -> Self {
        Self::with_rounds(code, ty, 2)
    }

    /// Frontend with a custom sticky window `rounds >= 1` (more rounds =
    /// more measurement-error robustness at more hardware cost).
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn with_rounds(code: &SurfaceCode, ty: StabilizerType, rounds: usize) -> Self {
        assert!(rounds >= 1, "sticky filter needs at least one round");
        let decoder = CliqueDecoder::new(code, ty);
        let history = RoundHistory::new(decoder.num_cliques(), rounds);
        let filtered = Syndrome::new(decoder.num_cliques());
        Self { decoder, history, rounds, filtered }
    }

    /// The sticky window length `k`.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The underlying combinational decoder.
    #[must_use]
    pub fn decoder(&self) -> &CliqueDecoder {
        &self.decoder
    }

    /// Ingests one raw measurement round and returns this cycle's
    /// decision on the sticky-filtered syndrome.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len()` does not match the number of ancillas.
    pub fn push_round(&mut self, raw: &[bool]) -> CliqueDecision {
        self.history.push(raw);
        self.decide()
    }

    /// [`CliqueFrontend::push_round`] for an already-packed round — the
    /// allocation-free hot path: ring-buffer word copy, word-AND sticky
    /// filter, and a decode that touches only lit words.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len()` does not match the number of ancillas.
    pub fn push_round_packed(&mut self, raw: &PackedBits) -> CliqueDecision {
        self.history.push_packed(raw);
        self.decide()
    }

    fn decide(&mut self) -> CliqueDecision {
        self.history.sticky_into(self.rounds, &mut self.filtered);
        self.decoder.decode(&self.filtered)
    }

    /// Clears the filter pipeline (e.g. after the off-chip decoder has
    /// resolved the window and reset the reference frame).
    pub fn reset(&mut self) {
        self.history.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_lattice::DataQubit;

    fn raw_syndrome(code: &SurfaceCode, errors: &[bool], flips: &[usize]) -> Vec<bool> {
        let mut s = code.syndrome_of(StabilizerType::X, errors);
        for &f in flips {
            s[f] ^= true;
        }
        s
    }

    #[test]
    fn persistent_data_error_is_decoded_after_k_rounds() {
        let code = SurfaceCode::new(5);
        let mut fe = CliqueFrontend::new(&code, StabilizerType::X);
        let mut errors = vec![false; code.num_data_qubits()];
        errors[DataQubit::new(2, 2).index(5)] = true;
        let raw = raw_syndrome(&code, &errors, &[]);
        // Round 1: filter still filling — all zeros.
        assert_eq!(fe.push_round(&raw), CliqueDecision::AllZeros);
        // Round 2: error stuck — trivially corrected.
        match fe.push_round(&raw) {
            CliqueDecision::Trivial(c) => {
                assert_eq!(c.qubits(), &[DataQubit::new(2, 2).index(5)]);
            }
            other => panic!("expected trivial, got {other:?}"),
        }
    }

    #[test]
    fn single_round_measurement_flip_is_suppressed() {
        let code = SurfaceCode::new(5);
        let mut fe = CliqueFrontend::new(&code, StabilizerType::X);
        let clean = vec![false; code.num_data_qubits()];
        let quiet = raw_syndrome(&code, &clean, &[]);
        let flipped = raw_syndrome(&code, &clean, &[3]);
        assert_eq!(fe.push_round(&quiet), CliqueDecision::AllZeros);
        assert_eq!(fe.push_round(&flipped), CliqueDecision::AllZeros);
        assert_eq!(fe.push_round(&quiet), CliqueDecision::AllZeros);
    }

    #[test]
    fn two_round_sticky_measurement_error_leaks_through() {
        // The paper's documented weakness: a measurement error sticking
        // two rounds on an interior ancilla is (mis)taken for real and,
        // being a lone defect, flagged complex.
        let code = SurfaceCode::new(7);
        let graph = code.detector_graph(StabilizerType::X);
        let interior =
            (0..graph.num_nodes()).find(|&a| graph.private_qubits(a).is_empty()).unwrap();
        let mut fe = CliqueFrontend::new(&code, StabilizerType::X);
        let clean = vec![false; code.num_data_qubits()];
        let flipped = raw_syndrome(&code, &clean, &[interior]);
        let _ = fe.push_round(&flipped);
        assert_eq!(fe.push_round(&flipped), CliqueDecision::Complex);
    }

    #[test]
    fn three_round_filter_suppresses_two_round_flip() {
        let code = SurfaceCode::new(7);
        let graph = code.detector_graph(StabilizerType::X);
        let interior =
            (0..graph.num_nodes()).find(|&a| graph.private_qubits(a).is_empty()).unwrap();
        let mut fe = CliqueFrontend::with_rounds(&code, StabilizerType::X, 3);
        let clean = vec![false; code.num_data_qubits()];
        let quiet = raw_syndrome(&code, &clean, &[]);
        let flipped = raw_syndrome(&code, &clean, &[interior]);
        assert_eq!(fe.push_round(&quiet), CliqueDecision::AllZeros);
        assert_eq!(fe.push_round(&flipped), CliqueDecision::AllZeros);
        assert_eq!(fe.push_round(&flipped), CliqueDecision::AllZeros);
        assert_eq!(fe.push_round(&quiet), CliqueDecision::AllZeros);
    }

    #[test]
    fn reset_clears_pipeline() {
        let code = SurfaceCode::new(5);
        let mut fe = CliqueFrontend::new(&code, StabilizerType::X);
        let mut errors = vec![false; code.num_data_qubits()];
        errors[0] = true;
        let raw = raw_syndrome(&code, &errors, &[]);
        let _ = fe.push_round(&raw);
        fe.reset();
        // After reset the filter must refill before acting.
        assert_eq!(fe.push_round(&raw), CliqueDecision::AllZeros);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let code = SurfaceCode::new(3);
        let _ = CliqueFrontend::with_rounds(&code, StabilizerType::X, 0);
    }
}
