//! The machine-wide on-chip unit: one sticky filter pass for *all*
//! logical qubits, word-parallel across qubits.
//!
//! [`BatchFrontend`] is the batched counterpart of [`CliqueFrontend`]:
//! instead of `num_qubits` independent per-qubit filters (each paying
//! its own ring-buffer push and word-AND per cycle), it keeps the
//! machine's raw rounds transposed ([`SyndromeBatch`]: one qubit-indexed
//! plane per ancilla) and runs the `k`-round sticky filter as one
//! word-AND chain per plane — 64 logical qubits per instruction. The
//! per-qubit Clique decision then runs only for the rare qubits whose
//! filtered syndrome is non-zero (found with a word-OR over the sticky
//! planes), so the >90%-quiet common case costs no per-qubit work at
//! all.
//!
//! Decisions are bit-identical to feeding each qubit's stream through
//! its own [`CliqueFrontend`] (pinned by this module's tests).

use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_syndrome::{BatchHistory, PackedBits, Syndrome, SyndromeBatch};

use crate::decision::CliqueDecision;
use crate::decoder::CliqueDecoder;

/// The Clique decoder with a machine-wide `k`-round measurement filter:
/// the batched on-chip tier for `num_qubits` logical qubits.
#[derive(Debug, Clone)]
pub struct BatchFrontend {
    decoder: CliqueDecoder,
    rounds: usize,
    num_qubits: usize,
    history: BatchHistory,
    /// Reused sticky-filter output planes (no per-cycle allocation).
    sticky: SyndromeBatch,
    /// Reused "which qubits have a non-zero filtered syndrome" mask.
    active: PackedBits,
    /// Reused per-qubit filtered syndrome (gathered only for active
    /// qubits).
    filtered: Syndrome,
}

impl BatchFrontend {
    /// Frontend for `num_qubits` logical qubits with the paper's
    /// default two measurement rounds.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0`.
    #[must_use]
    pub fn new(code: &SurfaceCode, ty: StabilizerType, num_qubits: usize) -> Self {
        Self::with_rounds(code, ty, num_qubits, 2)
    }

    /// Frontend with a custom sticky window `rounds >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0` or `num_qubits == 0`.
    #[must_use]
    pub fn with_rounds(
        code: &SurfaceCode,
        ty: StabilizerType,
        num_qubits: usize,
        rounds: usize,
    ) -> Self {
        assert!(rounds >= 1, "sticky filter needs at least one round");
        let decoder = CliqueDecoder::new(code, ty);
        let n_anc = decoder.num_cliques();
        Self {
            rounds,
            num_qubits,
            history: BatchHistory::new(num_qubits, n_anc, rounds),
            sticky: SyndromeBatch::new(num_qubits, n_anc),
            active: PackedBits::new(num_qubits),
            filtered: Syndrome::new(n_anc),
            decoder,
        }
    }

    /// The sticky window length `k`.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Number of logical qubits served.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The underlying combinational decoder (shared by all qubits —
    /// Clique is pure geometry, so one instance serves the machine).
    #[must_use]
    pub fn decoder(&self) -> &CliqueDecoder {
        &self.decoder
    }

    /// Ingests one machine round and calls
    /// `visit(qubit, decision, filtered)` for every qubit whose
    /// sticky-filtered syndrome is **non-zero**, in ascending qubit
    /// order — `filtered` is that qubit's sticky-filtered syndrome, so
    /// escalation paths (and their degradation fallbacks) can act on it
    /// without a second gather. Unvisited qubits decided
    /// [`CliqueDecision::AllZeros`] — the whole-machine common case that
    /// the batched filter dismisses with word ops alone.
    ///
    /// # Panics
    ///
    /// Panics if the batch dimensions mismatch the frontend's.
    pub fn push_batch(
        &mut self,
        batch: &SyndromeBatch,
        mut visit: impl FnMut(usize, CliqueDecision, &Syndrome),
    ) {
        self.history.push(batch);
        self.history.sticky_into(self.rounds, &mut self.sticky);
        self.sticky.active_qubits_into(&mut self.active);
        for q in self.active.iter_set() {
            self.sticky.qubit_round_into(q, self.filtered.as_packed_mut());
            visit(q, self.decoder.decode(&self.filtered), &self.filtered);
        }
    }

    /// Clears the filter pipeline (all qubits).
    pub fn reset(&mut self) {
        self.history.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::CliqueFrontend;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// The equivalence pin: the batched frontend must reproduce every
    /// per-qubit frontend's decision stream bit-for-bit.
    #[test]
    fn batch_decisions_match_per_qubit_frontends() {
        for k in [2usize, 3] {
            let code = SurfaceCode::new(5);
            let ty = StabilizerType::X;
            let q = 70usize; // crosses a qubit-plane word boundary
            let n_anc = code.num_ancillas(ty);
            let mut batched = BatchFrontend::with_rounds(&code, ty, q, k);
            let mut singles: Vec<CliqueFrontend> =
                (0..q).map(|_| CliqueFrontend::with_rounds(&code, ty, k)).collect();
            let mut state = 0xC11C0E + k as u64;
            let mut batch = SyndromeBatch::new(q, n_anc);
            for _ in 0..60 {
                let mut expected: Vec<CliqueDecision> = Vec::with_capacity(q);
                for (qi, fe) in singles.iter_mut().enumerate() {
                    // Mixed stream: mostly quiet, some persistent, some
                    // transient bits.
                    let round: Vec<bool> =
                        (0..n_anc).map(|_| xorshift(&mut state).is_multiple_of(5)).collect();
                    batch.set_qubit_round_bools(qi, &round);
                    expected.push(fe.push_round(&round));
                }
                let mut got: Vec<CliqueDecision> = vec![CliqueDecision::AllZeros; q];
                let mut last = None;
                batched.push_batch(&batch, |qi, decision, _| {
                    assert!(last.is_none_or(|p| p < qi), "visits must ascend");
                    last = Some(qi);
                    got[qi] = decision;
                });
                assert_eq!(got, expected);
            }
        }
    }

    #[test]
    fn quiet_machine_visits_nobody() {
        let code = SurfaceCode::new(3);
        let ty = StabilizerType::X;
        let q = 8;
        let mut fe = BatchFrontend::new(&code, ty, q);
        let batch = SyndromeBatch::new(q, code.num_ancillas(ty));
        for _ in 0..10 {
            fe.push_batch(&batch, |qi, _, _| panic!("quiet machine visited qubit {qi}"));
        }
    }

    #[test]
    fn reset_refills_the_filter() {
        let code = SurfaceCode::new(5);
        let ty = StabilizerType::X;
        let n_anc = code.num_ancillas(ty);
        let mut fe = BatchFrontend::new(&code, ty, 4);
        let mut errors = vec![false; code.num_data_qubits()];
        errors[12] = true;
        let round = code.syndrome_of(ty, &errors);
        let mut batch = SyndromeBatch::new(4, n_anc);
        batch.set_qubit_round_bools(2, &round);
        fe.push_batch(&batch, |_, _, _| {});
        fe.reset();
        // After reset the filter must refill before acting.
        fe.push_batch(&batch, |qi, _, _| panic!("filter must be empty, visited {qi}"));
        let mut visited = Vec::new();
        fe.push_batch(&batch, |qi, d, _| {
            assert!(matches!(d, CliqueDecision::Trivial(_)));
            visited.push(qi);
        });
        assert_eq!(visited, vec![2]);
    }
}
