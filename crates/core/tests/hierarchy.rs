//! Integration: the BTWC pipeline with every heavyweight tier the
//! workspace provides, behaving identically on trivial traffic and
//! consistently on complex traffic.

use btwc_core::{BtwcDecoder, BtwcOutcome, DecoderBackend, StabilizerType, SurfaceCode};
use btwc_noise::{NoiseModel, PhenomenologicalNoise, SimRng};

fn run_pipeline(
    mut dec: BtwcDecoder,
    code: &SurfaceCode,
    p: f64,
    cycles: usize,
    seed: u64,
) -> (f64, usize) {
    let ty = StabilizerType::X;
    let noise = PhenomenologicalNoise::uniform(p);
    let mut rng = SimRng::from_seed(seed);
    let mut errors = vec![false; code.num_data_qubits()];
    let mut meas = vec![false; code.num_ancillas(ty)];
    for _ in 0..cycles {
        noise.sample_data_into(&mut rng, &mut errors);
        noise.sample_measurement_into(&mut rng, &mut meas);
        let mut round = code.syndrome_of(ty, &errors);
        for (r, &m) in round.iter_mut().zip(&meas) {
            *r ^= m;
        }
        if let Some(c) = dec.process_round(&round).correction() {
            c.apply_to(&mut errors);
        }
    }
    // Quiet drain.
    for _ in 0..30 {
        let round = code.syndrome_of(ty, &errors);
        if let Some(c) = dec.process_round(&round).correction() {
            c.apply_to(&mut errors);
        }
    }
    let weight = code.syndrome_of(ty, &errors).iter().filter(|&&s| s).count();
    (dec.stats().coverage(), weight)
}

#[test]
fn mwpm_and_uf_tiers_both_control_errors() {
    let code = SurfaceCode::new(7);
    let ty = StabilizerType::X;
    let mwpm_dec = BtwcDecoder::builder(&code, ty).build();
    let uf_dec = BtwcDecoder::builder(&code, ty).backend(DecoderBackend::UnionFind).build();
    for (name, dec) in [("mwpm", mwpm_dec), ("uf", uf_dec)] {
        let (coverage, weight) = run_pipeline(dec, &code, 5e-3, 5_000, 11);
        assert!(coverage > 0.9, "{name}: coverage {coverage}");
        assert_eq!(weight, 0, "{name}: defects must drain in quiet");
    }
}

#[test]
fn lut_tier_works_for_small_distance() {
    let code = SurfaceCode::new(5);
    let ty = StabilizerType::X;
    let dec = BtwcDecoder::builder(&code, ty).backend(DecoderBackend::Lut).build();
    let (coverage, weight) = run_pipeline(dec, &code, 5e-3, 5_000, 13);
    assert!(coverage > 0.9, "coverage {coverage}");
    assert_eq!(weight, 0, "defects must drain in quiet");
}

#[test]
fn tiers_agree_on_purely_trivial_traffic() {
    // On a stream Clique fully covers, the heavyweight tier choice is
    // unobservable: identical outcomes cycle for cycle.
    let code = SurfaceCode::new(5);
    let ty = StabilizerType::X;
    let mut a = BtwcDecoder::builder(&code, ty).build();
    let mut b = BtwcDecoder::builder(&code, ty).backend(DecoderBackend::UnionFind).build();
    let mut errors = vec![false; code.num_data_qubits()];
    errors[12] = true;
    let round = code.syndrome_of(ty, &errors);
    let quiet = vec![false; code.num_ancillas(ty)];
    for r in [&quiet, &round, &round, &quiet, &quiet] {
        let oa = a.process_round(r);
        let ob = b.process_round(r);
        assert_eq!(oa, ob);
        assert!(!matches!(oa, BtwcOutcome::OffChip(_)));
    }
}
