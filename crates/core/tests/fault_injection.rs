//! Fault-tolerant transport acceptance pins.
//!
//! Three guarantees from the robustness rework:
//!
//! 1. **Zero-fault differential pin** — a machine built with the
//!    default (fault-free) link is bit-identical — per-cycle outcomes,
//!    aggregate and per-qubit stats, transport counters, and the full
//!    cycle-domain telemetry snapshot — to one with an explicit
//!    [`LinkFaultModel::none`] or an explicit all-zero-probability
//!    model, for **every** builtin backend and any link seed. The
//!    fault machinery is free when off.
//! 2. **Exact counter accounting** — under real faults, the machine's
//!    receiver-side [`btwc_core::TransportStats`] match the link's
//!    injected-fault ground truth one for one, and every escalation
//!    resolves as either an off-chip commit or a counted degradation.
//! 3. **Determinism** — the faulty-link path is bit-reproducible
//!    across `BTWC_WORKERS`-style worker counts (the link RNG is
//!    stepped serially by the machine, never by the pool).

use std::sync::Arc;

use btwc_core::{
    BtwcMachine, BtwcOutcome, ComplexDecoder, DecoderBackend, DecoderStats, LinkFaultModel,
    MachineCycle, MachineStats, SparseDecoder, StabilizerType, SurfaceCode, SyndromeBatch,
    TransportStats,
};
use btwc_noise::{PhenomenologicalNoise, SimRng};
use btwc_pool::Pool;
use btwc_telemetry::{Domain, MetricsRegistry};
use btwc_testutil::noisy_round;

const D: u16 = 5;
const NUM_QUBITS: usize = 6;
const BANDWIDTH: usize = 2;

/// Drives `cycles` noisy closed-loop rounds through `machine` and
/// returns everything observable: per-cycle results, stats facades,
/// per-qubit stats, and the cycle-domain telemetry snapshot as JSON.
fn drive(
    machine: &mut BtwcMachine,
    registry: &MetricsRegistry,
    code: &SurfaceCode,
    cycles: usize,
    p: f64,
    noise_seed: u64,
) -> (Vec<MachineCycle>, MachineStats, TransportStats, Vec<DecoderStats>, String) {
    let ty = StabilizerType::X;
    let n_anc = code.num_ancillas(ty);
    let noise = PhenomenologicalNoise::uniform(p);
    let mut rng = SimRng::from_seed(noise_seed);
    let mut errors = vec![vec![false; code.num_data_qubits()]; machine.num_qubits()];
    let mut meas = vec![false; n_anc];
    let mut batch = SyndromeBatch::new(machine.num_qubits(), n_anc);
    let mut trace = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        for (q, e) in errors.iter_mut().enumerate() {
            let raw = noisy_round(code, ty, &noise, &mut rng, e, &mut meas);
            batch.set_qubit_round_bools(q, &raw);
        }
        let cycle = machine.step(&batch);
        for (e, out) in errors.iter_mut().zip(&cycle.outcomes) {
            if let Some(c) = out.correction() {
                c.apply_to(e);
            }
        }
        trace.push(cycle);
    }
    let per_qubit: Vec<DecoderStats> =
        (0..machine.num_qubits()).map(|q| machine.decoder_stats(q)).collect();
    let snapshot = registry.snapshot_domains(&[Domain::Cycles]).to_json();
    (trace, machine.stats(), machine.transport_stats(), per_qubit, snapshot)
}

/// The zero-fault differential pin, per backend: default link ==
/// explicit `none()` == explicit all-zero probabilities, bit for bit,
/// regardless of seed.
fn pin_zero_fault(backend: DecoderBackend) {
    let code = SurfaceCode::new(D);
    let ty = StabilizerType::X;
    let zero_probability = LinkFaultModel {
        drop: 0.0,
        bit_flip: 0.0,
        truncate: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        delay: 0.0,
        max_delay_cycles: 9,
    };
    let variants: [(&str, Option<(LinkFaultModel, u64)>); 3] = [
        ("default", None),
        ("explicit-none", Some((LinkFaultModel::none(), 0xDEAD))),
        ("zero-probability", Some((zero_probability, 0xBEEF))),
    ];
    let mut reference = None;
    for (label, fault) in variants {
        let registry = MetricsRegistry::new();
        let mut builder = BtwcMachine::builder(&code, ty, NUM_QUBITS, BANDWIDTH)
            .backend(backend)
            .telemetry(&registry);
        if let Some((model, seed)) = fault {
            builder = builder.fault_model(model).link_seed(seed);
        }
        let mut machine = builder.build();
        let got = drive(&mut machine, &registry, &code, 700, 7e-3, 0x2E40);
        assert!(got.1.offchip_requests > 0, "pin needs real escalations ({backend:?})");
        assert_eq!(got.2, TransportStats::default(), "fault-free runs observe no faults ({label})");
        match &reference {
            None => reference = Some(got),
            Some(r) => {
                assert_eq!(&got.0, &r.0, "outcomes diverged ({backend:?}, {label})");
                assert_eq!(&got.1, &r.1, "stats diverged ({backend:?}, {label})");
                assert_eq!(&got.3, &r.3, "per-qubit stats diverged ({backend:?}, {label})");
                assert_eq!(&got.4, &r.4, "telemetry diverged ({backend:?}, {label})");
            }
        }
    }
}

#[test]
fn zero_fault_link_is_bit_identical_dense_mwpm() {
    pin_zero_fault(DecoderBackend::DenseMwpm);
}

#[test]
fn zero_fault_link_is_bit_identical_sparse_blossom() {
    pin_zero_fault(DecoderBackend::SparseBlossom);
}

#[test]
fn zero_fault_link_is_bit_identical_union_find() {
    pin_zero_fault(DecoderBackend::UnionFind);
}

#[test]
fn zero_fault_link_is_bit_identical_lut() {
    pin_zero_fault(DecoderBackend::Lut);
}

#[test]
fn observed_fault_counters_match_injected_exactly() {
    let code = SurfaceCode::new(D);
    let ty = StabilizerType::X;
    let registry = MetricsRegistry::new();
    let mut machine = BtwcMachine::builder(&code, ty, NUM_QUBITS, BANDWIDTH)
        .fault_model(LinkFaultModel::uniform(0.10))
        .link_seed(0xFA11)
        .telemetry(&registry)
        .build();
    let (trace, stats, transport, _, _) = drive(&mut machine, &registry, &code, 2000, 8e-3, 0x0B5);
    let link = machine.link_stats();

    // Receiver-observed == sender-injected, class by class.
    assert_eq!(transport.corrupted_frames, link.corrupted(), "corrupted");
    assert_eq!(transport.dropped_frames, link.dropped, "dropped");
    assert_eq!(transport.duplicated_frames, link.duplicated, "duplicated");
    assert_eq!(transport.reordered_frames, link.reordered, "reordered");
    // Every transmit was a fresh request or a counted retransmit.
    assert_eq!(
        link.frames_sent,
        stats.offchip_requests + transport.retransmitted_frames,
        "attempt accounting"
    );
    // The trace must actually exercise every fault class.
    for (n, class) in [
        (transport.corrupted_frames, "corrupted"),
        (transport.dropped_frames, "dropped"),
        (transport.duplicated_frames, "duplicated"),
        (transport.reordered_frames, "reordered"),
        (transport.retransmitted_frames, "retransmitted"),
    ] {
        assert!(n > 0, "trace never hit the {class} class");
    }

    // Every escalation resolved: off-chip commit or counted
    // degradation, never silence.
    let offchip: u64 = trace
        .iter()
        .flat_map(|c| &c.outcomes)
        .filter(|o| matches!(o, BtwcOutcome::OffChip(_)))
        .count() as u64;
    let degraded: u64 =
        trace.iter().flat_map(|c| &c.outcomes).filter(|o| o.was_degraded()).count() as u64;
    assert_eq!(offchip + degraded, stats.offchip_requests, "all escalations resolve");
    assert_eq!(degraded, transport.degraded_decodes, "degradations are counted");

    // The telemetry mirrors the same counters.
    let snap = registry.snapshot_domains(&[Domain::Cycles]);
    assert_eq!(snap.get_counter("machine.link.corrupted_frames"), Some(transport.corrupted_frames));
    assert_eq!(snap.get_counter("machine.link.dropped_frames"), Some(transport.dropped_frames));
    assert_eq!(
        snap.get_counter("machine.link.duplicated_frames"),
        Some(transport.duplicated_frames)
    );
    assert_eq!(snap.get_counter("machine.link.reordered_frames"), Some(transport.reordered_frames));
    assert_eq!(
        snap.get_counter("machine.link.retransmitted_frames"),
        Some(transport.retransmitted_frames)
    );
    assert_eq!(snap.get_counter("machine.degraded_decodes"), Some(transport.degraded_decodes));
}

#[test]
fn hostile_link_never_wedges_the_machine() {
    // A viciously lossy link: most escalations need retries, many blow
    // the budget. The machine must keep resolving every escalation
    // (off-chip or degraded), keep the backlog bounded, and drain
    // cleanly once the noise stops.
    let code = SurfaceCode::new(3);
    let ty = StabilizerType::X;
    let n_anc = code.num_ancillas(ty);
    let registry = MetricsRegistry::new();
    let mut machine = BtwcMachine::builder(&code, ty, 8, 4)
        .fault_model(LinkFaultModel::uniform(0.35))
        .link_seed(0xBAD)
        .max_retries(3)
        .telemetry(&registry)
        .build();
    let (trace, stats, transport, _, _) =
        drive(&mut machine, &registry, &code, 3000, 2.2e-2, 0xF00);
    assert!(stats.offchip_requests > 50, "need heavy escalation traffic");
    assert!(transport.degraded_decodes > 0, "a 35% fault rate must blow some retry budgets");
    let degraded: u64 =
        trace.iter().flat_map(|c| &c.outcomes).filter(|o| o.was_degraded()).count() as u64;
    assert_eq!(degraded, transport.degraded_decodes);
    for q in 0..8 {
        assert_eq!(
            registry
                .snapshot_domains(&[Domain::Cycles])
                .get_counter("machine.degraded_decodes")
                .unwrap_or(0),
            transport.degraded_decodes
        );
        let _ = machine.degraded_decodes(q);
    }
    // Retransmission pressure is real but bounded: the backlog never
    // ran away.
    assert!(
        stats.peak_backlog < 200,
        "retry amplification must stay bounded, peaked at {}",
        stats.peak_backlog
    );
    // Quiet tail: the backlog drains and stalling stops.
    let quiet = SyndromeBatch::new(8, n_anc);
    for _ in 0..64 {
        let _ = machine.step(&quiet);
    }
    assert_eq!(machine.stats().backlog, 0, "quiet tail must drain the link");
    assert!(!machine.is_stalled());
}

#[test]
fn faulty_transport_is_deterministic_across_worker_counts() {
    // The pooled sparse backend is the one machine component that runs
    // on a worker pool; the link RNG must not see the worker count.
    fn pooled_sparse<const W: usize>(
        code: &SurfaceCode,
        ty: StabilizerType,
    ) -> Box<dyn ComplexDecoder + Send + Sync> {
        Box::new(SparseDecoder::new(code, ty).with_pool(Arc::new(Pool::new(W))))
    }
    let backends = [
        DecoderBackend::Custom { name: "sparse-pooled", build: pooled_sparse::<1> },
        DecoderBackend::Custom { name: "sparse-pooled", build: pooled_sparse::<2> },
        DecoderBackend::Custom { name: "sparse-pooled", build: pooled_sparse::<8> },
    ];
    let code = SurfaceCode::new(D);
    let ty = StabilizerType::X;
    let mut reference = None;
    for backend in backends {
        let registry = MetricsRegistry::new();
        let mut machine = BtwcMachine::builder(&code, ty, NUM_QUBITS, BANDWIDTH)
            .backend(backend)
            .fault_model(LinkFaultModel::uniform(0.12))
            .link_seed(0x5EED)
            .telemetry(&registry)
            .build();
        let got = drive(&mut machine, &registry, &code, 900, 8e-3, 0x77);
        assert!(got.2.retransmitted_frames > 0, "pin needs real fault traffic");
        match &reference {
            None => reference = Some(got),
            Some(r) => {
                assert_eq!(&got.0, &r.0, "outcomes diverged across worker counts");
                assert_eq!(&got.1, &r.1, "stats diverged across worker counts");
                assert_eq!(&got.2, &r.2, "transport stats diverged across worker counts");
                assert_eq!(&got.4, &r.4, "telemetry diverged across worker counts");
            }
        }
    }
}
