//! The machine-tier acceptance pin: batched [`BtwcMachine::step`] is
//! bit-identical — per-cycle outcomes, per-qubit stats, and stall
//! behavior — to a reference loop of per-qubit
//! [`BtwcDecoder::process_round_packed`] plus a hand-stepped
//! [`QueueSim`], across randomized multi-qubit traces and **every**
//! [`DecoderBackend`] variant.
//!
//! This is the guarantee that makes the batched word-parallel filter a
//! pure optimization: the machine may reorganize the work (transposed
//! planes, one shared room-temperature decoder, frames over the wire),
//! but never the answers.

use btwc_bandwidth::QueueSim;
use btwc_core::{
    BtwcDecoder, BtwcMachine, BtwcOutcome, ComplexDecoder, DecoderBackend, StabilizerType,
    SurfaceCode, SyndromeBatch,
};
use btwc_noise::{PhenomenologicalNoise, SimRng};
use btwc_syndrome::{Correction, PackedBits, RoundHistory};
use btwc_testutil::noisy_round;

/// A deliberately odd custom backend: deterministic but unlike any
/// built-in matcher, so the pin exercises the `Custom` factory path
/// rather than accidentally re-testing MWPM.
struct EventParityDecoder {
    num_data: usize,
}

impl ComplexDecoder for EventParityDecoder {
    fn decode_window(&self, window: &RoundHistory) -> Correction {
        let events = window.detection_events();
        if events.is_empty() {
            return Correction::new();
        }
        let sum: usize = events.iter().map(|e| e.ancilla + e.round).sum();
        Correction::from_flips(vec![sum % self.num_data])
    }
}

const CUSTOM: DecoderBackend = DecoderBackend::Custom {
    name: "event-parity",
    build: |code, _ty| Box::new(EventParityDecoder { num_data: code.num_data_qubits() }),
};

/// Drives `cycles` noisy rounds through the machine and the per-qubit
/// reference loop simultaneously, asserting bit-identity at every
/// cycle. `feedback` applies the (shared) corrections back onto the
/// tracked error state — on for the real matchers (realistic
/// closed-loop streams), off for the bogus custom backend (whose
/// "corrections" would otherwise blow up the error state).
#[allow(clippy::too_many_arguments)]
fn pin_machine_against_reference(
    backend: DecoderBackend,
    d: u16,
    num_qubits: usize,
    bandwidth: usize,
    cycles: usize,
    p: f64,
    seed: u64,
    feedback: bool,
) {
    let code = SurfaceCode::new(d);
    let ty = StabilizerType::X;
    let n_anc = code.num_ancillas(ty);

    let mut machine =
        BtwcMachine::builder(&code, ty, num_qubits, bandwidth).backend(backend).build();
    let mut reference: Vec<BtwcDecoder> =
        (0..num_qubits).map(|_| BtwcDecoder::builder(&code, ty).backend(backend).build()).collect();
    let mut ref_queue = QueueSim::new(bandwidth);
    let mut ref_stalled = false;

    let noise = PhenomenologicalNoise::uniform(p);
    let mut rng = SimRng::from_seed(seed);
    let mut errors = vec![vec![false; code.num_data_qubits()]; num_qubits];
    let mut meas = vec![false; n_anc];
    let mut batch = SyndromeBatch::new(num_qubits, n_anc);
    let mut rounds: Vec<PackedBits> = (0..num_qubits).map(|_| PackedBits::new(n_anc)).collect();

    let mut total_offchip = 0usize;
    for t in 0..cycles {
        // Identical rounds into both sides: the shared testutil
        // distribution (data noise + measurement flips) per qubit.
        for (q, e) in errors.iter_mut().enumerate() {
            let raw = noisy_round(&code, ty, &noise, &mut rng, e, &mut meas);
            rounds[q].fill_from_bools(&raw);
            batch.set_qubit_round_bools(q, &raw);
        }

        let ref_was_stalled = ref_stalled;
        let cycle = machine.step(&batch);
        let expected: Vec<BtwcOutcome> =
            reference.iter_mut().zip(&rounds).map(|(dec, r)| dec.process_round_packed(r)).collect();
        assert_eq!(
            cycle.outcomes, expected,
            "cycle {t}: batched outcomes diverged from the per-qubit loop \
             ({backend:?}, d={d}, q={num_qubits})"
        );

        let offchip = expected.iter().filter(|o| o.went_offchip()).count();
        total_offchip += offchip;
        assert_eq!(cycle.offchip_requests, offchip, "cycle {t}: off-chip demand");
        let _ = ref_queue.step(offchip);
        ref_stalled = ref_queue.backlog() > 0;
        assert_eq!(cycle.stalled, ref_was_stalled, "cycle {t}: stall flag");
        assert_eq!(machine.is_stalled(), ref_stalled, "cycle {t}: next-cycle stall");
        assert_eq!(machine.stats().backlog, ref_queue.backlog() as u64, "cycle {t}: backlog");

        if feedback {
            for (e, out) in errors.iter_mut().zip(&expected) {
                if let Some(c) = out.correction() {
                    c.apply_to(e);
                }
            }
        }
    }

    // Stats, not just outcomes: every qubit's machine-side counters
    // must equal its standalone pipeline's.
    for (q, dec) in reference.iter().enumerate() {
        assert_eq!(
            machine.decoder_stats(q),
            dec.stats(),
            "per-qubit stats diverged for qubit {q} ({backend:?}, d={d})"
        );
    }
    let stats = machine.stats();
    assert_eq!(stats.cycles, cycles as u64);
    assert_eq!(stats.offchip_requests, total_offchip as u64);
    assert!(total_offchip > 0, "trace must exercise the off-chip path ({backend:?}, d={d}, p={p})");
    assert!(stats.frame_bytes >= 16 * stats.offchip_requests, "every request ships a frame");
}

#[test]
fn dense_mwpm_matches_reference_loop() {
    for (d, cycles) in [(3u16, 1500), (5, 900), (9, 400)] {
        pin_machine_against_reference(
            DecoderBackend::DenseMwpm,
            d,
            4,
            1,
            cycles,
            6e-3,
            0xD0 + u64::from(d),
            true,
        );
    }
}

#[test]
fn sparse_blossom_matches_reference_loop() {
    for (d, cycles) in [(3u16, 1500), (5, 900), (9, 400)] {
        pin_machine_against_reference(
            DecoderBackend::SparseBlossom,
            d,
            4,
            1,
            cycles,
            6e-3,
            0x5B + u64::from(d),
            true,
        );
    }
}

#[test]
fn union_find_matches_reference_loop() {
    for (d, cycles) in [(3u16, 3000), (5, 900), (9, 400)] {
        pin_machine_against_reference(
            DecoderBackend::UnionFind,
            d,
            4,
            1,
            cycles,
            8e-3,
            0x0F + u64::from(d),
            true,
        );
    }
}

#[test]
fn lut_matches_reference_loop() {
    // The exhaustive table is practical only at small distances
    // (2^(d²-1)/2 entries) — exactly the paper's point; d ∈ {3, 5}
    // still covers the variant across multiple geometries.
    for (d, cycles) in [(3u16, 1500), (5, 600)] {
        pin_machine_against_reference(
            DecoderBackend::Lut,
            d,
            4,
            1,
            cycles,
            6e-3,
            0x107 + u64::from(d),
            true,
        );
    }
}

#[test]
fn custom_backend_matches_reference_loop() {
    // No feedback: the parity "decoder" does not actually correct, so
    // closing the loop would runaway the error state on both sides.
    for (d, cycles) in [(3u16, 600), (5, 400), (9, 200)] {
        pin_machine_against_reference(CUSTOM, d, 4, 2, cycles, 3e-3, 0xC5 + u64::from(d), false);
    }
}

#[test]
fn more_qubits_than_a_word_still_match() {
    // 70 qubits cross the 64-bit plane boundary — the word-parallel
    // filter must stay exact past the first word.
    pin_machine_against_reference(DecoderBackend::DenseMwpm, 3, 70, 3, 300, 6e-3, 0x70, true);
}
