//! The machine tier: many logical qubits, one batched packed pipeline,
//! one transport-metered off-chip link.
//!
//! [`BtwcMachine`] is the redesigned machine-level entry point (the
//! paper's Figs. 9/16 workload). It differs from the deprecated
//! [`crate::BtwcSystem`] on three seams:
//!
//! * **Batched packed ingestion** — one [`SyndromeBatch`] per cycle
//!   (one qubit-indexed [`PackedBits`] plane per ancilla) instead of
//!   per-qubit `Vec<bool>` rounds. The sticky filter and the "who needs
//!   decoding at all" check run word-parallel across the whole machine
//!   ([`btwc_clique::BatchFrontend`]), so the >90%-quiet common case
//!   costs no per-qubit work.
//! * **Unified backend selection** — one [`DecoderBackend`] picks the
//!   shared room-temperature decoder (dense MWPM, sparse blossom,
//!   union-find, LUT, or a custom factory), the same selector every
//!   other tier consumes.
//! * **Transport integration** — every off-chip escalation is framed as
//!   a real [`DecodeRequest`], crosses the (simulated) refrigerator
//!   boundary as wire bytes, is parsed back, and only then decoded; the
//!   shared link is a [`QueueSim`], so [`MachineStats`] reports genuine
//!   stall, backlog, and frame-byte figures instead of a bare request
//!   count.
//!
//! The batched step is **bit-identical** (outcomes and stats) to
//! running every qubit through its own [`crate::BtwcDecoder`] — pinned
//! by `tests/machine_equivalence.rs` for every [`DecoderBackend`].

use btwc_bandwidth::{DecodeRequest, QueueSim};
use btwc_clique::{BatchFrontend, CliqueDecision};
use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_syndrome::{BatchHistory, PackedBits, RoundHistory, SyndromeBatch};

use crate::decoder::{BtwcOutcome, ComplexDecoder, DecoderBackend, DecoderStats};

/// What happened across the whole machine in one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineCycle {
    /// Per-qubit outcomes for this cycle, indexed by logical qubit.
    pub outcomes: Vec<BtwcOutcome>,
    /// Off-chip decode requests issued this cycle.
    pub offchip_requests: usize,
    /// Wire bytes shipped across the link this cycle (encoded
    /// [`DecodeRequest`] frames).
    pub frame_bytes: usize,
    /// Whether this cycle was a stall (idle-gate insertion, Sec. 5.2).
    pub stalled: bool,
}

/// Aggregate counters of a [`BtwcMachine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MachineStats {
    /// Total cycles elapsed (useful + stall).
    pub cycles: u64,
    /// Stall cycles inserted.
    pub stalls: u64,
    /// Total off-chip decode requests.
    pub offchip_requests: u64,
    /// Total wire bytes shipped as [`DecodeRequest`] frames.
    pub frame_bytes: u64,
    /// Decode requests still waiting after the last cycle's service.
    pub backlog: u64,
    /// Largest backlog left waiting after any cycle's service.
    pub peak_backlog: u64,
}

impl MachineStats {
    /// Relative execution-time increase from stalling — the y-axis of
    /// Fig. 16. 0.10 means the program runs 10% longer.
    #[must_use]
    pub fn execution_time_increase(&self) -> f64 {
        let useful = self.cycles - self.stalls;
        if useful == 0 {
            return f64::INFINITY;
        }
        self.cycles as f64 / useful as f64 - 1.0
    }
}

/// Per-qubit escalation counters (cycle totals live machine-wide).
#[derive(Debug, Clone, Copy, Default)]
struct QubitCounters {
    onchip: u64,
    offchip: u64,
}

/// Builder for [`BtwcMachine`] (filter depth, window size, backend,
/// link bandwidth).
#[derive(Debug)]
pub struct MachineBuilder<'a> {
    code: &'a SurfaceCode,
    ty: StabilizerType,
    num_qubits: usize,
    bandwidth: usize,
    clique_rounds: usize,
    window_rounds: usize,
    backend: DecoderBackend,
}

impl<'a> MachineBuilder<'a> {
    fn new(code: &'a SurfaceCode, ty: StabilizerType, num_qubits: usize, bandwidth: usize) -> Self {
        Self {
            code,
            ty,
            num_qubits,
            bandwidth,
            clique_rounds: 2,
            window_rounds: usize::from(code.distance()).max(4) * 4,
            backend: DecoderBackend::default(),
        }
    }

    /// Sets the Clique sticky-filter depth (default 2).
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn clique_rounds(mut self, rounds: usize) -> Self {
        assert!(rounds >= 1, "sticky filter needs at least one round");
        self.clique_rounds = rounds;
        self
    }

    /// Sets the off-chip window capacity in rounds (default `4d`).
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn window_rounds(mut self, rounds: usize) -> Self {
        assert!(rounds >= 1, "window needs at least one round");
        self.window_rounds = rounds;
        self
    }

    /// Selects the shared off-chip decoder backend (default: dense
    /// MWPM) — the unified [`DecoderBackend`] selector.
    #[must_use]
    pub fn backend(mut self, backend: DecoderBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Builds the machine.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0` or `bandwidth == 0`.
    #[must_use]
    pub fn build(self) -> BtwcMachine {
        assert!(self.num_qubits > 0, "need at least one logical qubit");
        let n_anc = self.code.num_ancillas(self.ty);
        let frontend =
            BatchFrontend::with_rounds(self.code, self.ty, self.num_qubits, self.clique_rounds);
        BtwcMachine {
            num_qubits: self.num_qubits,
            num_ancillas: n_anc,
            window_rounds: self.window_rounds,
            frontend,
            window_ring: BatchHistory::new(self.num_qubits, n_anc, self.window_rounds),
            window_len: vec![0; self.num_qubits],
            pending: PackedBits::new(self.num_qubits),
            raw_active: PackedBits::new(self.num_qubits),
            work: PackedBits::new(self.num_qubits),
            offchip: self.backend.build(self.code, self.ty),
            backend_name: self.backend.name(),
            window: RoundHistory::new(n_anc, self.window_rounds),
            wire: RoundHistory::new(n_anc, self.window_rounds),
            queue: QueueSim::new(self.bandwidth),
            stalled: false,
            stats: MachineStats::default(),
            per_qubit: vec![QubitCounters::default(); self.num_qubits],
            ingest: Some(SyndromeBatch::new(self.num_qubits, n_anc)),
        }
    }
}

/// `n` logical qubits decoded by one batched pipeline behind one
/// provisioned off-chip link — see the module docs.
///
/// Feed one [`SyndromeBatch`] per cycle to [`BtwcMachine::step`] (or
/// per-qubit rounds to [`BtwcMachine::step_rounds`] on cold paths).
/// When a cycle's complex-decode demand exceeds the link bandwidth, the
/// following cycle is a stall: the waveform generator issues identity
/// gates (Fig. 10), no program progress is made, but errors — and
/// therefore new decode requests — keep arriving.
pub struct BtwcMachine {
    num_qubits: usize,
    num_ancillas: usize,
    window_rounds: usize,
    frontend: BatchFrontend,
    /// One machine-wide ring of raw batched rounds. Per-qubit decode
    /// windows are *virtual*: each qubit only tracks its window length
    /// ([`BtwcMachine::window_len`]); the actual rounds are gathered
    /// out of this shared ring only when an escalation consumes them,
    /// so the per-cycle cost is a plane-by-plane word copy for the
    /// whole machine instead of a transpose per active qubit.
    window_ring: BatchHistory,
    /// Cycles currently in qubit `q`'s (virtual) window — mirrors
    /// `BtwcDecoder`'s slide-on-full / skip-while-empty-and-zero
    /// bookkeeping exactly (saturates at `window_rounds`; the gather
    /// then yields the ring's most recent rounds).
    window_len: Vec<usize>,
    /// Bit `q` set iff `window_len[q] > 0` (so quiet qubits with empty
    /// windows cost no per-qubit work at all).
    pending: PackedBits,
    /// Scratch: qubits whose raw round this cycle is non-zero.
    raw_active: PackedBits,
    /// Scratch: `raw_active | pending` — qubits needing window work.
    work: PackedBits,
    /// The shared room-temperature decoder all qubits' requests hit.
    offchip: Box<dyn ComplexDecoder + Send + Sync>,
    backend_name: &'static str,
    /// Send-side scratch: one qubit's window materialized out of the
    /// ring for framing.
    window: RoundHistory,
    /// Receive-side window rebuilt from each parsed frame.
    wire: RoundHistory,
    queue: QueueSim,
    stalled: bool,
    stats: MachineStats,
    per_qubit: Vec<QubitCounters>,
    /// Reused ingestion batch for [`BtwcMachine::step_rounds`] (taken
    /// out of the `Option` for the duration of the step so the
    /// borrow-checker lets it feed `step`; never `None` between calls).
    ingest: Option<SyndromeBatch>,
}

impl std::fmt::Debug for BtwcMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BtwcMachine")
            .field("num_qubits", &self.num_qubits)
            .field("num_ancillas", &self.num_ancillas)
            .field("backend", &self.backend_name)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl BtwcMachine {
    /// Starts configuring a machine of `num_qubits` logical qubits
    /// behind a link of `bandwidth` decodes/cycle.
    #[must_use]
    pub fn builder(
        code: &SurfaceCode,
        ty: StabilizerType,
        num_qubits: usize,
        bandwidth: usize,
    ) -> MachineBuilder<'_> {
        MachineBuilder::new(code, ty, num_qubits, bandwidth)
    }

    /// Number of logical qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Ancillas per qubit (the expected batch plane count).
    #[must_use]
    pub fn num_ancillas(&self) -> usize {
        self.num_ancillas
    }

    /// Short name of the selected [`DecoderBackend`].
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        self.backend_name
    }

    /// Whether the next cycle will be a stall.
    #[must_use]
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Aggregate counters.
    #[must_use]
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Lifetime counters of one qubit's pipeline, identical to what a
    /// standalone [`crate::BtwcDecoder`] fed the same stream would
    /// report.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    #[must_use]
    pub fn decoder_stats(&self, qubit: usize) -> DecoderStats {
        let q = &self.per_qubit[qubit];
        DecoderStats {
            cycles: self.stats.cycles,
            quiet: self.stats.cycles - q.onchip - q.offchip,
            onchip: q.onchip,
            offchip: q.offchip,
        }
    }

    /// Mean on-chip coverage across all qubits.
    #[must_use]
    pub fn mean_coverage(&self) -> f64 {
        let sum: f64 = (0..self.num_qubits).map(|q| self.decoder_stats(q).coverage()).sum();
        sum / self.num_qubits as f64
    }

    /// Advances one cycle with one machine-wide batched round.
    ///
    /// The rounds are always decoded (errors do not pause during
    /// stalls); the `stalled` flag in the returned [`MachineCycle`]
    /// reports whether this cycle executed program gates or idled.
    ///
    /// # Panics
    ///
    /// Panics if the batch dimensions mismatch the machine's.
    pub fn step(&mut self, batch: &SyndromeBatch) -> MachineCycle {
        assert_eq!(batch.num_qubits(), self.num_qubits, "one round per qubit");
        assert_eq!(batch.num_ancillas(), self.num_ancillas, "batch ancilla width mismatch");
        let was_stalled = self.stalled;
        let cycle_index = self.stats.cycles;

        // 1. Window bookkeeping, word-parallel triage: the shared ring
        //    takes one plane-by-plane copy of the whole machine round;
        //    per-qubit state is just a length counter, updated only for
        //    qubits with a non-zero raw round or an already-started
        //    window (mirrors BtwcDecoder::process_round_packed:
        //    slide-on-full, skip the push while empty-and-zero).
        batch.active_qubits_into(&mut self.raw_active);
        self.work.copy_from(&self.raw_active);
        self.work.or_with(&self.pending);
        if !self.work.is_zero() {
            // Fully-quiet machine cycles are not recorded: no qubit's
            // window includes them (every started window forces the
            // push via its pending bit).
            self.window_ring.push(batch);
        }
        for q in self.work.iter_set() {
            let len = &mut self.window_len[q];
            if *len == 0 && !self.raw_active.get(q) {
                self.pending.set(q, false);
            } else {
                // A full window slides instead of restarting: the length
                // saturates and the ring's most recent rounds are what
                // the next gather materializes.
                *len = (*len + 1).min(self.window_rounds);
                self.pending.set(q, true);
            }
        }

        // 2. One machine-wide sticky-filter pass; per-qubit decisions
        //    only where the filtered syndrome is non-zero.
        let mut outcomes = vec![BtwcOutcome::Quiet; self.num_qubits];
        let mut offchip_requests = 0usize;
        let mut frame_bytes = 0usize;
        let Self {
            frontend,
            window_ring,
            window_len,
            window,
            pending,
            offchip,
            wire,
            per_qubit,
            ..
        } = self;
        frontend.push_batch(batch, |q, decision| match decision {
            CliqueDecision::AllZeros => {}
            CliqueDecision::Trivial(c) => {
                per_qubit[q].onchip += 1;
                outcomes[q] = BtwcOutcome::OnChip(c);
            }
            CliqueDecision::Complex => {
                per_qubit[q].offchip += 1;
                offchip_requests += 1;
                // 3. Transport: materialize the qubit's window out of
                //    the ring, frame it, cross the link as bytes, parse
                //    it back, decode at room temperature.
                window_ring.gather_qubit_window(q, window_len[q], window);
                let request = DecodeRequest::from_history(q as u32, cycle_index, window);
                let frame = request.encode();
                frame_bytes += frame.len();
                let received = DecodeRequest::decode(&frame).expect("loopback frame must parse");
                received.replay_into(wire);
                let c = offchip.decode_stream_mut(wire);
                outcomes[q] = BtwcOutcome::OffChip(c);
                // Window consumed; the sticky filter clears itself once
                // the correction lands.
                window_len[q] = 0;
                pending.set(q, false);
            }
        });

        // 4. The shared link: overflow stalls the *next* cycle.
        let _record = self.queue.step(offchip_requests);
        let backlog = self.queue.backlog() as u64;
        self.stalled = backlog > 0;
        self.stats.cycles += 1;
        self.stats.stalls += u64::from(was_stalled);
        self.stats.offchip_requests += offchip_requests as u64;
        self.stats.frame_bytes += frame_bytes as u64;
        self.stats.backlog = backlog;
        self.stats.peak_backlog = self.stats.peak_backlog.max(backlog);
        MachineCycle { outcomes, offchip_requests, frame_bytes, stalled: was_stalled }
    }

    /// [`BtwcMachine::step`] from per-qubit bool rounds (cold-path
    /// convenience; packs into an internal batch first).
    ///
    /// # Panics
    ///
    /// Panics if `rounds.len() != num_qubits()` or any round has the
    /// wrong width.
    pub fn step_rounds(&mut self, rounds: &[Vec<bool>]) -> MachineCycle {
        assert_eq!(rounds.len(), self.num_qubits, "one round per qubit");
        let mut batch = self.ingest.take().expect("ingest batch present between calls");
        for (q, round) in rounds.iter().enumerate() {
            batch.set_qubit_round_bools(q, round);
        }
        let cycle = self.step(&batch);
        self.ingest = Some(batch);
        cycle
    }

    /// Clears the filter pipeline and every window (not the counters,
    /// the queue, or the stall state).
    pub fn reset_pipelines(&mut self) {
        self.frontend.reset();
        self.window_ring.reset();
        self.window_len.fill(0);
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_noise::{NoiseModel, PhenomenologicalNoise, SimRng};

    fn quiet_batch(code: &SurfaceCode, n: usize) -> SyndromeBatch {
        SyndromeBatch::new(n, code.num_ancillas(StabilizerType::X))
    }

    #[test]
    fn quiet_machine_never_stalls_and_ships_no_bytes() {
        let code = SurfaceCode::new(3);
        let mut machine = BtwcMachine::builder(&code, StabilizerType::X, 8, 2).build();
        let batch = quiet_batch(&code, 8);
        for _ in 0..20 {
            let cycle = machine.step(&batch);
            assert!(!cycle.stalled);
            assert_eq!(cycle.offchip_requests, 0);
            assert_eq!(cycle.frame_bytes, 0);
        }
        let stats = machine.stats();
        assert_eq!(stats.stalls, 0);
        assert_eq!(stats.frame_bytes, 0);
        assert_eq!(stats.peak_backlog, 0);
        assert!(stats.execution_time_increase().abs() < 1e-12);
        assert!((machine.mean_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overflow_stalls_next_cycle_and_surfaces_backlog() {
        let code = SurfaceCode::new(7);
        let ty = StabilizerType::X;
        // 4 qubits, bandwidth 1: force 2 simultaneous complex decodes.
        let mut machine = BtwcMachine::builder(&code, ty, 4, 1).build();
        let mut errors = vec![false; code.num_data_qubits()];
        errors[3 * 7 + 3] = true;
        errors[4 * 7 + 3] = true; // interior chain => complex
        let complex_round = code.syndrome_of(ty, &errors);
        let mut batch = quiet_batch(&code, 4);
        batch.set_qubit_round_bools(0, &complex_round);
        batch.set_qubit_round_bools(1, &complex_round);
        let c1 = machine.step(&batch); // filter filling; nothing yet
        assert_eq!(c1.offchip_requests, 0);
        let c2 = machine.step(&batch); // both flagged complex, bandwidth 1
        assert_eq!(c2.offchip_requests, 2);
        assert!(c2.frame_bytes > 0, "escalations must ship frames");
        assert!(!c2.stalled, "stall applies to the *next* cycle");
        assert_eq!(machine.stats().backlog, 1);
        assert_eq!(machine.stats().peak_backlog, 1);
        let c3 = machine.step(&quiet_batch(&code, 4));
        assert!(c3.stalled, "overflow must stall the following cycle");
        assert_eq!(machine.stats().stalls, 1);
        assert_eq!(machine.stats().backlog, 0, "the backlog drains");
        assert_eq!(machine.stats().peak_backlog, 1);
        // Both escalations got real corrections.
        for q in [0usize, 1] {
            let out = &c2.outcomes[q];
            assert!(out.went_offchip());
            let mut residual = errors.clone();
            out.correction().unwrap().apply_to(&mut residual);
            assert!(code.syndrome_of(ty, &residual).iter().all(|&s| !s));
        }
        assert_eq!(machine.decoder_stats(0).offchip, 1);
        assert_eq!(machine.decoder_stats(2).offchip, 0);
    }

    #[test]
    fn noisy_run_controls_errors_with_p99_style_bandwidth() {
        let code = SurfaceCode::new(3);
        let ty = StabilizerType::X;
        let n_qubits = 16;
        let mut machine = BtwcMachine::builder(&code, ty, n_qubits, 4).build();
        let noise = PhenomenologicalNoise::uniform(3e-3);
        let mut rng = SimRng::from_seed(0xE2E);
        let mut errors = vec![vec![false; code.num_data_qubits()]; n_qubits];
        let mut batch = quiet_batch(&code, n_qubits);
        for _ in 0..2000 {
            for (q, e) in errors.iter_mut().enumerate() {
                noise.sample_data_into(&mut rng, e);
                batch.set_qubit_round_bools(q, &code.syndrome_of(ty, e));
            }
            let cycle = machine.step(&batch);
            for (e, out) in errors.iter_mut().zip(&cycle.outcomes) {
                if let Some(c) = out.correction() {
                    c.apply_to(e);
                }
            }
        }
        assert!(
            machine.stats().execution_time_increase() < 0.25,
            "execution increase {}",
            machine.stats().execution_time_increase()
        );
        for e in &errors {
            let weight = code.syndrome_of(ty, e).iter().filter(|&&s| s).count();
            assert!(weight <= 6, "runaway syndrome weight {weight}");
        }
        // The transport meter agrees with the escalation count: every
        // request ships at least the 16-byte header.
        let stats = machine.stats();
        assert!(stats.frame_bytes >= 16 * stats.offchip_requests);
    }

    #[test]
    fn step_rounds_matches_step() {
        let code = SurfaceCode::new(5);
        let ty = StabilizerType::X;
        let mut a = BtwcMachine::builder(&code, ty, 3, 2).build();
        let mut b = BtwcMachine::builder(&code, ty, 3, 2).build();
        let noise = PhenomenologicalNoise::uniform(8e-3);
        let mut rng = SimRng::from_seed(7);
        let mut errors = vec![vec![false; code.num_data_qubits()]; 3];
        let mut batch = quiet_batch(&code, 3);
        for _ in 0..300 {
            let rounds: Vec<Vec<bool>> = errors
                .iter_mut()
                .map(|e| {
                    noise.sample_data_into(&mut rng, e);
                    code.syndrome_of(ty, e)
                })
                .collect();
            for (q, round) in rounds.iter().enumerate() {
                batch.set_qubit_round_bools(q, round);
            }
            let ca = a.step(&batch);
            let cb = b.step_rounds(&rounds);
            assert_eq!(ca, cb);
            for (e, out) in errors.iter_mut().zip(&ca.outcomes) {
                if let Some(c) = out.correction() {
                    c.apply_to(e);
                }
            }
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    #[should_panic(expected = "one round per qubit")]
    fn wrong_batch_width_rejected() {
        let code = SurfaceCode::new(3);
        let mut machine = BtwcMachine::builder(&code, StabilizerType::X, 2, 1).build();
        let _ = machine.step(&quiet_batch(&code, 1));
    }
}
