//! The machine tier: many logical qubits, one batched packed pipeline,
//! one transport-metered off-chip link.
//!
//! [`BtwcMachine`] is the redesigned machine-level entry point (the
//! paper's Figs. 9/16 workload). It differs from the deprecated
//! [`crate::BtwcSystem`] on three seams:
//!
//! * **Batched packed ingestion** — one [`SyndromeBatch`] per cycle
//!   (one qubit-indexed [`PackedBits`] plane per ancilla) instead of
//!   per-qubit `Vec<bool>` rounds. The sticky filter and the "who needs
//!   decoding at all" check run word-parallel across the whole machine
//!   ([`btwc_clique::BatchFrontend`]), so the >90%-quiet common case
//!   costs no per-qubit work.
//! * **Unified backend selection** — one [`DecoderBackend`] picks the
//!   shared room-temperature decoder (dense MWPM, sparse blossom,
//!   union-find, LUT, or a custom factory), the same selector every
//!   other tier consumes.
//! * **Transport integration** — every off-chip escalation is framed as
//!   a real [`DecodeRequest`], crosses the (simulated) refrigerator
//!   boundary as wire bytes, is parsed back, and only then decoded; the
//!   shared link is a [`QueueSim`], so [`MachineStats`] reports genuine
//!   stall, backlog, and frame-byte figures instead of a bare request
//!   count.
//!
//! The batched step is **bit-identical** (outcomes and stats) to
//! running every qubit through its own [`crate::BtwcDecoder`] — pinned
//! by `tests/machine_equivalence.rs` for every [`DecoderBackend`].

use std::collections::VecDeque;

use btwc_bandwidth::{
    DecodeRequest, FaultyLink, LinkFaultModel, LinkFaultStats, QueueSim, SeqStatus, SequenceTracker,
};
use btwc_clique::{BatchFrontend, CliqueDecision, CliqueDecoder};
use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_syndrome::{BatchHistory, PackedBits, RoundHistory, SyndromeBatch};
use btwc_telemetry::{Counter, CounterFamily, Domain, Histogram, MetricsRegistry, SpanTimer};

use crate::decoder::{BtwcOutcome, ComplexDecoder, DecoderBackend, DecoderStats};
use crate::service::{EscalationJob, PendingCycle, ServiceResponse};

/// What happened across the whole machine in one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineCycle {
    /// Per-qubit outcomes for this cycle, indexed by logical qubit.
    pub outcomes: Vec<BtwcOutcome>,
    /// Off-chip decode requests issued this cycle.
    pub offchip_requests: usize,
    /// Wire bytes shipped across the link this cycle (encoded
    /// [`DecodeRequest`] frames).
    pub frame_bytes: usize,
    /// Whether this cycle was a stall (idle-gate insertion, Sec. 5.2).
    pub stalled: bool,
}

/// Aggregate counters of a [`BtwcMachine`].
///
/// Since the telemetry rework this is a *snapshot facade*: the machine
/// keeps its running totals in private internals (plus, when a registry
/// is attached, live `machine.*` metrics) and
/// [`BtwcMachine::stats`] assembles this struct on demand, so existing
/// callers keep their five-counter view unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MachineStats {
    /// Total cycles elapsed (useful + stall).
    pub cycles: u64,
    /// Stall cycles inserted.
    pub stalls: u64,
    /// Total off-chip decode requests.
    pub offchip_requests: u64,
    /// Total wire bytes shipped as [`DecodeRequest`] frames.
    pub frame_bytes: u64,
    /// Decode requests still waiting after the last cycle's service.
    pub backlog: u64,
    /// Largest backlog left waiting after any cycle's service.
    pub peak_backlog: u64,
}

impl MachineStats {
    /// Relative execution-time increase from stalling — the y-axis of
    /// Fig. 16. 0.10 means the program runs 10% longer.
    ///
    /// A window with no useful cycles (all-stall, or no cycles at all)
    /// reports 0.0: there is no useful baseline to be relative to, and
    /// the previous `inf`/`NaN` poisoned downstream averages.
    #[must_use]
    pub fn execution_time_increase(&self) -> f64 {
        let useful = self.cycles - self.stalls;
        if useful == 0 {
            return 0.0;
        }
        self.cycles as f64 / useful as f64 - 1.0
    }
}

/// Running totals behind the [`MachineStats`] facade (the queue itself
/// owns the live backlog).
#[derive(Debug, Clone, Copy, Default)]
struct MachineCounters {
    cycles: u64,
    stalls: u64,
    offchip_requests: u64,
    frame_bytes: u64,
    peak_backlog: u64,
}

/// Receiver-side transport counters of a [`BtwcMachine`] — what the
/// machine *observed* crossing its link, fault class by fault class.
/// With a deterministic [`FaultyLink`] these match the link's own
/// injected-fault counts ([`BtwcMachine::link_stats`]) one for one,
/// pinned by `tests/fault_injection.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportStats {
    /// Frames that failed the CRC or structural parse (bit flips,
    /// truncation) and were NACKed.
    pub corrupted_frames: u64,
    /// Transmissions that delivered nothing.
    pub dropped_frames: u64,
    /// Clean second copies of an already-accepted frame, identified by
    /// their per-qubit sequence number.
    pub duplicated_frames: u64,
    /// Deliveries that arrived outside the reorder window and were
    /// discarded as stale.
    pub reordered_frames: u64,
    /// Retransmission attempts issued after NACKs/timeouts (each one
    /// consumed real link bandwidth and frame bytes).
    pub retransmitted_frames: u64,
    /// Escalations that exhausted their retry/deadline budget and fell
    /// back to the on-chip emergency correction
    /// ([`BtwcOutcome::Degraded`]).
    pub degraded_decodes: u64,
}

/// Cycle-domain metric handles recorded by [`BtwcMachine::step`] when a
/// registry is attached. The machine steps serially and every latency
/// here is derived from the cycle counter and the queue model, so all
/// of these are bit-reproducible for any `BTWC_WORKERS`.
#[derive(Debug, Clone)]
struct MachineTelemetry {
    cycles: Counter,
    stall_cycles: Counter,
    offchip_requests: Counter,
    frame_bytes: Counter,
    /// Link backlog left waiting after a cycle's service, sampled only on
    /// cycles that touched the link (escalations issued or backlog
    /// waiting) so a quiet cycle costs one atomic increment.
    queue_depth: Histogram,
    /// Encoded frame length of each escalation.
    frame_bytes_per_request: Histogram,
    /// Syndrome-arrival to correction-commit, in cycles: the rounds the
    /// escalated window sat on-chip plus the queue delay its request
    /// sees on the shared link. Wall domain (with the `wall-time`
    /// feature) measures the off-chip solve itself.
    escalation_latency: SpanTimer,
    /// Escalations per qubit.
    qubit_offchip: CounterFamily,
    /// Stall cycles charged to each qubit whose request was still
    /// waiting in the link backlog when the machine idled.
    qubit_stalls: CounterFamily,
    /// Frames NACKed for CRC/structural corruption.
    link_corrupted: Counter,
    /// Transmissions that delivered nothing.
    link_dropped: Counter,
    /// Clean duplicate deliveries discarded by sequence number.
    link_duplicated: Counter,
    /// Stale (reordered) deliveries discarded.
    link_reordered: Counter,
    /// Retransmission attempts issued.
    link_retransmitted: Counter,
    /// Retries needed per escalation that needed any (clean first
    /// attempts skip the sample, so `count` is the number of troubled
    /// escalations).
    link_retries: Histogram,
    /// Escalations resolved by the on-chip emergency fallback.
    degraded: Counter,
    /// The same, attributed per qubit.
    qubit_degraded: CounterFamily,
}

impl MachineTelemetry {
    fn register(registry: &MetricsRegistry, num_qubits: usize) -> Self {
        let c = |name: &str| registry.counter(name, Domain::Cycles);
        Self {
            cycles: c("machine.cycles"),
            stall_cycles: c("machine.stall_cycles"),
            offchip_requests: c("machine.offchip_requests"),
            frame_bytes: c("machine.frame_bytes"),
            queue_depth: registry.histogram("machine.queue_depth", Domain::Cycles),
            frame_bytes_per_request: registry
                .histogram("machine.frame_bytes_per_request", Domain::Cycles),
            escalation_latency: registry.span_timer("machine.escalation_latency"),
            qubit_offchip: registry.counter_family(
                "machine.qubit_offchip_requests",
                Domain::Cycles,
                num_qubits,
            ),
            qubit_stalls: registry.counter_family(
                "machine.qubit_stall_cycles",
                Domain::Cycles,
                num_qubits,
            ),
            link_corrupted: c("machine.link.corrupted_frames"),
            link_dropped: c("machine.link.dropped_frames"),
            link_duplicated: c("machine.link.duplicated_frames"),
            link_reordered: c("machine.link.reordered_frames"),
            link_retransmitted: c("machine.link.retransmitted_frames"),
            link_retries: registry.histogram("machine.link.retries", Domain::Cycles),
            degraded: c("machine.degraded_decodes"),
            qubit_degraded: registry.counter_family(
                "machine.qubit_degraded_decodes",
                Domain::Cycles,
                num_qubits,
            ),
        }
    }
}

/// Per-qubit escalation counters (cycle totals live machine-wide).
#[derive(Debug, Clone, Copy, Default)]
struct QubitCounters {
    onchip: u64,
    offchip: u64,
    degraded: u64,
}

/// Builder for [`BtwcMachine`] (filter depth, window size, backend,
/// link bandwidth).
#[derive(Debug)]
pub struct MachineBuilder<'a> {
    code: &'a SurfaceCode,
    ty: StabilizerType,
    num_qubits: usize,
    bandwidth: usize,
    clique_rounds: usize,
    window_rounds: usize,
    backend: DecoderBackend,
    telemetry: Option<MetricsRegistry>,
    fault_model: LinkFaultModel,
    link_seed: u64,
    max_retries: usize,
    retry_timeout_cycles: u64,
    deadline_cycles: u64,
}

impl<'a> MachineBuilder<'a> {
    fn new(code: &'a SurfaceCode, ty: StabilizerType, num_qubits: usize, bandwidth: usize) -> Self {
        Self {
            code,
            ty,
            num_qubits,
            bandwidth,
            clique_rounds: 2,
            window_rounds: usize::from(code.distance()).max(4) * 4,
            backend: DecoderBackend::default(),
            telemetry: None,
            fault_model: LinkFaultModel::none(),
            link_seed: 0xB7C2,
            max_retries: 4,
            retry_timeout_cycles: 4,
            deadline_cycles: 64,
        }
    }

    /// Sets the Clique sticky-filter depth (default 2).
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn clique_rounds(mut self, rounds: usize) -> Self {
        assert!(rounds >= 1, "sticky filter needs at least one round");
        self.clique_rounds = rounds;
        self
    }

    /// Sets the off-chip window capacity in rounds (default `4d`).
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn window_rounds(mut self, rounds: usize) -> Self {
        assert!(rounds >= 1, "window needs at least one round");
        self.window_rounds = rounds;
        self
    }

    /// Selects the shared off-chip decoder backend (default: dense
    /// MWPM) — the unified [`DecoderBackend`] selector.
    #[must_use]
    pub fn backend(mut self, backend: DecoderBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Attaches a metrics registry to the built machine (see
    /// [`BtwcMachine::attach_telemetry`]).
    #[must_use]
    pub fn telemetry(mut self, registry: &MetricsRegistry) -> Self {
        self.telemetry = Some(registry.clone());
        self
    }

    /// Injects link faults into every off-chip transmission (default:
    /// the fault-free [`LinkFaultModel::none`], which draws nothing
    /// from the link RNG — a machine built with the default model is
    /// bit-identical to one with any explicit all-zero model,
    /// regardless of [`MachineBuilder::link_seed`]).
    #[must_use]
    pub fn fault_model(mut self, model: LinkFaultModel) -> Self {
        self.fault_model = model;
        self
    }

    /// Seeds the link's deterministic fault RNG (default `0xB7C2`).
    /// The machine steps serially, so the same seed reproduces the
    /// same fault sequence for any `BTWC_WORKERS`.
    #[must_use]
    pub fn link_seed(mut self, seed: u64) -> Self {
        self.link_seed = seed;
        self
    }

    /// Maximum retransmissions per escalation before the machine gives
    /// up and degrades (default 4).
    #[must_use]
    pub fn max_retries(mut self, retries: usize) -> Self {
        self.max_retries = retries;
        self
    }

    /// Base NACK/timeout backoff in cycles; doubles per retry
    /// (default 4).
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0` (the backoff must make progress).
    #[must_use]
    pub fn retry_timeout_cycles(mut self, cycles: u64) -> Self {
        assert!(cycles > 0, "retry timeout must be positive");
        self.retry_timeout_cycles = cycles;
        self
    }

    /// Total cycles an escalation may spend waiting on transport
    /// (backoff + delay jitter; queue service time is excluded) before
    /// it degrades (default 64).
    #[must_use]
    pub fn deadline_cycles(mut self, cycles: u64) -> Self {
        self.deadline_cycles = cycles;
        self
    }

    /// Builds the machine.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0` or `bandwidth == 0`.
    #[must_use]
    pub fn build(self) -> BtwcMachine {
        assert!(self.num_qubits > 0, "need at least one logical qubit");
        let n_anc = self.code.num_ancillas(self.ty);
        let frontend =
            BatchFrontend::with_rounds(self.code, self.ty, self.num_qubits, self.clique_rounds);
        let emergency = frontend.decoder().clone();
        let mut machine = BtwcMachine {
            num_qubits: self.num_qubits,
            num_ancillas: n_anc,
            window_rounds: self.window_rounds,
            frontend,
            window_ring: BatchHistory::new(self.num_qubits, n_anc, self.window_rounds),
            window_len: vec![0; self.num_qubits],
            pending: PackedBits::new(self.num_qubits),
            raw_active: PackedBits::new(self.num_qubits),
            work: PackedBits::new(self.num_qubits),
            offchip: self.backend.build(self.code, self.ty),
            backend_name: self.backend.name(),
            window: RoundHistory::new(n_anc, self.window_rounds),
            wire: RoundHistory::new(n_anc, self.window_rounds),
            queue: QueueSim::new(self.bandwidth),
            stalled: false,
            counters: MachineCounters::default(),
            transport: TransportStats::default(),
            per_qubit: vec![QubitCounters::default(); self.num_qubits],
            backlog_qubits: VecDeque::new(),
            telemetry: None,
            ingest: Some(SyndromeBatch::new(self.num_qubits, n_anc)),
            emergency,
            link: FaultyLink::new(self.fault_model, self.link_seed),
            next_seq: vec![0; self.num_qubits],
            trackers: (0..self.num_qubits).map(|_| SequenceTracker::new()).collect(),
            max_retries: self.max_retries,
            retry_timeout_cycles: self.retry_timeout_cycles,
            deadline_cycles: self.deadline_cycles,
        };
        if let Some(registry) = &self.telemetry {
            machine.attach_telemetry(registry);
        }
        machine
    }
}

/// `n` logical qubits decoded by one batched pipeline behind one
/// provisioned off-chip link — see the module docs.
///
/// Feed one [`SyndromeBatch`] per cycle to [`BtwcMachine::step`] (or
/// per-qubit rounds to [`BtwcMachine::step_rounds`] on cold paths).
/// When a cycle's complex-decode demand exceeds the link bandwidth, the
/// following cycle is a stall: the waveform generator issues identity
/// gates (Fig. 10), no program progress is made, but errors — and
/// therefore new decode requests — keep arriving.
pub struct BtwcMachine {
    num_qubits: usize,
    num_ancillas: usize,
    window_rounds: usize,
    frontend: BatchFrontend,
    /// One machine-wide ring of raw batched rounds. Per-qubit decode
    /// windows are *virtual*: each qubit only tracks its window length
    /// ([`BtwcMachine::window_len`]); the actual rounds are gathered
    /// out of this shared ring only when an escalation consumes them,
    /// so the per-cycle cost is a plane-by-plane word copy for the
    /// whole machine instead of a transpose per active qubit.
    window_ring: BatchHistory,
    /// Cycles currently in qubit `q`'s (virtual) window — mirrors
    /// `BtwcDecoder`'s slide-on-full / skip-while-empty-and-zero
    /// bookkeeping exactly (saturates at `window_rounds`; the gather
    /// then yields the ring's most recent rounds).
    window_len: Vec<usize>,
    /// Bit `q` set iff `window_len[q] > 0` (so quiet qubits with empty
    /// windows cost no per-qubit work at all).
    pending: PackedBits,
    /// Scratch: qubits whose raw round this cycle is non-zero.
    raw_active: PackedBits,
    /// Scratch: `raw_active | pending` — qubits needing window work.
    work: PackedBits,
    /// The shared room-temperature decoder all qubits' requests hit.
    offchip: Box<dyn ComplexDecoder + Send + Sync>,
    backend_name: &'static str,
    /// Send-side scratch: one qubit's window materialized out of the
    /// ring for framing.
    window: RoundHistory,
    /// Receive-side window rebuilt from each parsed frame.
    wire: RoundHistory,
    queue: QueueSim,
    stalled: bool,
    counters: MachineCounters,
    transport: TransportStats,
    per_qubit: Vec<QubitCounters>,
    /// On-chip emergency decoder for degraded escalations (the batch
    /// frontend's Clique geometry, cloned so it stays usable while the
    /// frontend is mutably borrowed mid-step).
    emergency: CliqueDecoder,
    /// The off-chip link every escalation crosses. Defaults to
    /// [`FaultyLink::perfect`]-equivalent behavior (fault-free model),
    /// which draws nothing from its RNG.
    link: FaultyLink,
    /// Sender-side per-qubit sequence numbers: the next fresh request's
    /// number (retransmissions reuse the in-flight number).
    next_seq: Vec<u32>,
    /// Receiver-side per-qubit duplicate/reorder detection.
    trackers: Vec<SequenceTracker>,
    max_retries: usize,
    retry_timeout_cycles: u64,
    deadline_cycles: u64,
    /// FIFO mirror of the link queue's membership: the qubit behind
    /// each waiting request, in service order — what per-qubit stall
    /// attribution charges on a stall cycle.
    backlog_qubits: VecDeque<u32>,
    /// Optional metric handles (see [`BtwcMachine::attach_telemetry`]).
    telemetry: Option<MachineTelemetry>,
    /// Reused ingestion batch for [`BtwcMachine::step_rounds`] (taken
    /// out of the `Option` for the duration of the step so the
    /// borrow-checker lets it feed `step`; never `None` between calls).
    ingest: Option<SyndromeBatch>,
}

impl std::fmt::Debug for BtwcMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BtwcMachine")
            .field("num_qubits", &self.num_qubits)
            .field("num_ancillas", &self.num_ancillas)
            .field("backend", &self.backend_name)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl BtwcMachine {
    /// Starts configuring a machine of `num_qubits` logical qubits
    /// behind a link of `bandwidth` decodes/cycle.
    #[must_use]
    pub fn builder(
        code: &SurfaceCode,
        ty: StabilizerType,
        num_qubits: usize,
        bandwidth: usize,
    ) -> MachineBuilder<'_> {
        MachineBuilder::new(code, ty, num_qubits, bandwidth)
    }

    /// Number of logical qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Ancillas per qubit (the expected batch plane count).
    #[must_use]
    pub fn num_ancillas(&self) -> usize {
        self.num_ancillas
    }

    /// Short name of the selected [`DecoderBackend`].
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        self.backend_name
    }

    /// Whether the next cycle will be a stall.
    #[must_use]
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Aggregate counters, assembled from the machine's internals (see
    /// [`MachineStats`]).
    #[must_use]
    pub fn stats(&self) -> MachineStats {
        MachineStats {
            cycles: self.counters.cycles,
            stalls: self.counters.stalls,
            offchip_requests: self.counters.offchip_requests,
            frame_bytes: self.counters.frame_bytes,
            backlog: self.queue.backlog() as u64,
            peak_backlog: self.counters.peak_backlog,
        }
    }

    /// Receiver-side transport counters: what this machine observed on
    /// its link, fault class by fault class (see [`TransportStats`]).
    #[must_use]
    pub fn transport_stats(&self) -> TransportStats {
        self.transport
    }

    /// Sender-side injected-fault counters of the underlying
    /// [`FaultyLink`] — the ground truth [`TransportStats`] is checked
    /// against.
    #[must_use]
    pub fn link_stats(&self) -> LinkFaultStats {
        self.link.stats()
    }

    /// The link fault model in force.
    #[must_use]
    pub fn fault_model(&self) -> &LinkFaultModel {
        self.link.model()
    }

    /// Degraded decodes charged to one qubit (escalations resolved by
    /// the on-chip emergency fallback).
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    #[must_use]
    pub fn degraded_decodes(&self, qubit: usize) -> u64 {
        self.per_qubit[qubit].degraded
    }

    /// Attach a metrics registry: from here on every step records the
    /// machine's cycle/stall/escalation counters, the per-cycle link
    /// queue depth, per-escalation frame bytes and arrival-to-commit
    /// latency in cycles, and per-qubit escalation and stall
    /// attribution under the `machine.` prefix — and the off-chip
    /// backend records its own internals (e.g. `sparse.*`) into the
    /// same registry. All machine metrics are cycle-domain.
    pub fn attach_telemetry(&mut self, registry: &MetricsRegistry) {
        self.telemetry = Some(MachineTelemetry::register(registry, self.num_qubits));
        self.offchip.attach_telemetry(registry);
    }

    /// Lifetime counters of one qubit's pipeline, identical to what a
    /// standalone [`crate::BtwcDecoder`] fed the same stream would
    /// report.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    #[must_use]
    pub fn decoder_stats(&self, qubit: usize) -> DecoderStats {
        let q = &self.per_qubit[qubit];
        DecoderStats {
            cycles: self.counters.cycles,
            quiet: self.counters.cycles - q.onchip - q.offchip,
            onchip: q.onchip,
            offchip: q.offchip,
        }
    }

    /// Mean on-chip coverage across all qubits.
    #[must_use]
    pub fn mean_coverage(&self) -> f64 {
        let sum: f64 = (0..self.num_qubits).map(|q| self.decoder_stats(q).coverage()).sum();
        sum / self.num_qubits as f64
    }

    /// Advances one cycle with one machine-wide batched round.
    ///
    /// The rounds are always decoded (errors do not pause during
    /// stalls); the `stalled` flag in the returned [`MachineCycle`]
    /// reports whether this cycle executed program gates or idled.
    ///
    /// Since the decode-farm split this is exactly
    /// [`BtwcMachine::step_deferred`] + an inline decode of every
    /// escalation job on the machine's own backend +
    /// [`BtwcMachine::complete`] — the reference behavior the farm
    /// conformance harness pins itself to.
    ///
    /// # Panics
    ///
    /// Panics if the batch dimensions mismatch the machine's.
    pub fn step(&mut self, batch: &SyndromeBatch) -> MachineCycle {
        let pending = self.step_deferred(batch);
        let Self { wire, offchip, telemetry, .. } = self;
        let telemetry = telemetry.as_ref();
        let responses: Vec<ServiceResponse> = pending
            .jobs
            .iter()
            .map(|job| {
                job.request.replay_into(wire);
                let correction = {
                    let _wall = telemetry.map(|t| t.escalation_latency.wall_guard());
                    offchip.decode_stream_mut(wire)
                };
                ServiceResponse::Decoded { correction, queue_delay_cycles: 0 }
            })
            .collect();
        self.complete(pending, responses)
    }

    /// The submission half of [`BtwcMachine::step`]: runs the whole
    /// cycle — triage, sticky filter, transport (retries, deadline,
    /// degradation on transport failure), link-queue accounting —
    /// *except* the off-chip solves, which come back as
    /// [`EscalationJob`]s in the returned [`PendingCycle`] for a decode
    /// service to resolve. Finish the cycle with
    /// [`BtwcMachine::complete`] before stepping again, so outcomes and
    /// telemetry land in cycle order.
    ///
    /// # Panics
    ///
    /// Panics if the batch dimensions mismatch the machine's.
    pub fn step_deferred(&mut self, batch: &SyndromeBatch) -> PendingCycle {
        assert_eq!(batch.num_qubits(), self.num_qubits, "one round per qubit");
        assert_eq!(batch.num_ancillas(), self.num_ancillas, "batch ancilla width mismatch");
        let was_stalled = self.stalled;
        let cycle_index = self.counters.cycles;
        if was_stalled {
            // Per-qubit stall attribution: this idle cycle is charged
            // to every qubit whose request is still waiting on the
            // link.
            if let Some(tel) = &self.telemetry {
                for &q in &self.backlog_qubits {
                    tel.qubit_stalls.inc(q as usize);
                }
            }
        }

        // 1. Window bookkeeping, word-parallel triage: the shared ring
        //    takes one plane-by-plane copy of the whole machine round;
        //    per-qubit state is just a length counter, updated only for
        //    qubits with a non-zero raw round or an already-started
        //    window (mirrors BtwcDecoder::process_round_packed:
        //    slide-on-full, skip the push while empty-and-zero).
        batch.active_qubits_into(&mut self.raw_active);
        self.work.copy_from(&self.raw_active);
        self.work.or_with(&self.pending);
        if !self.work.is_zero() {
            // Fully-quiet machine cycles are not recorded: no qubit's
            // window includes them (every started window forces the
            // push via its pending bit).
            self.window_ring.push(batch);
        }
        for q in self.work.iter_set() {
            let len = &mut self.window_len[q];
            if *len == 0 && !self.raw_active.get(q) {
                self.pending.set(q, false);
            } else {
                // A full window slides instead of restarting: the length
                // saturates and the ring's most recent rounds are what
                // the next gather materializes.
                *len = (*len + 1).min(self.window_rounds);
                self.pending.set(q, true);
            }
        }

        // 2. One machine-wide sticky-filter pass; per-qubit decisions
        //    only where the filtered syndrome is non-zero.
        let mut outcomes = vec![BtwcOutcome::Quiet; self.num_qubits];
        let mut jobs: Vec<EscalationJob> = Vec::new();
        let mut offchip_requests = 0usize;
        let mut link_arrivals = 0usize;
        let mut frame_bytes = 0usize;
        let backlog_pre = self.queue.backlog() as u64;
        let link_bandwidth = self.queue.bandwidth() as u64;
        let max_retries = self.max_retries;
        let retry_timeout_cycles = self.retry_timeout_cycles;
        let deadline_cycles = self.deadline_cycles;
        let Self {
            frontend,
            window_ring,
            window_len,
            window,
            pending,
            per_qubit,
            backlog_qubits,
            telemetry,
            transport,
            emergency,
            link,
            next_seq,
            trackers,
            ..
        } = self;
        let telemetry = telemetry.as_ref();
        frontend.push_batch(batch, |q, decision, filtered| match decision {
            CliqueDecision::AllZeros => {}
            CliqueDecision::Trivial(c) => {
                per_qubit[q].onchip += 1;
                outcomes[q] = BtwcOutcome::OnChip(c);
            }
            CliqueDecision::Complex => {
                per_qubit[q].offchip += 1;
                let first_position = backlog_pre + link_arrivals as u64;
                offchip_requests += 1;
                // 3. Transport: materialize the qubit's window out of
                //    the ring, frame it (v2: CRC + per-qubit sequence
                //    number), and push it through the possibly-faulty
                //    link until a clean copy arrives or the retry /
                //    deadline budget is spent.
                window_ring.gather_qubit_window(q, window_len[q], window);
                let seq = next_seq[q];
                let request =
                    DecodeRequest::from_history(q as u32, cycle_index, window).with_seq(seq);
                let frame = request.encode_v2();
                if let Some(tel) = telemetry {
                    tel.frame_bytes_per_request.record(frame.len() as u64);
                }
                let mut attempts = 0usize;
                let mut wait_cycles = 0u64;
                let resolved = loop {
                    attempts += 1;
                    link_arrivals += 1;
                    frame_bytes += frame.len();
                    backlog_qubits.push_back(q as u32);
                    let tx = link.transmit(&frame);
                    wait_cycles += tx.delay_cycles;
                    // The deadline is a hard transport budget (backoff
                    // + delay jitter, per `deadline_cycles`): a copy
                    // delivered past it is too late to commit, so the
                    // escalation degrades instead.
                    let deadline_blown = wait_cycles > deadline_cycles;
                    if tx.deliveries.is_empty() {
                        transport.dropped_frames += 1;
                        if let Some(tel) = telemetry {
                            tel.link_dropped.inc();
                        }
                    }
                    let mut accepted = None;
                    for delivery in &tx.deliveries {
                        if delivery.stale {
                            // Arrived outside the reorder window: the
                            // contents are out of date, discard.
                            transport.reordered_frames += 1;
                            if let Some(tel) = telemetry {
                                tel.link_reordered.inc();
                            }
                            continue;
                        }
                        // Strict v2 parse: the machine only ships v2
                        // frames, and the auto-detecting parse would
                        // route a magic-byte flip to the CRC-less v1
                        // fallback, where a corrupted frame can parse
                        // as a garbage request instead of erroring.
                        match DecodeRequest::decode_v2(&delivery.bytes) {
                            Err(_) => {
                                // CRC or structural failure: bit flips
                                // and truncation land here. NACK.
                                transport.corrupted_frames += 1;
                                if let Some(tel) = telemetry {
                                    tel.link_corrupted.inc();
                                }
                            }
                            Ok(received) => match trackers[q].accept(received.seq) {
                                Ok(SeqStatus::Fresh) if deadline_blown => {
                                    // Clean, but jitter pushed the
                                    // arrival past the deadline:
                                    // discard and degrade below.
                                }
                                Ok(SeqStatus::Fresh) => {
                                    // The decode itself is deferred: the
                                    // accepted parse becomes an
                                    // EscalationJob below, resolved by
                                    // the decode service (or inline by
                                    // `step`).
                                    accepted = Some(received);
                                }
                                Ok(SeqStatus::Duplicate) | Err(_) => {
                                    // A clean second copy of an accepted
                                    // frame (a sequence gap cannot occur
                                    // over this loopback; counting it
                                    // here keeps the arm total).
                                    transport.duplicated_frames += 1;
                                    if let Some(tel) = telemetry {
                                        tel.link_duplicated.inc();
                                    }
                                }
                            },
                        }
                    }
                    if accepted.is_some() {
                        break accepted;
                    }
                    if deadline_blown || attempts > max_retries {
                        break None;
                    }
                    // Cycle-domain NACK/timeout backoff before the
                    // retransmit: exponential, bounded by the deadline.
                    wait_cycles += retry_timeout_cycles << (attempts - 1).min(32);
                    if wait_cycles > deadline_cycles {
                        break None;
                    }
                };
                let retries = (attempts - 1) as u64;
                transport.retransmitted_frames += retries;
                if let Some(tel) = telemetry {
                    tel.link_retransmitted.add(retries);
                    if retries > 0 {
                        tel.link_retries.record(retries);
                    }
                    tel.qubit_offchip.inc(q);
                }
                match resolved {
                    Some(received) => {
                        next_seq[q] = seq.wrapping_add(1);
                        // Arrival-to-commit latency base: the oldest
                        // round of the escalated window arrived
                        // `window_len[q] - 1` cycles ago, the FIFO link
                        // serves this request's first attempt's queue
                        // position at `bandwidth` per cycle, and
                        // transport faults added `wait_cycles` of
                        // backoff and jitter. `complete` records it
                        // (plus any service queue delay) when the
                        // correction commits.
                        let on_chip_wait = (window_len[q] as u64).saturating_sub(1);
                        let queue_delay = first_position / link_bandwidth;
                        jobs.push(EscalationJob {
                            qubit: q as u32,
                            request: received,
                            filtered: filtered.clone(),
                            latency_base: on_chip_wait + queue_delay + wait_cycles,
                            deadline_budget: deadline_cycles.saturating_sub(wait_cycles),
                        });
                    }
                    None => {
                        // Retry budget or deadline blown: fall back to
                        // the on-chip emergency correction so the
                        // machine keeps moving — the sticky filter
                        // re-escalates whatever residual survives.
                        transport.degraded_decodes += 1;
                        per_qubit[q].degraded += 1;
                        trackers[q].resync(seq.wrapping_add(1));
                        next_seq[q] = seq.wrapping_add(1);
                        if let Some(tel) = telemetry {
                            tel.degraded.inc();
                            tel.qubit_degraded.inc(q);
                        }
                        outcomes[q] =
                            BtwcOutcome::Degraded(emergency.emergency_correction(filtered));
                    }
                }
                // Window consumed; the sticky filter clears itself once
                // the correction lands.
                window_len[q] = 0;
                pending.set(q, false);
            }
        });

        // 4. The shared link: every attempt (fresh or retransmitted)
        //    consumed service slots; overflow stalls the *next* cycle.
        let record = self.queue.step(link_arrivals);
        self.backlog_qubits.drain(..record.processed.min(self.backlog_qubits.len()));
        let backlog = self.queue.backlog() as u64;
        debug_assert_eq!(self.backlog_qubits.len() as u64, backlog, "queue mirror out of sync");
        self.stalled = backlog > 0;
        self.counters.cycles += 1;
        self.counters.stalls += u64::from(was_stalled);
        self.counters.offchip_requests += offchip_requests as u64;
        self.counters.frame_bytes += frame_bytes as u64;
        self.counters.peak_backlog = self.counters.peak_backlog.max(backlog);
        if let Some(tel) = &self.telemetry {
            tel.cycles.inc();
            if was_stalled {
                tel.stall_cycles.inc();
            }
            tel.offchip_requests.add(offchip_requests as u64);
            tel.frame_bytes.add(frame_bytes as u64);
            // Sampled only on cycles that touch the link (requests issued or
            // backlog waiting): a quiet machine cycle is then a single
            // counter increment, and the all-zero samples the histogram
            // skips are recoverable as `cycles - count`.
            if link_arrivals > 0 || backlog > 0 {
                tel.queue_depth.record(backlog);
            }
        }
        PendingCycle { outcomes, offchip_requests, frame_bytes, stalled: was_stalled, jobs }
    }

    /// The resolution half of [`BtwcMachine::step`]: folds one
    /// [`ServiceResponse`] per [`EscalationJob`] (in
    /// [`PendingCycle::jobs`] order) back into the cycle — committing
    /// decoded corrections with their latency samples, degrading
    /// rejected jobs to the on-chip emergency correction. A missing
    /// response (a service that lost the job) degrades too, so the
    /// cycle always resolves.
    pub fn complete(
        &mut self,
        pending: PendingCycle,
        responses: Vec<ServiceResponse>,
    ) -> MachineCycle {
        let PendingCycle { mut outcomes, offchip_requests, frame_bytes, stalled, jobs } = pending;
        let mut responses = responses.into_iter();
        for job in jobs {
            let q = job.qubit as usize;
            match responses.next() {
                Some(ServiceResponse::Decoded { correction, queue_delay_cycles }) => {
                    if let Some(tel) = &self.telemetry {
                        tel.escalation_latency
                            .record_latency(job.latency_base + queue_delay_cycles);
                    }
                    outcomes[q] = BtwcOutcome::OffChip(correction);
                }
                Some(ServiceResponse::Rejected(_)) | None => {
                    // The frame survived transport (the sequence number
                    // is already consumed), but the service refused the
                    // decode: same graceful fallback as a transport
                    // failure — the sticky filter re-escalates whatever
                    // residual survives the emergency correction.
                    self.transport.degraded_decodes += 1;
                    self.per_qubit[q].degraded += 1;
                    if let Some(tel) = &self.telemetry {
                        tel.degraded.inc();
                        tel.qubit_degraded.inc(q);
                    }
                    outcomes[q] =
                        BtwcOutcome::Degraded(self.emergency.emergency_correction(&job.filtered));
                }
            }
        }
        MachineCycle { outcomes, offchip_requests, frame_bytes, stalled }
    }

    /// [`BtwcMachine::step`] from per-qubit bool rounds (cold-path
    /// convenience; packs into an internal batch first).
    ///
    /// # Panics
    ///
    /// Panics if `rounds.len() != num_qubits()` or any round has the
    /// wrong width.
    pub fn step_rounds(&mut self, rounds: &[Vec<bool>]) -> MachineCycle {
        assert_eq!(rounds.len(), self.num_qubits, "one round per qubit");
        // The scratch batch is only absent if a prior call unwound
        // mid-step; rebuilding it keeps this path panic-free without
        // changing the steady-state reuse.
        let mut batch = self
            .ingest
            .take()
            .unwrap_or_else(|| SyndromeBatch::new(self.num_qubits, self.num_ancillas));
        for (q, round) in rounds.iter().enumerate() {
            batch.set_qubit_round_bools(q, round);
        }
        let cycle = self.step(&batch);
        self.ingest = Some(batch);
        cycle
    }

    /// Clears the filter pipeline and every window (not the counters,
    /// the queue, or the stall state).
    pub fn reset_pipelines(&mut self) {
        self.frontend.reset();
        self.window_ring.reset();
        self.window_len.fill(0);
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_noise::{NoiseModel, PhenomenologicalNoise, SimRng};

    fn quiet_batch(code: &SurfaceCode, n: usize) -> SyndromeBatch {
        SyndromeBatch::new(n, code.num_ancillas(StabilizerType::X))
    }

    #[test]
    fn quiet_machine_never_stalls_and_ships_no_bytes() {
        let code = SurfaceCode::new(3);
        let mut machine = BtwcMachine::builder(&code, StabilizerType::X, 8, 2).build();
        let batch = quiet_batch(&code, 8);
        for _ in 0..20 {
            let cycle = machine.step(&batch);
            assert!(!cycle.stalled);
            assert_eq!(cycle.offchip_requests, 0);
            assert_eq!(cycle.frame_bytes, 0);
        }
        let stats = machine.stats();
        assert_eq!(stats.stalls, 0);
        assert_eq!(stats.frame_bytes, 0);
        assert_eq!(stats.peak_backlog, 0);
        assert!(stats.execution_time_increase().abs() < 1e-12);
        assert!((machine.mean_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overflow_stalls_next_cycle_and_surfaces_backlog() {
        let code = SurfaceCode::new(7);
        let ty = StabilizerType::X;
        // 4 qubits, bandwidth 1: force 2 simultaneous complex decodes.
        let mut machine = BtwcMachine::builder(&code, ty, 4, 1).build();
        let mut errors = vec![false; code.num_data_qubits()];
        errors[3 * 7 + 3] = true;
        errors[4 * 7 + 3] = true; // interior chain => complex
        let complex_round = code.syndrome_of(ty, &errors);
        let mut batch = quiet_batch(&code, 4);
        batch.set_qubit_round_bools(0, &complex_round);
        batch.set_qubit_round_bools(1, &complex_round);
        let c1 = machine.step(&batch); // filter filling; nothing yet
        assert_eq!(c1.offchip_requests, 0);
        let c2 = machine.step(&batch); // both flagged complex, bandwidth 1
        assert_eq!(c2.offchip_requests, 2);
        assert!(c2.frame_bytes > 0, "escalations must ship frames");
        assert!(!c2.stalled, "stall applies to the *next* cycle");
        assert_eq!(machine.stats().backlog, 1);
        assert_eq!(machine.stats().peak_backlog, 1);
        let c3 = machine.step(&quiet_batch(&code, 4));
        assert!(c3.stalled, "overflow must stall the following cycle");
        assert_eq!(machine.stats().stalls, 1);
        assert_eq!(machine.stats().backlog, 0, "the backlog drains");
        assert_eq!(machine.stats().peak_backlog, 1);
        // Both escalations got real corrections.
        for q in [0usize, 1] {
            let out = &c2.outcomes[q];
            assert!(out.went_offchip());
            let mut residual = errors.clone();
            out.correction().unwrap().apply_to(&mut residual);
            assert!(code.syndrome_of(ty, &residual).iter().all(|&s| !s));
        }
        assert_eq!(machine.decoder_stats(0).offchip, 1);
        assert_eq!(machine.decoder_stats(2).offchip, 0);
    }

    #[test]
    fn noisy_run_controls_errors_with_p99_style_bandwidth() {
        let code = SurfaceCode::new(3);
        let ty = StabilizerType::X;
        let n_qubits = 16;
        let mut machine = BtwcMachine::builder(&code, ty, n_qubits, 4).build();
        let noise = PhenomenologicalNoise::uniform(3e-3);
        let mut rng = SimRng::from_seed(0xE2E);
        let mut errors = vec![vec![false; code.num_data_qubits()]; n_qubits];
        let mut batch = quiet_batch(&code, n_qubits);
        for _ in 0..2000 {
            for (q, e) in errors.iter_mut().enumerate() {
                noise.sample_data_into(&mut rng, e);
                batch.set_qubit_round_bools(q, &code.syndrome_of(ty, e));
            }
            let cycle = machine.step(&batch);
            for (e, out) in errors.iter_mut().zip(&cycle.outcomes) {
                if let Some(c) = out.correction() {
                    c.apply_to(e);
                }
            }
        }
        assert!(
            machine.stats().execution_time_increase() < 0.25,
            "execution increase {}",
            machine.stats().execution_time_increase()
        );
        for e in &errors {
            let weight = code.syndrome_of(ty, e).iter().filter(|&&s| s).count();
            assert!(weight <= 6, "runaway syndrome weight {weight}");
        }
        // The transport meter agrees with the escalation count: every
        // request ships at least the 16-byte header.
        let stats = machine.stats();
        assert!(stats.frame_bytes >= 16 * stats.offchip_requests);
    }

    #[test]
    fn step_rounds_matches_step() {
        let code = SurfaceCode::new(5);
        let ty = StabilizerType::X;
        let mut a = BtwcMachine::builder(&code, ty, 3, 2).build();
        let mut b = BtwcMachine::builder(&code, ty, 3, 2).build();
        let noise = PhenomenologicalNoise::uniform(8e-3);
        let mut rng = SimRng::from_seed(7);
        let mut errors = vec![vec![false; code.num_data_qubits()]; 3];
        let mut batch = quiet_batch(&code, 3);
        for _ in 0..300 {
            let rounds: Vec<Vec<bool>> = errors
                .iter_mut()
                .map(|e| {
                    noise.sample_data_into(&mut rng, e);
                    code.syndrome_of(ty, e)
                })
                .collect();
            for (q, round) in rounds.iter().enumerate() {
                batch.set_qubit_round_bools(q, round);
            }
            let ca = a.step(&batch);
            let cb = b.step_rounds(&rounds);
            assert_eq!(ca, cb);
            for (e, out) in errors.iter_mut().zip(&ca.outcomes) {
                if let Some(c) = out.correction() {
                    c.apply_to(e);
                }
            }
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    #[should_panic(expected = "one round per qubit")]
    fn wrong_batch_width_rejected() {
        let code = SurfaceCode::new(3);
        let mut machine = BtwcMachine::builder(&code, StabilizerType::X, 2, 1).build();
        let _ = machine.step(&quiet_batch(&code, 1));
    }

    #[test]
    fn execution_time_increase_handles_degenerate_windows() {
        // No cycles at all: no baseline, not a NaN.
        assert_eq!(MachineStats::default().execution_time_increase(), 0.0);
        // All-stall window: previously divided by zero.
        let all_stall = MachineStats { cycles: 5, stalls: 5, ..MachineStats::default() };
        assert_eq!(all_stall.execution_time_increase(), 0.0);
        // Ordinary window: 110 cycles, 10 stalls => 10% longer.
        let normal = MachineStats { cycles: 110, stalls: 10, ..MachineStats::default() };
        assert!((normal.execution_time_increase() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn telemetry_mirrors_stats_and_attributes_stalls() {
        use btwc_telemetry::{Domain, MetricValue, MetricsRegistry};

        let code = SurfaceCode::new(7);
        let ty = StabilizerType::X;
        let registry = MetricsRegistry::new();
        // Same overflow scenario as above: 4 qubits, bandwidth 1, two
        // simultaneous escalations => one queued request, one stall.
        let mut machine = BtwcMachine::builder(&code, ty, 4, 1).telemetry(&registry).build();
        let mut errors = vec![false; code.num_data_qubits()];
        errors[3 * 7 + 3] = true;
        errors[4 * 7 + 3] = true;
        let complex_round = code.syndrome_of(ty, &errors);
        let mut batch = quiet_batch(&code, 4);
        batch.set_qubit_round_bools(0, &complex_round);
        batch.set_qubit_round_bools(1, &complex_round);
        machine.step(&batch);
        machine.step(&batch);
        machine.step(&quiet_batch(&code, 4));

        let stats = machine.stats();
        let snap = registry.snapshot_domains(&[Domain::Cycles]);
        assert_eq!(snap.get_counter("machine.cycles"), Some(stats.cycles));
        assert_eq!(snap.get_counter("machine.stall_cycles"), Some(stats.stalls));
        assert_eq!(snap.get_counter("machine.offchip_requests"), Some(stats.offchip_requests));
        assert_eq!(snap.get_counter("machine.frame_bytes"), Some(stats.frame_bytes));
        // Per-qubit escalations: qubits 0 and 1 each went off-chip once.
        let Some(MetricValue::Values(per_qubit)) = snap.get("machine.qubit_offchip_requests")
        else {
            panic!("qubit_offchip_requests missing");
        };
        assert_eq!(per_qubit, &[1, 1, 0, 0]);
        // The stall cycle is charged to the qubit whose request was
        // still queued: the FIFO served qubit 0 first, so qubit 1 waits.
        let Some(MetricValue::Values(stalls)) = snap.get("machine.qubit_stall_cycles") else {
            panic!("qubit_stall_cycles missing");
        };
        assert_eq!(stalls, &[0, 1, 0, 0]);
        // Both escalations recorded an arrival-to-commit latency; the
        // queued one saw exactly one extra cycle of link delay.
        let Some(MetricValue::Histogram { count, min, max, .. }) =
            snap.get("machine.escalation_latency_cycles")
        else {
            panic!("escalation_latency_cycles missing");
        };
        assert_eq!(*count, 2);
        assert_eq!(max - min, 1, "FIFO position must add one cycle of delay");
        // Queue depth samples only cycles that touched the link: the
        // one overflow cycle, which left a backlog of 1. Quiet cycles
        // are recoverable as `machine.cycles - count`.
        let Some(MetricValue::Histogram { count: qd_count, max: qd_max, .. }) =
            snap.get("machine.queue_depth")
        else {
            panic!("queue_depth missing");
        };
        assert_eq!(*qd_count, 1);
        assert_eq!(*qd_max, 1);
        assert!(stats.cycles > *qd_count, "quiet cycles skip the queue-depth sample");
    }

    #[test]
    fn telemetry_attached_machine_matches_detached() {
        use btwc_telemetry::MetricsRegistry;

        let code = SurfaceCode::new(5);
        let ty = StabilizerType::X;
        let registry = MetricsRegistry::new();
        let mut plain = BtwcMachine::builder(&code, ty, 3, 2).build();
        let mut instrumented = BtwcMachine::builder(&code, ty, 3, 2).telemetry(&registry).build();
        let noise = PhenomenologicalNoise::uniform(8e-3);
        let mut rng = SimRng::from_seed(21);
        let mut errors = vec![vec![false; code.num_data_qubits()]; 3];
        let mut batch = quiet_batch(&code, 3);
        for _ in 0..300 {
            for (q, e) in errors.iter_mut().enumerate() {
                noise.sample_data_into(&mut rng, e);
                batch.set_qubit_round_bools(q, &code.syndrome_of(ty, e));
            }
            let ca = plain.step(&batch);
            let cb = instrumented.step(&batch);
            assert_eq!(ca, cb, "telemetry must not perturb decoding");
            for (e, out) in errors.iter_mut().zip(&ca.outcomes) {
                if let Some(c) = out.correction() {
                    c.apply_to(e);
                }
            }
        }
        assert_eq!(plain.stats(), instrumented.stats());
    }
}
