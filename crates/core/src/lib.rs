//! The Better-Than-Worst-Case decoding system — the paper's Fig. 2 as a
//! public API.
//!
//! [`BtwcDecoder`] is the per-logical-qubit pipeline: every cycle's raw
//! syndrome round flows through the on-chip Clique frontend (sticky
//! measurement filter + clique decision logic); trivial signatures are
//! corrected on the spot, complex ones are shipped to a pluggable
//! [`ComplexDecoder`] (by default the exact space-time MWPM decoder).
//!
//! [`BtwcMachine`] scales that to many logical qubits: one batched
//! packed [`SyndromeBatch`] per cycle runs the sticky filter
//! word-parallel across the whole machine, escalations cross the
//! off-chip link as real [`btwc_bandwidth::DecodeRequest`] frames, and
//! per-cycle complex decodes beyond the provisioned bandwidth trigger
//! stall cycles (idle-gate insertion), exactly the Sec. 5 mechanism.
//! Off-chip decoding everywhere is selected by the single
//! [`DecoderBackend`] registry. (The pre-batching `BtwcSystem` remains
//! as a deprecated shim.)
//!
//! # Example
//!
//! ```
//! use btwc_core::{BtwcDecoder, BtwcOutcome};
//! use btwc_lattice::{StabilizerType, SurfaceCode};
//!
//! let code = SurfaceCode::new(5);
//! let mut decoder = BtwcDecoder::builder(&code, StabilizerType::X).build();
//!
//! // A persistent single error is corrected on-chip within the
//! // two-round filter latency:
//! let mut errors = vec![false; code.num_data_qubits()];
//! errors[12] = true;
//! let round = code.syndrome_of(StabilizerType::X, &errors);
//! assert_eq!(decoder.process_round(&round), BtwcOutcome::Quiet);
//! match decoder.process_round(&round) {
//!     BtwcOutcome::OnChip(c) => assert_eq!(c.qubits(), &[12]),
//!     other => panic!("expected on-chip correction, got {other:?}"),
//! }
//! ```

mod decoder;
mod dual;
mod machine;
mod prefilter;
mod service;
mod system;

#[allow(deprecated)]
pub use decoder::OffchipBackend;
pub use decoder::{
    BackendFactory, BtwcBuilder, BtwcDecoder, BtwcOutcome, ComplexDecoder, DecoderBackend,
    DecoderStats,
};
pub use dual::{DualBtwcDecoder, DualOutcome};
pub use machine::{BtwcMachine, MachineBuilder, MachineCycle, MachineStats, TransportStats};
pub use prefilter::{PrefilterModel, PrefilterReport};
pub use service::{EscalationJob, PendingCycle, RejectReason, ServiceResponse};
#[allow(deprecated)]
pub use system::BtwcSystem;
pub use system::{SystemCycle, SystemStats};

// Re-export the vocabulary types users need to drive the system.
pub use btwc_bandwidth::{FaultyLink, LinkFaultModel, LinkFaultStats};
pub use btwc_clique::{BatchFrontend, CliqueDecision, CliqueDecoder, CliqueFrontend};
pub use btwc_lattice::{StabilizerType, SurfaceCode};
pub use btwc_lut::LutDecoder;
pub use btwc_mwpm::MwpmDecoder;
pub use btwc_sparse::SparseDecoder;
pub use btwc_syndrome::{BatchHistory, Correction, RoundHistory, Syndrome, SyndromeBatch};
pub use btwc_uf::UnionFindDecoder;
