//! Clique as an *off-chip* first-level filter (paper Sec. 8.1, future
//! work 1).
//!
//! Moving Clique out of the fridge forfeits the bandwidth savings but
//! keeps the hierarchy benefit: the heavyweight decoder runs only on
//! the `1 − coverage` fraction of cycles, cutting average decode
//! latency and energy; alternatively the complex decoder can be run
//! "aggressively under looser power + thermal constraints". This module
//! quantifies that trade with a simple two-tier service model.

/// Per-tier latency/energy parameters for the off-chip hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefilterModel {
    /// Clique tier decode latency (ns). Sub-ns in SFQ; a few ns in
    /// room-temperature CMOS.
    pub clique_latency_ns: f64,
    /// Complex tier decode latency (ns). MWPM-class software decoders
    /// run in the µs range.
    pub complex_latency_ns: f64,
    /// Clique tier energy per decode (nJ).
    pub clique_energy_nj: f64,
    /// Complex tier energy per decode (nJ).
    pub complex_energy_nj: f64,
}

impl Default for PrefilterModel {
    fn default() -> Self {
        // Representative numbers: a CMOS Clique filter at ~2 ns / 0.1 nJ
        // against a software MWPM at ~1 µs / 1 µJ.
        Self {
            clique_latency_ns: 2.0,
            complex_latency_ns: 1_000.0,
            clique_energy_nj: 0.1,
            complex_energy_nj: 1_000.0,
        }
    }
}

/// Derived hierarchy metrics at a given Clique coverage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefilterReport {
    /// Fraction of decodes resolved by the filter tier.
    pub coverage: f64,
    /// Mean decode latency across all cycles (ns).
    pub mean_latency_ns: f64,
    /// Mean decode energy across all cycles (nJ).
    pub mean_energy_nj: f64,
    /// Latency improvement over running the complex decoder every cycle.
    pub latency_speedup: f64,
    /// Energy improvement over running the complex decoder every cycle.
    pub energy_reduction: f64,
}

impl PrefilterModel {
    /// Evaluates the hierarchy at `coverage` (fraction of decodes the
    /// filter resolves).
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is not in `[0, 1]`.
    #[must_use]
    pub fn report(&self, coverage: f64) -> PrefilterReport {
        assert!((0.0..=1.0).contains(&coverage), "coverage out of [0,1]");
        // Every decode pays the filter; misses additionally pay the
        // complex tier (serial escalation).
        let miss = 1.0 - coverage;
        let mean_latency_ns = self.clique_latency_ns + miss * self.complex_latency_ns;
        let mean_energy_nj = self.clique_energy_nj + miss * self.complex_energy_nj;
        PrefilterReport {
            coverage,
            mean_latency_ns,
            mean_energy_nj,
            latency_speedup: self.complex_latency_ns / mean_latency_ns,
            energy_reduction: self.complex_energy_nj / mean_energy_nj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_coverage_gives_maximum_benefit() {
        let m = PrefilterModel::default();
        let r = m.report(1.0);
        assert!((r.mean_latency_ns - 2.0).abs() < 1e-9);
        assert!(r.latency_speedup > 400.0);
        assert!(r.energy_reduction > 4000.0);
    }

    #[test]
    fn zero_coverage_costs_slightly_more_than_baseline() {
        let m = PrefilterModel::default();
        let r = m.report(0.0);
        assert!(r.latency_speedup < 1.0, "the filter adds overhead on misses");
        assert!(r.latency_speedup > 0.95);
    }

    #[test]
    fn paper_scale_coverage_gives_order_of_magnitude_energy() {
        // At the paper's >90% common-case coverage, decode energy drops
        // roughly 10x even with Clique outside the fridge.
        let m = PrefilterModel::default();
        let r = m.report(0.95);
        assert!(r.energy_reduction > 10.0, "energy reduction {}", r.energy_reduction);
        assert!(r.latency_speedup > 10.0);
    }

    #[test]
    fn benefit_is_monotone_in_coverage() {
        let m = PrefilterModel::default();
        let mut last = 0.0;
        for c in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let s = m.report(c).latency_speedup;
            assert!(s >= last);
            last = s;
        }
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn rejects_bad_coverage() {
        let _ = PrefilterModel::default().report(1.5);
    }
}
