//! Dual-species decoding: both Pauli error species behind one decision.
//!
//! The paper evaluates one species ("X-type and Z-type errors are
//! corrected independently, so focusing on either one is sufficient",
//! Sec. 6.1) — correct for *measuring* coverage and accuracy, but a
//! deployed logical qubit runs **two** Clique planes (one per stabilizer
//! type) whose off-chip requests share the same link. [`DualBtwcDecoder`]
//! composes two [`BtwcDecoder`] pipelines and reports the union of their
//! off-chip demand, which is what a machine-level provisioner must plan
//! for: per-qubit off-chip probability is `1 − c_X·c_Z`, not `1 − c`.

use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_syndrome::Correction;

use btwc_syndrome::PackedBits;

use crate::decoder::{BtwcDecoder, BtwcOutcome, DecoderBackend, DecoderStats};

/// Corrections for both species of one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DualOutcome {
    /// Outcome of the X-stabilizer plane (detects Z errors).
    pub x_plane: BtwcOutcome,
    /// Outcome of the Z-stabilizer plane (detects X errors).
    pub z_plane: BtwcOutcome,
}

impl DualOutcome {
    /// Whether either plane requested off-chip bandwidth this cycle.
    #[must_use]
    pub fn went_offchip(&self) -> bool {
        self.x_plane.went_offchip() || self.z_plane.went_offchip()
    }

    /// The Z-error correction (from the X plane), if any.
    #[must_use]
    pub fn z_correction(&self) -> Option<&Correction> {
        self.x_plane.correction()
    }

    /// The X-error correction (from the Z plane), if any.
    #[must_use]
    pub fn x_correction(&self) -> Option<&Correction> {
        self.z_plane.correction()
    }
}

/// Two BTWC pipelines — one per stabilizer type — for one logical qubit.
#[derive(Debug)]
pub struct DualBtwcDecoder {
    x_plane: BtwcDecoder,
    z_plane: BtwcDecoder,
}

impl DualBtwcDecoder {
    /// Builds both planes with default settings.
    #[must_use]
    pub fn new(code: &SurfaceCode) -> Self {
        Self::with_backend(code, DecoderBackend::default())
    }

    /// Builds both planes with the chosen off-chip backend — one knob
    /// for the pair, since a deployed qubit's two planes share the same
    /// off-chip decode fabric (the unified [`DecoderBackend`]).
    #[must_use]
    pub fn with_backend(code: &SurfaceCode, backend: DecoderBackend) -> Self {
        Self {
            x_plane: BtwcDecoder::builder(code, StabilizerType::X).backend(backend).build(),
            z_plane: BtwcDecoder::builder(code, StabilizerType::Z).backend(backend).build(),
        }
    }

    /// Processes one cycle: the raw X-ancilla round and the raw
    /// Z-ancilla round.
    ///
    /// # Panics
    ///
    /// Panics if either round's width mismatches its ancilla count.
    pub fn process_rounds(&mut self, x_round: &[bool], z_round: &[bool]) -> DualOutcome {
        DualOutcome {
            x_plane: self.x_plane.process_round(x_round),
            z_plane: self.z_plane.process_round(z_round),
        }
    }

    /// [`DualBtwcDecoder::process_rounds`] for already-packed rounds —
    /// the allocation-free hot path: both planes run their packed
    /// pipelines directly instead of forcing a bool-slice detour.
    ///
    /// # Panics
    ///
    /// Panics if either round's width mismatches its ancilla count.
    pub fn process_rounds_packed(
        &mut self,
        x_round: &PackedBits,
        z_round: &PackedBits,
    ) -> DualOutcome {
        DualOutcome {
            x_plane: self.x_plane.process_round_packed(x_round),
            z_plane: self.z_plane.process_round_packed(z_round),
        }
    }

    /// Per-plane statistics, `(x_plane, z_plane)`.
    #[must_use]
    pub fn stats(&self) -> (DecoderStats, DecoderStats) {
        (self.x_plane.stats(), self.z_plane.stats())
    }

    /// Combined coverage: the fraction of cycles in which *neither*
    /// plane went off-chip — the quantity the shared link sees.
    #[must_use]
    pub fn combined_coverage(&self) -> f64 {
        let (x, z) = self.stats();
        if x.cycles == 0 {
            return 1.0;
        }
        // Both planes process every cycle; a cycle is on-chip iff both
        // kept it on-chip. Offchip counts can overlap, so bound below by
        // the inclusion–exclusion estimate under independence.
        let cx = x.coverage();
        let cz = z.coverage();
        cx * cz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_noise::{NoiseModel, PhenomenologicalNoise, SimRng};

    #[test]
    fn both_species_are_corrected() {
        let code = SurfaceCode::new(5);
        let mut dec = DualBtwcDecoder::new(&code);
        // One Z error (seen by X ancillas) and one X error (seen by Z).
        let mut z_errors = vec![false; code.num_data_qubits()];
        let mut x_errors = vec![false; code.num_data_qubits()];
        z_errors[12] = true;
        x_errors[6] = true;
        let xr = code.syndrome_of(StabilizerType::X, &z_errors);
        let zr = code.syndrome_of(StabilizerType::Z, &x_errors);
        let first = dec.process_rounds(&xr, &zr);
        assert!(!first.went_offchip());
        let second = dec.process_rounds(&xr, &zr);
        assert_eq!(second.z_correction().map(Correction::qubits), Some(&[12usize][..]));
        assert_eq!(second.x_correction().map(Correction::qubits), Some(&[6usize][..]));
    }

    #[test]
    fn combined_coverage_is_product_like() {
        // Under independent noise on both species, the shared link sees
        // roughly 1 - cx*cz off-chip demand.
        let code = SurfaceCode::new(5);
        let ty_x = StabilizerType::X;
        let ty_z = StabilizerType::Z;
        let mut dec = DualBtwcDecoder::new(&code);
        let noise = PhenomenologicalNoise::uniform(5e-3);
        let mut rng = SimRng::from_seed(0xD0A1);
        let mut z_err = vec![false; code.num_data_qubits()];
        let mut x_err = vec![false; code.num_data_qubits()];
        let mut meas = vec![false; code.num_ancillas(ty_x)];
        for _ in 0..20_000 {
            noise.sample_data_into(&mut rng, &mut z_err);
            noise.sample_data_into(&mut rng, &mut x_err);
            let mut xr = code.syndrome_of(ty_x, &z_err);
            noise.sample_measurement_into(&mut rng, &mut meas);
            for (r, &m) in xr.iter_mut().zip(&meas) {
                *r ^= m;
            }
            let mut zr = code.syndrome_of(ty_z, &x_err);
            noise.sample_measurement_into(&mut rng, &mut meas);
            for (r, &m) in zr.iter_mut().zip(&meas) {
                *r ^= m;
            }
            let out = dec.process_rounds(&xr, &zr);
            if let Some(c) = out.z_correction() {
                c.apply_to(&mut z_err);
            }
            if let Some(c) = out.x_correction() {
                c.apply_to(&mut x_err);
            }
        }
        let (sx, sz) = dec.stats();
        assert!(sx.coverage() > 0.9);
        assert!(sz.coverage() > 0.9);
        let combined = dec.combined_coverage();
        assert!(combined <= sx.coverage() + 1e-12);
        assert!(combined <= sz.coverage() + 1e-12);
        assert!(combined > 0.85, "combined coverage {combined}");
    }

    #[test]
    fn sparse_backend_corrects_both_species() {
        let code = SurfaceCode::new(5);
        let mut dec = DualBtwcDecoder::with_backend(&code, DecoderBackend::SparseBlossom);
        let mut z_errors = vec![false; code.num_data_qubits()];
        let mut x_errors = vec![false; code.num_data_qubits()];
        z_errors[12] = true;
        x_errors[6] = true;
        let xr = code.syndrome_of(StabilizerType::X, &z_errors);
        let zr = code.syndrome_of(StabilizerType::Z, &x_errors);
        let _ = dec.process_rounds(&xr, &zr);
        let second = dec.process_rounds(&xr, &zr);
        assert_eq!(second.z_correction().map(Correction::qubits), Some(&[12usize][..]));
        assert_eq!(second.x_correction().map(Correction::qubits), Some(&[6usize][..]));
    }

    #[test]
    fn packed_rounds_match_bool_rounds() {
        // The packed entry point must replay the exact per-plane
        // pipeline of the bool-slice path (same outcomes, same stats).
        let code = SurfaceCode::new(5);
        let mut bools = DualBtwcDecoder::new(&code);
        let mut packed = DualBtwcDecoder::new(&code);
        let noise = PhenomenologicalNoise::uniform(8e-3);
        let mut rng = SimRng::from_seed(0xBADC);
        let mut z_err = vec![false; code.num_data_qubits()];
        let mut x_err = vec![false; code.num_data_qubits()];
        for _ in 0..2_000 {
            noise.sample_data_into(&mut rng, &mut z_err);
            noise.sample_data_into(&mut rng, &mut x_err);
            let xr = code.syndrome_of(StabilizerType::X, &z_err);
            let zr = code.syndrome_of(StabilizerType::Z, &x_err);
            let a = bools.process_rounds(&xr, &zr);
            let b = packed
                .process_rounds_packed(&PackedBits::from_bools(&xr), &PackedBits::from_bools(&zr));
            assert_eq!(a, b);
            if let Some(c) = a.z_correction() {
                c.apply_to(&mut z_err);
            }
            if let Some(c) = a.x_correction() {
                c.apply_to(&mut x_err);
            }
        }
        assert_eq!(bools.stats(), packed.stats());
        assert!(bools.stats().0.cycles == 2_000);
    }

    #[test]
    fn planes_are_independent() {
        let code = SurfaceCode::new(3);
        let mut dec = DualBtwcDecoder::new(&code);
        let quiet_x = vec![false; code.num_ancillas(StabilizerType::X)];
        let quiet_z = vec![false; code.num_ancillas(StabilizerType::Z)];
        let out = dec.process_rounds(&quiet_x, &quiet_z);
        assert_eq!(out.x_plane, BtwcOutcome::Quiet);
        assert_eq!(out.z_plane, BtwcOutcome::Quiet);
        assert!((dec.combined_coverage() - 1.0).abs() < 1e-12);
    }
}
