//! The machine ⇄ decode-service contract.
//!
//! [`BtwcMachine::step`] historically resolved every escalation inline:
//! transport, then an immediate blocking `decode_stream_mut` on the
//! machine's own backend. The decode-farm tier splits that cycle into
//! two halves so many machines can share one decode service:
//!
//! 1. [`BtwcMachine::step_deferred`] runs the whole cycle *except* the
//!    off-chip solves — triage, sticky filter, transport (retries,
//!    deadline, degradation on transport failure), queue accounting —
//!    and returns a [`PendingCycle`] carrying one [`EscalationJob`] per
//!    escalation whose frame survived transport.
//! 2. A decode service (the in-process reference is
//!    `btwc_farm::DecodeFarm`) resolves each job into a
//!    [`ServiceResponse`], and [`BtwcMachine::complete`] folds the
//!    responses back into the cycle's outcomes, telemetry, and
//!    degradation counters.
//!
//! The split is **bit-identical** to the inline loop: `step` is now
//! literally `step_deferred` + an inline decode of every job +
//! `complete`, and the farm conformance harness pins the farm path to
//! it per tenant, backend, and worker count. The key property making a
//! *shared* service safe is that a replayed [`DecodeRequest`] resets
//! the receive window, which every streaming decoder classifies as a
//! rebuild — so a decode's flips, weights, and stats depend only on
//! the window contents, never on which decoder instance ran it or what
//! that instance decoded before.
//!
//! [`BtwcMachine::step`]: crate::BtwcMachine::step
//! [`BtwcMachine::step_deferred`]: crate::BtwcMachine::step_deferred
//! [`BtwcMachine::complete`]: crate::BtwcMachine::complete

use btwc_bandwidth::DecodeRequest;
use btwc_syndrome::{Correction, Syndrome};

use crate::decoder::BtwcOutcome;

/// Why a decode service refused an [`EscalationJob`].
///
/// Either way the machine degrades the escalation to its on-chip
/// emergency correction ([`BtwcOutcome::Degraded`]) — the reasons are
/// distinguished for the service's rejection counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The service's bounded queue was full at admission.
    QueueFull,
    /// The modeled service delay would land the correction past the
    /// job's remaining cycle-deadline budget.
    DeadlineExceeded,
}

/// A decode service's verdict on one [`EscalationJob`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceResponse {
    /// The window was decoded; `queue_delay_cycles` is the modeled
    /// cycles the job spent waiting in the service queue (0 for the
    /// inline path), charged onto the escalation-latency histogram.
    Decoded {
        /// The off-chip correction for the job's window.
        correction: Correction,
        /// Modeled service queueing delay in cycles.
        queue_delay_cycles: u64,
    },
    /// The service refused the job; the machine falls back to the
    /// on-chip emergency correction.
    Rejected(RejectReason),
}

/// One escalation that survived transport and awaits an off-chip
/// decode.
///
/// Produced by [`BtwcMachine::step_deferred`], consumed by a decode
/// service, resolved by [`BtwcMachine::complete`] (in submission
/// order).
///
/// [`BtwcMachine::step_deferred`]: crate::BtwcMachine::step_deferred
/// [`BtwcMachine::complete`]: crate::BtwcMachine::complete
#[derive(Debug, Clone)]
pub struct EscalationJob {
    /// Logical qubit the escalation belongs to.
    pub(crate) qubit: u32,
    /// The transport-accepted request (the receiver-side parse, exactly
    /// what the inline loop would replay and decode).
    pub(crate) request: DecodeRequest,
    /// The sticky-filtered syndrome at escalation time — the emergency
    /// fallback input if the service rejects the job.
    pub(crate) filtered: Syndrome,
    /// On-chip wait + link queue delay + transport wait, in cycles: the
    /// latency the inline path would record. A service adds its own
    /// modeled queue delay on top.
    pub(crate) latency_base: u64,
    /// Cycles left of the escalation's deadline after transport — the
    /// service budget an admission decision checks against.
    pub(crate) deadline_budget: u64,
}

impl EscalationJob {
    /// Logical qubit the escalation belongs to.
    #[must_use]
    pub fn qubit(&self) -> u32 {
        self.qubit
    }

    /// The transport-accepted decode request.
    #[must_use]
    pub fn request(&self) -> &DecodeRequest {
        &self.request
    }

    /// Cycles left of the deadline after transport: a service whose
    /// modeled delay exceeds this must reject with
    /// [`RejectReason::DeadlineExceeded`].
    #[must_use]
    pub fn deadline_budget(&self) -> u64 {
        self.deadline_budget
    }

    /// The latency, in cycles, the inline path would have recorded for
    /// this escalation (on-chip wait + link queue delay + transport
    /// wait). A service adds its modeled queue delay on top when it
    /// records end-to-end latency.
    #[must_use]
    pub fn latency_base(&self) -> u64 {
        self.latency_base
    }
}

/// A machine cycle with its off-chip decodes still outstanding.
///
/// Everything except the escalation outcomes is final: stall and queue
/// accounting, transport counters, and the per-qubit window bookkeeping
/// already happened in [`BtwcMachine::step_deferred`]. Pass this to
/// [`BtwcMachine::complete`] with one [`ServiceResponse`] per job (in
/// [`PendingCycle::jobs`] order) to finish the cycle.
///
/// [`BtwcMachine::step_deferred`]: crate::BtwcMachine::step_deferred
/// [`BtwcMachine::complete`]: crate::BtwcMachine::complete
#[derive(Debug)]
pub struct PendingCycle {
    pub(crate) outcomes: Vec<BtwcOutcome>,
    pub(crate) offchip_requests: usize,
    pub(crate) frame_bytes: usize,
    pub(crate) stalled: bool,
    pub(crate) jobs: Vec<EscalationJob>,
}

impl PendingCycle {
    /// Escalations awaiting an off-chip decode, in submission order.
    #[must_use]
    pub fn jobs(&self) -> &[EscalationJob] {
        &self.jobs
    }

    /// Off-chip decode requests issued this cycle (includes escalations
    /// that already degraded in transport and so carry no job).
    #[must_use]
    pub fn offchip_requests(&self) -> usize {
        self.offchip_requests
    }

    /// Whether this cycle was a stall.
    #[must_use]
    pub fn stalled(&self) -> bool {
        self.stalled
    }
}
