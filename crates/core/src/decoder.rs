//! The per-logical-qubit BTWC pipeline.

use btwc_clique::{CliqueDecision, CliqueFrontend};
use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_lut::LutDecoder;
use btwc_mwpm::MwpmDecoder;
use btwc_sparse::SparseDecoder;
use btwc_syndrome::{Correction, PackedBits, RoundHistory};
use btwc_uf::UnionFindDecoder;

pub use btwc_syndrome::ComplexDecoder;

/// Constructor signature of a [`DecoderBackend::Custom`] backend: each
/// pipeline, plane, and simulation shard builds its *own* decoder
/// instance (the Monte Carlo engines run one decoder per worker), so a
/// custom backend registers a factory rather than a single boxed
/// instance.
pub type BackendFactory = fn(&SurfaceCode, StabilizerType) -> Box<dyn ComplexDecoder + Send + Sync>;

/// Which off-chip decoder resolves complex windows — the *single*
/// backend selector of the workspace, consumed uniformly by
/// [`BtwcBuilder::backend`], [`crate::DualBtwcDecoder::with_backend`],
/// [`crate::MachineBuilder::backend`], and (via re-export) the sim
/// configs' `with_backend`. The per-call knobs it replaces
/// (`BtwcBuilder::offchip_backend`, `BtwcBuilder::complex_decoder`,
/// `LifetimeConfig::with_offchip`, `ShotConfig::with_offchip`, and the
/// `OffchipBackend` name) survive as deprecated forwarding wrappers.
///
/// [`DecoderBackend::DenseMwpm`] and [`DecoderBackend::SparseBlossom`]
/// are *exact* minimum-weight perfect matchers — weight-equal on every
/// input — so choosing between them is purely a cost-model decision
/// (sparse wins from d ≳ 13 at operational rates).
/// [`DecoderBackend::UnionFind`] trades a small accuracy loss for
/// almost-linear decoding; [`DecoderBackend::Lut`] is the
/// LILLIPUT-style O(1) table for small distances.
#[derive(Clone, Copy, Default)]
pub enum DecoderBackend {
    /// The dense O(n³) blossom over all event pairs ([`MwpmDecoder`]) —
    /// the paper-faithful baseline.
    #[default]
    DenseMwpm,
    /// Sparse-blossom region growth + per-cluster matching
    /// ([`SparseDecoder`]).
    SparseBlossom,
    /// Almost-linear cluster growth and peeling ([`UnionFindDecoder`],
    /// the Sec. 8.1 hierarchy tier).
    UnionFind,
    /// Exhaustive single-round lookup table ([`LutDecoder`]).
    /// Construction panics beyond `btwc_lut::MAX_LUT_BITS` ancillas
    /// (d ≤ 7), exactly the impracticality the paper argues.
    Lut,
    /// A caller-registered decoder factory. The `name` identifies the
    /// backend in `Debug`/`PartialEq` (two customs compare equal iff
    /// their names match; a custom never equals a built-in, even with
    /// a colliding name); `build` is invoked once per pipeline.
    Custom {
        /// Short identifier for logs, stats, and equality.
        name: &'static str,
        /// Constructor invoked for every pipeline/plane/shard.
        build: BackendFactory,
    },
}

impl DecoderBackend {
    /// Constructs the chosen decoder for `code` / `ty`, boxed for the
    /// pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the backend cannot serve this code (today only
    /// [`DecoderBackend::Lut`] beyond `btwc_lut::MAX_LUT_BITS`
    /// ancillas).
    #[must_use]
    pub fn build(
        self,
        code: &SurfaceCode,
        ty: StabilizerType,
    ) -> Box<dyn ComplexDecoder + Send + Sync> {
        match self {
            DecoderBackend::DenseMwpm => Box::new(MwpmDecoder::new(code, ty)),
            DecoderBackend::SparseBlossom => Box::new(SparseDecoder::new(code, ty)),
            DecoderBackend::UnionFind => Box::new(UnionFindDecoder::new(code, ty)),
            DecoderBackend::Lut => Box::new(LutDecoder::build(code, ty)),
            DecoderBackend::Custom { build, .. } => build(code, ty),
        }
    }

    /// Short identifier of this backend.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DecoderBackend::DenseMwpm => "dense-mwpm",
            DecoderBackend::SparseBlossom => "sparse-blossom",
            DecoderBackend::UnionFind => "union-find",
            DecoderBackend::Lut => "lut",
            DecoderBackend::Custom { name, .. } => name,
        }
    }
}

impl std::fmt::Debug for DecoderBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // One stable token per backend (custom factories print their
        // registered name, not a function pointer).
        write!(f, "DecoderBackend({})", self.name())
    }
}

impl PartialEq for DecoderBackend {
    fn eq(&self, other: &Self) -> bool {
        // Compare variant identity plus registered name, never the
        // factory address: function pointer comparisons are unreliable
        // across codegen units. The discriminant check keeps a Custom
        // backend that reuses a built-in token (e.g. "dense-mwpm")
        // from comparing equal to the built-in itself.
        std::mem::discriminant(self) == std::mem::discriminant(other) && self.name() == other.name()
    }
}

impl Eq for DecoderBackend {}

/// Deprecated name of [`DecoderBackend`], kept so pre-unification code
/// (and its two variant names) keeps compiling.
#[deprecated(note = "use DecoderBackend: the single backend selector for every tier")]
pub type OffchipBackend = DecoderBackend;

/// What one cycle of the pipeline did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BtwcOutcome {
    /// Nothing to correct this cycle.
    Quiet,
    /// Clique corrected the signature on-chip.
    OnChip(Correction),
    /// The signature went off-chip; the complex decoder's correction.
    OffChip(Correction),
    /// Off-chip transport failed past its retry/deadline budget; the
    /// carried correction is the best-effort *on-chip emergency* result
    /// (see `CliqueDecoder::emergency_correction`) applied so the
    /// machine keeps making forward progress instead of stalling
    /// forever. Only [`crate::BtwcMachine`] with a faulty link emits
    /// this.
    Degraded(Correction),
}

impl BtwcOutcome {
    /// The correction carried by this outcome, if any.
    #[must_use]
    pub fn correction(&self) -> Option<&Correction> {
        match self {
            BtwcOutcome::Quiet => None,
            BtwcOutcome::OnChip(c) | BtwcOutcome::OffChip(c) | BtwcOutcome::Degraded(c) => Some(c),
        }
    }

    /// Whether the cycle needed off-chip bandwidth. Degraded cycles
    /// *attempted* off-chip transport but were resolved on-chip, so
    /// they report `false`.
    #[must_use]
    pub fn went_offchip(&self) -> bool {
        matches!(self, BtwcOutcome::OffChip(_))
    }

    /// Whether off-chip transport was abandoned and the emergency
    /// on-chip correction applied instead.
    #[must_use]
    pub fn was_degraded(&self) -> bool {
        matches!(self, BtwcOutcome::Degraded(_))
    }
}

/// Lifetime counters of a [`BtwcDecoder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecoderStats {
    /// Rounds processed.
    pub cycles: u64,
    /// Quiet cycles (all-zero filtered signature).
    pub quiet: u64,
    /// Cycles corrected on-chip.
    pub onchip: u64,
    /// Cycles sent off-chip.
    pub offchip: u64,
}

impl DecoderStats {
    /// Fraction of decodes kept on-chip.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.cycles == 0 {
            return 1.0;
        }
        (self.quiet + self.onchip) as f64 / self.cycles as f64
    }
}

/// Builder for [`BtwcDecoder`] (filter depth, window size, complex
/// decoder choice).
pub struct BtwcBuilder<'a> {
    code: &'a SurfaceCode,
    ty: StabilizerType,
    clique_rounds: usize,
    window_rounds: usize,
    backend: DecoderBackend,
    complex: Option<Box<dyn ComplexDecoder + Send + Sync>>,
}

impl std::fmt::Debug for BtwcBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BtwcBuilder")
            .field("ty", &self.ty)
            .field("clique_rounds", &self.clique_rounds)
            .field("window_rounds", &self.window_rounds)
            .field("backend", &self.backend)
            .field("custom_complex", &self.complex.is_some())
            .finish()
    }
}

impl<'a> BtwcBuilder<'a> {
    fn new(code: &'a SurfaceCode, ty: StabilizerType) -> Self {
        Self {
            code,
            ty,
            clique_rounds: 2,
            window_rounds: usize::from(code.distance()).max(4) * 4,
            backend: DecoderBackend::default(),
            complex: None,
        }
    }

    /// Sets the Clique sticky-filter depth (default 2).
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn clique_rounds(mut self, rounds: usize) -> Self {
        assert!(rounds >= 1, "sticky filter needs at least one round");
        self.clique_rounds = rounds;
        self
    }

    /// Sets the off-chip window capacity in rounds (default `4d`).
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn window_rounds(mut self, rounds: usize) -> Self {
        assert!(rounds >= 1, "window needs at least one round");
        self.window_rounds = rounds;
        self
    }

    /// Selects the off-chip decoder backend (default: the dense MWPM
    /// baseline) — the one knob shared by every tier of the workspace;
    /// see [`DecoderBackend`].
    #[must_use]
    pub fn backend(mut self, backend: DecoderBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Deprecated spelling of [`BtwcBuilder::backend`].
    #[deprecated(note = "use BtwcBuilder::backend")]
    #[must_use]
    pub fn offchip_backend(self, backend: DecoderBackend) -> Self {
        self.backend(backend)
    }

    /// Replaces the default MWPM complex decoder with a one-off boxed
    /// instance.
    #[deprecated(
        note = "register a DecoderBackend::Custom factory and pass it to BtwcBuilder::backend"
    )]
    #[must_use]
    pub fn complex_decoder(mut self, decoder: Box<dyn ComplexDecoder + Send + Sync>) -> Self {
        self.complex = Some(decoder);
        self
    }

    /// Builds the pipeline.
    #[must_use]
    pub fn build(self) -> BtwcDecoder {
        let frontend = CliqueFrontend::with_rounds(self.code, self.ty, self.clique_rounds);
        let n_anc = self.code.num_ancillas(self.ty);
        let complex = self.complex.unwrap_or_else(|| self.backend.build(self.code, self.ty));
        BtwcDecoder {
            frontend,
            complex,
            window: RoundHistory::new(n_anc, self.window_rounds),
            stats: DecoderStats::default(),
            scratch: PackedBits::new(n_anc),
        }
    }
}

/// The complete BTWC pipeline for one logical qubit (paper Fig. 2):
/// sticky filter → Clique decision → on-chip correction or off-chip
/// complex decode.
pub struct BtwcDecoder {
    frontend: CliqueFrontend,
    complex: Box<dyn ComplexDecoder + Send + Sync>,
    window: RoundHistory,
    stats: DecoderStats,
    /// Reused packed buffer for bool-slice ingestion.
    scratch: PackedBits,
}

impl std::fmt::Debug for BtwcDecoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BtwcDecoder")
            .field("frontend", &self.frontend)
            .field("window_len", &self.window.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl BtwcDecoder {
    /// Starts configuring a pipeline for `code` / `ty`.
    #[must_use]
    pub fn builder(code: &SurfaceCode, ty: StabilizerType) -> BtwcBuilder<'_> {
        BtwcBuilder::new(code, ty)
    }

    /// Ingests one raw measurement round (bool-slice convenience form:
    /// packs into a reused buffer, then runs the packed pipeline) and
    /// returns the cycle outcome. Corrections returned must be applied
    /// to the tracked error state (or the Pauli frame) by the caller.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len()` does not match the ancilla count.
    pub fn process_round(&mut self, raw: &[bool]) -> BtwcOutcome {
        self.scratch.fill_from_bools(raw);
        let round = std::mem::take(&mut self.scratch);
        let outcome = self.process_round_packed(&round);
        self.scratch = round;
        outcome
    }

    /// Ingests one already-packed raw measurement round — the hot path:
    /// the window push is a recycled word copy, the sticky filter a
    /// word-AND, and the all-zero common case touches no per-bit state.
    ///
    /// Window bookkeeping, and what it retains:
    ///
    /// * While the window is **empty**, all-zero rounds are not pushed
    ///   at all. They carry no detection events and only shift event
    ///   times uniformly, so the space-time matching of a later complex
    ///   decode is unchanged — this removes the seed implementation's
    ///   per-cycle round copy in the >90% quiet case.
    /// * When the window **fills**, it **slides**: pushing onto a full
    ///   [`RoundHistory`] retires the oldest round and re-bases the
    ///   surviving detection events (`slide(1)` semantics), so the
    ///   window always holds the most recent non-trivial history and a
    ///   streaming backend ([`ComplexDecoder::decode_stream_mut`]) can
    ///   carry its incremental state across the slide.
    /// * A complex decode consumes the window and resets it.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len()` does not match the ancilla count.
    pub fn process_round_packed(&mut self, raw: &PackedBits) -> BtwcOutcome {
        if !(self.window.is_empty() && raw.is_zero()) {
            self.window.push_packed(raw);
        }
        self.stats.cycles += 1;
        match self.frontend.push_round_packed(raw) {
            CliqueDecision::AllZeros => {
                self.stats.quiet += 1;
                BtwcOutcome::Quiet
            }
            CliqueDecision::Trivial(c) => {
                self.stats.onchip += 1;
                BtwcOutcome::OnChip(c)
            }
            CliqueDecision::Complex => {
                self.stats.offchip += 1;
                let c = self.complex.decode_stream_mut(&self.window);
                // Window consumed; the sticky filter clears itself once
                // the correction lands, so no pipeline reset is needed.
                self.window.reset();
                BtwcOutcome::OffChip(c)
            }
        }
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> DecoderStats {
        self.stats
    }

    /// Clears the filter pipeline and window (not the counters).
    pub fn reset(&mut self) {
        self.frontend.reset();
        self.window.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_for(code: &SurfaceCode, errors: &[bool]) -> Vec<bool> {
        code.syndrome_of(StabilizerType::X, errors)
    }

    #[test]
    fn quiet_stream_stays_quiet() {
        let code = SurfaceCode::new(3);
        let mut dec = BtwcDecoder::builder(&code, StabilizerType::X).build();
        let quiet = vec![false; code.num_ancillas(StabilizerType::X)];
        for _ in 0..10 {
            assert_eq!(dec.process_round(&quiet), BtwcOutcome::Quiet);
        }
        assert_eq!(dec.stats().quiet, 10);
        assert!((dec.stats().coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn persistent_error_corrected_onchip_after_filter_delay() {
        let code = SurfaceCode::new(5);
        let mut dec = BtwcDecoder::builder(&code, StabilizerType::X).build();
        let mut errors = vec![false; code.num_data_qubits()];
        errors[12] = true;
        let round = round_for(&code, &errors);
        assert_eq!(dec.process_round(&round), BtwcOutcome::Quiet);
        let out = dec.process_round(&round);
        assert_eq!(out.correction().map(Correction::qubits), Some(&[12usize][..]));
        assert!(!out.went_offchip());
        assert_eq!(dec.stats().onchip, 1);
    }

    #[test]
    fn chain_goes_offchip_and_is_resolved() {
        let code = SurfaceCode::new(7);
        let mut dec = BtwcDecoder::builder(&code, StabilizerType::X).build();
        let mut errors = vec![false; code.num_data_qubits()];
        // Vertical chain of 2 in the interior: complex for Clique.
        errors[3 * 7 + 3] = true;
        errors[4 * 7 + 3] = true;
        let round = round_for(&code, &errors);
        assert_eq!(dec.process_round(&round), BtwcOutcome::Quiet);
        let out = dec.process_round(&round);
        assert!(out.went_offchip(), "chain must be shipped off-chip");
        let c = out.correction().unwrap();
        // The MWPM correction must cancel the syndrome equivalently.
        let mut residual = errors.clone();
        c.apply_to(&mut residual);
        assert!(code.syndrome_of(StabilizerType::X, &residual).iter().all(|&s| !s));
        assert!(!code.is_logical_error(StabilizerType::X, &residual));
        assert_eq!(dec.stats().offchip, 1);
    }

    #[test]
    fn custom_complex_decoder_is_used() {
        struct NullDecoder;
        impl ComplexDecoder for NullDecoder {
            fn decode_window(&self, _w: &RoundHistory) -> Correction {
                Correction::from_flips(vec![99])
            }
        }
        let code = SurfaceCode::new(7);
        #[allow(deprecated)]
        let mut dec = BtwcDecoder::builder(&code, StabilizerType::X)
            .complex_decoder(Box::new(NullDecoder))
            .build();
        let mut errors = vec![false; code.num_data_qubits()];
        errors[3 * 7 + 3] = true;
        errors[4 * 7 + 3] = true;
        let round = round_for(&code, &errors);
        let _ = dec.process_round(&round);
        let out = dec.process_round(&round);
        assert_eq!(out.correction().map(Correction::qubits), Some(&[99usize][..]));
    }

    #[test]
    fn sparse_backend_resolves_complex_windows_like_dense() {
        let code = SurfaceCode::new(7);
        let mut dense = BtwcDecoder::builder(&code, StabilizerType::X).build();
        let mut sparse = BtwcDecoder::builder(&code, StabilizerType::X)
            .backend(DecoderBackend::SparseBlossom)
            .build();
        let mut errors = vec![false; code.num_data_qubits()];
        errors[3 * 7 + 3] = true;
        errors[4 * 7 + 3] = true;
        let round = round_for(&code, &errors);
        for dec in [&mut dense, &mut sparse] {
            let _ = dec.process_round(&round);
            let out = dec.process_round(&round);
            assert!(out.went_offchip());
            let mut residual = errors.clone();
            out.correction().unwrap().apply_to(&mut residual);
            assert!(code.syndrome_of(StabilizerType::X, &residual).iter().all(|&s| !s));
            assert!(!code.is_logical_error(StabilizerType::X, &residual));
        }
    }

    #[test]
    fn backend_is_ignored_when_custom_decoder_installed() {
        struct NullDecoder;
        impl ComplexDecoder for NullDecoder {
            fn decode_window(&self, _w: &RoundHistory) -> Correction {
                Correction::from_flips(vec![42])
            }
        }
        let code = SurfaceCode::new(7);
        #[allow(deprecated)]
        let mut dec = BtwcDecoder::builder(&code, StabilizerType::X)
            .offchip_backend(DecoderBackend::SparseBlossom)
            .complex_decoder(Box::new(NullDecoder))
            .build();
        let mut errors = vec![false; code.num_data_qubits()];
        errors[3 * 7 + 3] = true;
        errors[4 * 7 + 3] = true;
        let round = round_for(&code, &errors);
        let _ = dec.process_round(&round);
        let out = dec.process_round(&round);
        assert_eq!(out.correction().map(Correction::qubits), Some(&[42usize][..]));
    }

    #[test]
    fn backend_equality_is_variant_and_name_aware() {
        fn null_factory(
            code: &SurfaceCode,
            ty: StabilizerType,
        ) -> Box<dyn ComplexDecoder + Send + Sync> {
            DecoderBackend::DenseMwpm.build(code, ty)
        }
        let custom = DecoderBackend::Custom { name: "mine", build: null_factory };
        assert_eq!(custom, DecoderBackend::Custom { name: "mine", build: null_factory });
        assert_ne!(custom, DecoderBackend::Custom { name: "other", build: null_factory });
        // A custom reusing a built-in token must not impersonate it.
        let imposter = DecoderBackend::Custom { name: "dense-mwpm", build: null_factory };
        assert_ne!(imposter, DecoderBackend::DenseMwpm);
        assert_eq!(DecoderBackend::SparseBlossom, DecoderBackend::SparseBlossom);
        assert_ne!(DecoderBackend::SparseBlossom, DecoderBackend::UnionFind);
    }

    #[test]
    fn builder_knobs_are_respected() {
        let code = SurfaceCode::new(5);
        let mut dec = BtwcDecoder::builder(&code, StabilizerType::X)
            .clique_rounds(3)
            .window_rounds(6)
            .build();
        let mut errors = vec![false; code.num_data_qubits()];
        errors[12] = true;
        let round = round_for(&code, &errors);
        // k=3: two quiet cycles before the on-chip correction.
        assert_eq!(dec.process_round(&round), BtwcOutcome::Quiet);
        assert_eq!(dec.process_round(&round), BtwcOutcome::Quiet);
        assert!(matches!(dec.process_round(&round), BtwcOutcome::OnChip(_)));
    }

    #[test]
    fn reset_refills_filter() {
        let code = SurfaceCode::new(5);
        let mut dec = BtwcDecoder::builder(&code, StabilizerType::X).build();
        let mut errors = vec![false; code.num_data_qubits()];
        errors[12] = true;
        let round = round_for(&code, &errors);
        let _ = dec.process_round(&round);
        dec.reset();
        assert_eq!(dec.process_round(&round), BtwcOutcome::Quiet);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_clique_rounds_rejected() {
        let code = SurfaceCode::new(3);
        let _ = BtwcDecoder::builder(&code, StabilizerType::X).clique_rounds(0);
    }
}
