//! Multi-logical-qubit BTWC system behind a provisioned off-chip link.

use btwc_bandwidth::QueueSim;
use btwc_lattice::{StabilizerType, SurfaceCode};

use crate::decoder::{BtwcDecoder, BtwcOutcome};

/// What happened across the whole machine in one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemCycle {
    /// Per-qubit outcomes for this cycle (empty on stall cycles).
    pub outcomes: Vec<BtwcOutcome>,
    /// Off-chip decode requests issued this cycle.
    pub offchip_requests: usize,
    /// Whether this cycle was a stall (idle-gate insertion, Sec. 5.2).
    pub stalled: bool,
}

/// Aggregate counters of a [`BtwcSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SystemStats {
    /// Total cycles elapsed (useful + stall).
    pub cycles: u64,
    /// Stall cycles inserted.
    pub stalls: u64,
    /// Total off-chip decode requests.
    pub offchip_requests: u64,
}

impl SystemStats {
    /// Relative execution-time increase from stalling.
    #[must_use]
    pub fn execution_time_increase(&self) -> f64 {
        let useful = self.cycles - self.stalls;
        if useful == 0 {
            return f64::INFINITY;
        }
        self.cycles as f64 / useful as f64 - 1.0
    }
}

/// `n` logical qubits, each with its own [`BtwcDecoder`], sharing one
/// off-chip link provisioned for `bandwidth` complex decodes per cycle.
///
/// When a cycle's complex-decode demand exceeds the link, the following
/// cycle is a stall: the waveform generator issues identity gates
/// (Fig. 10), no program progress is made, but errors — and therefore
/// new decode requests — keep arriving. [`BtwcSystem::is_stalled`]
/// tells the driver whether the machine will accept program gates next
/// cycle.
#[derive(Debug)]
pub struct BtwcSystem {
    decoders: Vec<BtwcDecoder>,
    queue: QueueSim,
    stalled: bool,
    stats: SystemStats,
}

impl BtwcSystem {
    /// Builds a system of `num_qubits` distance-`d` logical qubits
    /// behind a link of `bandwidth` decodes/cycle.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0` or `bandwidth == 0`.
    #[must_use]
    pub fn new(
        code: &SurfaceCode,
        ty: StabilizerType,
        num_qubits: usize,
        bandwidth: usize,
    ) -> Self {
        assert!(num_qubits > 0, "need at least one logical qubit");
        let decoders = (0..num_qubits).map(|_| BtwcDecoder::builder(code, ty).build()).collect();
        Self {
            decoders,
            queue: QueueSim::new(bandwidth),
            stalled: false,
            stats: SystemStats::default(),
        }
    }

    /// Number of logical qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.decoders.len()
    }

    /// Whether the next cycle will be a stall.
    #[must_use]
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Aggregate counters.
    #[must_use]
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Per-qubit decoder access (for inspecting coverage, etc.).
    #[must_use]
    pub fn decoder(&self, qubit: usize) -> &BtwcDecoder {
        &self.decoders[qubit]
    }

    /// Advances one cycle with one raw round per logical qubit.
    ///
    /// The rounds are always decoded (errors do not pause during
    /// stalls); the `stalled` flag in the returned [`SystemCycle`]
    /// reports whether this cycle executed program gates or idled.
    ///
    /// # Panics
    ///
    /// Panics if `rounds.len() != num_qubits()`.
    pub fn step(&mut self, rounds: &[Vec<bool>]) -> SystemCycle {
        assert_eq!(rounds.len(), self.decoders.len(), "one round per qubit");
        let was_stalled = self.stalled;
        let mut outcomes = Vec::with_capacity(self.decoders.len());
        let mut offchip = 0usize;
        for (dec, round) in self.decoders.iter_mut().zip(rounds) {
            let out = dec.process_round(round);
            offchip += usize::from(out.went_offchip());
            outcomes.push(out);
        }
        let record = self.queue.step(offchip);
        self.stalled = self.queue.backlog() > 0;
        self.stats.cycles += 1;
        self.stats.stalls += u64::from(was_stalled);
        self.stats.offchip_requests += offchip as u64;
        let _ = record;
        SystemCycle { outcomes, offchip_requests: offchip, stalled: was_stalled }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_noise::{NoiseModel, PhenomenologicalNoise, SimRng};

    fn quiet_rounds(code: &SurfaceCode, n: usize) -> Vec<Vec<bool>> {
        vec![vec![false; code.num_ancillas(StabilizerType::X)]; n]
    }

    #[test]
    fn quiet_system_never_stalls() {
        let code = SurfaceCode::new(3);
        let mut sys = BtwcSystem::new(&code, StabilizerType::X, 8, 2);
        for _ in 0..20 {
            let cycle = sys.step(&quiet_rounds(&code, 8));
            assert!(!cycle.stalled);
            assert_eq!(cycle.offchip_requests, 0);
        }
        assert_eq!(sys.stats().stalls, 0);
        assert!(sys.stats().execution_time_increase().abs() < 1e-12);
    }

    #[test]
    fn overflow_triggers_stall_next_cycle() {
        let code = SurfaceCode::new(7);
        // 4 qubits, bandwidth 1: force 2 simultaneous complex decodes.
        let mut sys = BtwcSystem::new(&code, StabilizerType::X, 4, 1);
        let mut errors = vec![false; code.num_data_qubits()];
        errors[3 * 7 + 3] = true;
        errors[4 * 7 + 3] = true; // interior chain => complex
        let complex_round = code.syndrome_of(StabilizerType::X, &errors);
        let quiet = vec![false; code.num_ancillas(StabilizerType::X)];
        // Two qubits see the chain, two stay quiet.
        let rounds =
            vec![complex_round.clone(), complex_round.clone(), quiet.clone(), quiet.clone()];
        let c1 = sys.step(&rounds); // filter filling; nothing yet
        assert_eq!(c1.offchip_requests, 0);
        let c2 = sys.step(&rounds); // both flagged complex, bandwidth 1
        assert_eq!(c2.offchip_requests, 2);
        assert!(!c2.stalled, "stall applies to the *next* cycle");
        let c3 = sys.step(&quiet_rounds(&code, 4));
        assert!(c3.stalled, "overflow must stall the following cycle");
        assert_eq!(sys.stats().stalls, 1);
    }

    #[test]
    fn noisy_run_has_bounded_stalling_with_p99_style_bandwidth() {
        let code = SurfaceCode::new(3);
        let ty = StabilizerType::X;
        let n_qubits = 16;
        let mut sys = BtwcSystem::new(&code, ty, n_qubits, 4);
        let noise = PhenomenologicalNoise::uniform(3e-3);
        let mut rng = SimRng::from_seed(0xE2E);
        let mut errors = vec![vec![false; code.num_data_qubits()]; n_qubits];
        for _ in 0..2000 {
            let rounds: Vec<Vec<bool>> = errors
                .iter_mut()
                .map(|e| {
                    noise.sample_data_into(&mut rng, e);
                    code.syndrome_of(ty, e)
                })
                .collect();
            let cycle = sys.step(&rounds);
            // Apply returned corrections to the tracked error states.
            for (e, out) in errors.iter_mut().zip(&cycle.outcomes) {
                if let Some(c) = out.correction() {
                    c.apply_to(e);
                }
            }
        }
        assert!(
            sys.stats().execution_time_increase() < 0.25,
            "execution increase {}",
            sys.stats().execution_time_increase()
        );
        // The decode loop keeps every qubit's syndrome under control.
        for e in &errors {
            let weight = code.syndrome_of(ty, e).iter().filter(|&&s| s).count();
            assert!(weight <= 6, "runaway syndrome weight {weight}");
        }
    }

    #[test]
    #[should_panic(expected = "one round per qubit")]
    fn wrong_round_count_rejected() {
        let code = SurfaceCode::new(3);
        let mut sys = BtwcSystem::new(&code, StabilizerType::X, 2, 1);
        let _ = sys.step(&quiet_rounds(&code, 1));
    }
}
