//! Deprecated multi-qubit shim over the machine tier.
//!
//! [`BtwcSystem`] was the original machine-level entry point: per-qubit
//! `Vec<bool>` rounds, a bare off-chip request counter, and no backend
//! choice. It survives as a thin wrapper over [`BtwcMachine`] so
//! pre-machine code keeps compiling — new code should drive
//! [`BtwcMachine::step`] with a packed
//! [`SyndromeBatch`](btwc_syndrome::SyndromeBatch) directly.

use btwc_lattice::{StabilizerType, SurfaceCode};

use crate::decoder::{BtwcOutcome, DecoderStats};
use crate::machine::BtwcMachine;

/// What happened across the whole machine in one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemCycle {
    /// Per-qubit outcomes for this cycle (empty on stall cycles).
    pub outcomes: Vec<BtwcOutcome>,
    /// Off-chip decode requests issued this cycle.
    pub offchip_requests: usize,
    /// Whether this cycle was a stall (idle-gate insertion, Sec. 5.2).
    pub stalled: bool,
}

/// Aggregate counters of a [`BtwcSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SystemStats {
    /// Total cycles elapsed (useful + stall).
    pub cycles: u64,
    /// Stall cycles inserted.
    pub stalls: u64,
    /// Total off-chip decode requests.
    pub offchip_requests: u64,
    /// Decode requests still waiting after the last cycle's service
    /// (previously computed and dropped on the floor).
    pub backlog: u64,
    /// Largest backlog left waiting after any cycle's service.
    pub peak_backlog: u64,
}

impl SystemStats {
    /// Relative execution-time increase from stalling.
    #[must_use]
    pub fn execution_time_increase(&self) -> f64 {
        let useful = self.cycles - self.stalls;
        if useful == 0 {
            return f64::INFINITY;
        }
        self.cycles as f64 / useful as f64 - 1.0
    }
}

/// `n` logical qubits sharing one off-chip link provisioned for
/// `bandwidth` complex decodes per cycle — the pre-batching API, now a
/// shim over [`BtwcMachine`].
#[deprecated(note = "use BtwcMachine: batched packed ingestion, unified DecoderBackend \
            selection, and transport-metered stats")]
#[derive(Debug)]
pub struct BtwcSystem {
    machine: BtwcMachine,
}

#[allow(deprecated)]
impl BtwcSystem {
    /// Builds a system of `num_qubits` distance-`d` logical qubits
    /// behind a link of `bandwidth` decodes/cycle.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0` or `bandwidth == 0`.
    #[must_use]
    pub fn new(
        code: &SurfaceCode,
        ty: StabilizerType,
        num_qubits: usize,
        bandwidth: usize,
    ) -> Self {
        Self { machine: BtwcMachine::builder(code, ty, num_qubits, bandwidth).build() }
    }

    /// Number of logical qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.machine.num_qubits()
    }

    /// Whether the next cycle will be a stall.
    #[must_use]
    pub fn is_stalled(&self) -> bool {
        self.machine.is_stalled()
    }

    /// Aggregate counters.
    #[must_use]
    pub fn stats(&self) -> SystemStats {
        let m = self.machine.stats();
        SystemStats {
            cycles: m.cycles,
            stalls: m.stalls,
            offchip_requests: m.offchip_requests,
            backlog: m.backlog,
            peak_backlog: m.peak_backlog,
        }
    }

    /// Per-qubit pipeline counters (for inspecting coverage, etc.).
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    #[must_use]
    pub fn decoder_stats(&self, qubit: usize) -> DecoderStats {
        self.machine.decoder_stats(qubit)
    }

    /// The backing machine, for incremental migration.
    #[must_use]
    pub fn machine(&mut self) -> &mut BtwcMachine {
        &mut self.machine
    }

    /// Advances one cycle with one raw round per logical qubit.
    ///
    /// # Panics
    ///
    /// Panics if `rounds.len() != num_qubits()`.
    pub fn step(&mut self, rounds: &[Vec<bool>]) -> SystemCycle {
        let cycle = self.machine.step_rounds(rounds);
        SystemCycle {
            outcomes: cycle.outcomes,
            offchip_requests: cycle.offchip_requests,
            stalled: cycle.stalled,
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use btwc_noise::{NoiseModel, PhenomenologicalNoise, SimRng};

    fn quiet_rounds(code: &SurfaceCode, n: usize) -> Vec<Vec<bool>> {
        vec![vec![false; code.num_ancillas(StabilizerType::X)]; n]
    }

    #[test]
    fn quiet_system_never_stalls() {
        let code = SurfaceCode::new(3);
        let mut sys = BtwcSystem::new(&code, StabilizerType::X, 8, 2);
        for _ in 0..20 {
            let cycle = sys.step(&quiet_rounds(&code, 8));
            assert!(!cycle.stalled);
            assert_eq!(cycle.offchip_requests, 0);
        }
        assert_eq!(sys.stats().stalls, 0);
        assert_eq!(sys.stats().peak_backlog, 0);
        assert!(sys.stats().execution_time_increase().abs() < 1e-12);
    }

    #[test]
    fn overflow_triggers_stall_next_cycle() {
        let code = SurfaceCode::new(7);
        // 4 qubits, bandwidth 1: force 2 simultaneous complex decodes.
        let mut sys = BtwcSystem::new(&code, StabilizerType::X, 4, 1);
        let mut errors = vec![false; code.num_data_qubits()];
        errors[3 * 7 + 3] = true;
        errors[4 * 7 + 3] = true; // interior chain => complex
        let complex_round = code.syndrome_of(StabilizerType::X, &errors);
        let quiet = vec![false; code.num_ancillas(StabilizerType::X)];
        // Two qubits see the chain, two stay quiet.
        let rounds =
            vec![complex_round.clone(), complex_round.clone(), quiet.clone(), quiet.clone()];
        let c1 = sys.step(&rounds); // filter filling; nothing yet
        assert_eq!(c1.offchip_requests, 0);
        let c2 = sys.step(&rounds); // both flagged complex, bandwidth 1
        assert_eq!(c2.offchip_requests, 2);
        assert!(!c2.stalled, "stall applies to the *next* cycle");
        // The dropped CycleRecord is dropped no longer: the backlog of
        // 1 unserviced decode is surfaced.
        assert_eq!(sys.stats().backlog, 1);
        assert_eq!(sys.stats().peak_backlog, 1);
        let c3 = sys.step(&quiet_rounds(&code, 4));
        assert!(c3.stalled, "overflow must stall the following cycle");
        assert_eq!(sys.stats().stalls, 1);
        assert_eq!(sys.stats().backlog, 0);
        assert_eq!(sys.stats().peak_backlog, 1);
    }

    #[test]
    fn noisy_run_has_bounded_stalling_with_p99_style_bandwidth() {
        let code = SurfaceCode::new(3);
        let ty = StabilizerType::X;
        let n_qubits = 16;
        let mut sys = BtwcSystem::new(&code, ty, n_qubits, 4);
        let noise = PhenomenologicalNoise::uniform(3e-3);
        let mut rng = SimRng::from_seed(0xE2E);
        let mut errors = vec![vec![false; code.num_data_qubits()]; n_qubits];
        for _ in 0..2000 {
            let rounds: Vec<Vec<bool>> = errors
                .iter_mut()
                .map(|e| {
                    noise.sample_data_into(&mut rng, e);
                    code.syndrome_of(ty, e)
                })
                .collect();
            let cycle = sys.step(&rounds);
            // Apply returned corrections to the tracked error states.
            for (e, out) in errors.iter_mut().zip(&cycle.outcomes) {
                if let Some(c) = out.correction() {
                    c.apply_to(e);
                }
            }
        }
        assert!(
            sys.stats().execution_time_increase() < 0.25,
            "execution increase {}",
            sys.stats().execution_time_increase()
        );
        // The decode loop keeps every qubit's syndrome under control.
        for e in &errors {
            let weight = code.syndrome_of(ty, e).iter().filter(|&&s| s).count();
            assert!(weight <= 6, "runaway syndrome weight {weight}");
        }
    }

    #[test]
    #[should_panic(expected = "one round per qubit")]
    fn wrong_round_count_rejected() {
        let code = SurfaceCode::new(3);
        let mut sys = BtwcSystem::new(&code, StabilizerType::X, 2, 1);
        let _ = sys.step(&quiet_rounds(&code, 1));
    }
}
