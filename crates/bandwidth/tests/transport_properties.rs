//! Property coverage of the wire framing: lossless round-trips over
//! random round counts/widths, and rejection of every malformed frame
//! class ([`ParseFrameError`]: truncated header, corrupt header,
//! truncated payload).

use btwc_bandwidth::{DecodeRequest, ParseFrameError};
use proptest::prelude::*;

fn request_strategy() -> impl Strategy<Value = DecodeRequest> {
    (1usize..10, 1usize..300usize, 0u32..1000, 0u64..1_000_000).prop_flat_map(
        |(rounds, width, qubit, cycle)| {
            proptest::collection::vec(proptest::collection::vec(any::<bool>(), width), rounds)
                .prop_map(move |rs| DecodeRequest::new(qubit, cycle, rs))
        },
    )
}

proptest! {
    /// Encode → decode is the identity for any round count and width
    /// (including widths crossing byte and word boundaries).
    #[test]
    fn roundtrip_is_lossless(req in request_strategy()) {
        let frame = req.encode();
        prop_assert_eq!(frame.len(), req.frame_len());
        let back = DecodeRequest::decode(&frame).expect("well-formed frame parses");
        prop_assert_eq!(back, req);
    }

    /// The closed-form frame length used for transport accounting
    /// (16-byte header + rounds × ceil(width/8) payload) matches the
    /// bytes actually serialized, so the machine tier's frame-byte
    /// meter (`MachineStats::frame_bytes`, `machine.frame_bytes`
    /// telemetry) is exact for any round count and width — summing
    /// `frame_len()` over a burst of escalations equals the total
    /// wire bytes shipped.
    #[test]
    fn frame_byte_accounting_matches_serialization(
        reqs in proptest::collection::vec(request_strategy(), 1..8)
    ) {
        let mut metered = 0usize;
        let mut shipped = 0usize;
        for req in &reqs {
            let frame = req.encode();
            let payload = req.rounds.len() * req.bits_per_round().div_ceil(8);
            prop_assert_eq!(frame.len(), 16 + payload);
            prop_assert_eq!(req.frame_len(), frame.len());
            metered += req.frame_len();
            shipped += frame.len();
        }
        prop_assert_eq!(metered, shipped);
    }

    /// Every strict prefix of the header is rejected as truncated; a
    /// complete header with a short payload is rejected with the exact
    /// byte accounting.
    #[test]
    fn every_truncation_is_rejected(req in request_strategy(), cut_seed in 0usize..10_000) {
        let frame = req.encode();
        let cut = cut_seed % frame.len();
        match DecodeRequest::decode(&frame[..cut]) {
            Err(ParseFrameError::TruncatedHeader) => prop_assert!(cut < 16),
            Err(ParseFrameError::TruncatedPayload { expected, actual }) => {
                prop_assert!(cut >= 16);
                prop_assert_eq!(actual, cut - 16);
                prop_assert_eq!(
                    expected,
                    req.rounds.len() * req.bits_per_round().div_ceil(8)
                );
            }
            other => prop_assert!(false, "cut {cut} parsed as {other:?}"),
        }
    }

    /// A header declaring zero rounds or zero bits per round can never
    /// come from a valid encoder ([`DecodeRequest::new`] rejects both)
    /// and must be flagged corrupt, not silently parsed into an empty
    /// request.
    #[test]
    fn corrupt_header_is_rejected(req in request_strategy(), zero_width in any::<bool>()) {
        let mut frame = req.encode().to_vec();
        // Rounds live at bytes 12..14, width at 14..16 (big endian).
        let field = if zero_width { 14 } else { 12 };
        frame[field] = 0;
        frame[field + 1] = 0;
        match DecodeRequest::decode(&frame) {
            Err(ParseFrameError::CorruptHeader { reason }) => {
                prop_assert!(reason.contains(if zero_width { "bits per round" } else { "rounds" }));
            }
            other => prop_assert!(false, "corrupt header parsed as {other:?}"),
        }
    }

    /// Extra trailing bytes beyond the declared payload are ignored
    /// (frames may arrive in a larger buffer), and the parse still
    /// reconstructs the original request.
    #[test]
    fn trailing_bytes_are_tolerated(req in request_strategy(), extra in 1usize..16) {
        let mut frame = req.encode().to_vec();
        frame.extend(std::iter::repeat_n(0xAA, extra));
        let back = DecodeRequest::decode(&frame).expect("padded frame parses");
        prop_assert_eq!(back, req);
    }
}

#[test]
fn corrupt_header_error_messages_are_informative() {
    let req = DecodeRequest::new(1, 2, vec![vec![true, false, true]]);
    let mut zero_rounds = req.encode().to_vec();
    zero_rounds[12] = 0;
    zero_rounds[13] = 0;
    let err = DecodeRequest::decode(&zero_rounds).unwrap_err();
    assert_eq!(err.to_string(), "frame header corrupt: zero rounds declared");
    let mut zero_width = req.encode().to_vec();
    zero_width[14] = 0;
    zero_width[15] = 0;
    let err = DecodeRequest::decode(&zero_width).unwrap_err();
    assert_eq!(err.to_string(), "frame header corrupt: zero bits per round declared");
}
