//! Property coverage of the wire framing: lossless round-trips over
//! random round counts/widths, and rejection of every malformed frame
//! class ([`ParseFrameError`]: truncated header, corrupt header,
//! truncated payload).

use btwc_bandwidth::{DecodeRequest, ParseFrameError, SeqStatus, SequenceTracker};
use proptest::prelude::*;

fn request_strategy() -> impl Strategy<Value = DecodeRequest> {
    (1usize..10, 1usize..300usize, 0u32..1000, 0u64..1_000_000).prop_flat_map(
        |(rounds, width, qubit, cycle)| {
            proptest::collection::vec(proptest::collection::vec(any::<bool>(), width), rounds)
                .prop_map(move |rs| DecodeRequest::new(qubit, cycle, rs))
        },
    )
}

fn request_v2_strategy() -> impl Strategy<Value = DecodeRequest> {
    (request_strategy(), any::<u32>()).prop_map(|(req, seq)| req.with_seq(seq))
}

proptest! {
    /// Encode → decode is the identity for any round count and width
    /// (including widths crossing byte and word boundaries).
    #[test]
    fn roundtrip_is_lossless(req in request_strategy()) {
        let frame = req.encode();
        prop_assert_eq!(frame.len(), req.frame_len());
        let back = DecodeRequest::decode(&frame).expect("well-formed frame parses");
        prop_assert_eq!(back, req);
    }

    /// The closed-form frame length used for transport accounting
    /// (16-byte header + rounds × ceil(width/8) payload) matches the
    /// bytes actually serialized, so the machine tier's frame-byte
    /// meter (`MachineStats::frame_bytes`, `machine.frame_bytes`
    /// telemetry) is exact for any round count and width — summing
    /// `frame_len()` over a burst of escalations equals the total
    /// wire bytes shipped.
    #[test]
    fn frame_byte_accounting_matches_serialization(
        reqs in proptest::collection::vec(request_strategy(), 1..8)
    ) {
        let mut metered = 0usize;
        let mut shipped = 0usize;
        for req in &reqs {
            let frame = req.encode();
            let payload = req.rounds.len() * req.bits_per_round().div_ceil(8);
            prop_assert_eq!(frame.len(), 16 + payload);
            prop_assert_eq!(req.frame_len(), frame.len());
            metered += req.frame_len();
            shipped += frame.len();
        }
        prop_assert_eq!(metered, shipped);
    }

    /// Every strict prefix of the header is rejected as truncated; a
    /// complete header with a short payload is rejected with the exact
    /// byte accounting.
    #[test]
    fn every_truncation_is_rejected(req in request_strategy(), cut_seed in 0usize..10_000) {
        let frame = req.encode();
        let cut = cut_seed % frame.len();
        match DecodeRequest::decode(&frame[..cut]) {
            Err(ParseFrameError::TruncatedHeader) => prop_assert!(cut < 16),
            Err(ParseFrameError::TruncatedPayload { expected, actual }) => {
                prop_assert!(cut >= 16);
                prop_assert_eq!(actual, cut - 16);
                prop_assert_eq!(
                    expected,
                    req.rounds.len() * req.bits_per_round().div_ceil(8)
                );
            }
            other => prop_assert!(false, "cut {cut} parsed as {other:?}"),
        }
    }

    /// A header declaring zero rounds or zero bits per round can never
    /// come from a valid encoder ([`DecodeRequest::new`] rejects both)
    /// and must be flagged corrupt, not silently parsed into an empty
    /// request.
    #[test]
    fn corrupt_header_is_rejected(req in request_strategy(), zero_width in any::<bool>()) {
        let mut frame = req.encode().to_vec();
        // Rounds live at bytes 12..14, width at 14..16 (big endian).
        let field = if zero_width { 14 } else { 12 };
        frame[field] = 0;
        frame[field + 1] = 0;
        match DecodeRequest::decode(&frame) {
            Err(ParseFrameError::CorruptHeader { reason }) => {
                prop_assert!(reason.contains(if zero_width { "bits per round" } else { "rounds" }));
            }
            other => prop_assert!(false, "corrupt header parsed as {other:?}"),
        }
    }

    /// Extra trailing bytes beyond the declared payload are ignored
    /// (frames may arrive in a larger buffer), and the parse still
    /// reconstructs the original request.
    #[test]
    fn trailing_bytes_are_tolerated(req in request_strategy(), extra in 1usize..16) {
        let mut frame = req.encode().to_vec();
        frame.extend(std::iter::repeat_n(0xAA, extra));
        let back = DecodeRequest::decode(&frame).expect("padded frame parses");
        prop_assert_eq!(back, req);
    }

    /// v2 encode → decode is the identity — including the sequence
    /// number — both through the strict v2 parser and through the
    /// version-discriminating auto parser.
    #[test]
    fn v2_roundtrip_is_lossless(req in request_v2_strategy()) {
        let frame = req.encode_v2();
        prop_assert_eq!(frame.len(), req.frame_len_v2());
        let strict = DecodeRequest::decode_v2(&frame).expect("well-formed v2 frame parses");
        prop_assert_eq!(&strict, &req);
        let auto = DecodeRequest::decode(&frame).expect("auto parser takes the v2 path");
        prop_assert_eq!(auto, req);
    }

    /// **Every** single-bit flip of a v2 frame is detected: the CRC
    /// covers header and payload, so no one-bit corruption — magic,
    /// version, shape fields, sequence number, payload, or the CRC
    /// itself — can parse back as a valid request. This is exhaustive
    /// over all bit positions of each generated frame, not sampled.
    ///
    /// The auto-detecting [`DecodeRequest::decode`] is covered too: a
    /// flip in the magic bytes demotes the frame to the CRC-less v1
    /// fallback, which *may* parse — but only a magic flip can reach
    /// it, and it can never silently reconstruct the request that was
    /// sent. That residual hole is why a v2-only receiver (the machine
    /// tier) must parse with the strict `decode_v2`.
    #[test]
    fn every_single_bit_flip_is_detected(req in request_v2_strategy()) {
        let frame = req.encode_v2().to_vec();
        let mut flipped = frame.clone();
        for bit in 0..frame.len() * 8 {
            flipped[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(
                DecodeRequest::decode_v2(&flipped).is_err(),
                "bit {bit} flipped but frame still parsed"
            );
            match DecodeRequest::decode(&flipped) {
                Err(_) => {}
                Ok(got) => {
                    prop_assert!(
                        bit < 16,
                        "flip at non-magic bit {bit} parsed via the v1 fallback"
                    );
                    prop_assert_ne!(
                        &got, &req,
                        "magic flip at bit {bit} silently round-tripped"
                    );
                }
            }
            flipped[bit / 8] ^= 1 << (bit % 8);
        }
        prop_assert_eq!(&flipped, &frame);
    }

    /// The sequence tracker tells a retransmitted duplicate from the
    /// next fresh request for any starting sequence number and any
    /// duplication count, and flags any gap without advancing.
    #[test]
    fn sequence_tracker_classifies_duplicates_and_gaps(
        start in 0u32..u32::MAX - 64,
        dups in 0usize..4,
        gap in 2u32..32,
    ) {
        let mut tracker = SequenceTracker::new();
        tracker.resync(start);
        prop_assert_eq!(tracker.accept(start), Ok(SeqStatus::Fresh));
        // A retransmission storm of the same frame: every extra copy is
        // a duplicate, and the tracker keeps expecting the successor.
        for _ in 0..dups {
            prop_assert_eq!(tracker.accept(start), Ok(SeqStatus::Duplicate));
        }
        prop_assert_eq!(tracker.expected(), start + 1);
        // A reordered (future) frame is a gap: flagged, not accepted.
        prop_assert_eq!(
            tracker.accept(start + gap),
            Err(ParseFrameError::SequenceGap { expected: start + 1, got: start + gap })
        );
        prop_assert_eq!(tracker.expected(), start + 1, "a gap must not advance the tracker");
        // The in-order successor is still fresh after all of the above.
        prop_assert_eq!(tracker.accept(start + 1), Ok(SeqStatus::Fresh));
    }

    /// Version discrimination: the auto parser routes v1 frames to the
    /// legacy parser and v2 frames to the checksummed parser, for the
    /// same logical request — and the strict v2 parser refuses the v1
    /// encoding outright.
    #[test]
    fn v1_and_v2_frames_are_discriminated(req in request_v2_strategy()) {
        let v1 = req.encode();
        let v2 = req.encode_v2();
        // v1 loses the sequence number (it has no field for it).
        let from_v1 = DecodeRequest::decode(&v1).expect("v1 parses");
        prop_assert_eq!(from_v1.seq, 0);
        prop_assert_eq!(&from_v1.rounds, &req.rounds);
        prop_assert_eq!(from_v1.qubit, req.qubit);
        let from_v2 = DecodeRequest::decode(&v2).expect("v2 parses");
        prop_assert_eq!(from_v2, req);
        prop_assert!(DecodeRequest::decode_v2(&v1).is_err(), "strict v2 must reject v1 frames");
    }
}

#[test]
fn corrupt_header_error_messages_are_informative() {
    let req = DecodeRequest::new(1, 2, vec![vec![true, false, true]]);
    let mut zero_rounds = req.encode().to_vec();
    zero_rounds[12] = 0;
    zero_rounds[13] = 0;
    let err = DecodeRequest::decode(&zero_rounds).unwrap_err();
    assert_eq!(err.to_string(), "frame header corrupt: zero rounds declared");
    let mut zero_width = req.encode().to_vec();
    zero_width[14] = 0;
    zero_width[15] = 0;
    let err = DecodeRequest::decode(&zero_width).unwrap_err();
    assert_eq!(err.to_string(), "frame header corrupt: zero bits per round declared");
}
