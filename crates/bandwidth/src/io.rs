//! Physical I/O accounting: decodes/cycle → Gbps at the refrigerator
//! boundary (the paper's Sec. 2.3 framing of the scalability problem).

/// Converts abstract per-cycle decode counts into link bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoModel {
    /// Syndrome-measurement cycle time in nanoseconds (superconducting
    /// surface-code cycles are a few hundred ns).
    pub cycle_ns: f64,
    /// Bits shipped per off-chip decode request (one qubit's raw
    /// syndrome for one round).
    pub bits_per_decode: usize,
}

impl IoModel {
    /// Model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `cycle_ns <= 0` or `bits_per_decode == 0`.
    #[must_use]
    pub fn new(cycle_ns: f64, bits_per_decode: usize) -> Self {
        assert!(cycle_ns > 0.0, "cycle time must be positive");
        assert!(bits_per_decode > 0, "bits per decode must be positive");
        Self { cycle_ns, bits_per_decode }
    }

    /// Default model for a distance-`d` code: both stabilizer types'
    /// syndromes (`d²-1` bits) per decode, 400 ns cycles.
    ///
    /// # Panics
    ///
    /// Panics if `d < 2`.
    #[must_use]
    pub fn for_distance(d: u16) -> Self {
        assert!(d >= 2, "need a real code distance");
        let bits = usize::from(d) * usize::from(d) - 1;
        Self::new(400.0, bits)
    }

    /// Link bandwidth in Gbit/s for a given number of decodes per cycle.
    #[must_use]
    pub fn gbps(&self, decodes_per_cycle: f64) -> f64 {
        decodes_per_cycle * self.bits_per_decode as f64 / self.cycle_ns
    }

    /// The unmitigated baseline: every one of `num_qubits` logical
    /// qubits ships its full syndrome every cycle (the paper's "multiple
    /// Gbps per logical qubit" scalability wall).
    #[must_use]
    pub fn full_stream_gbps(&self, num_qubits: usize) -> f64 {
        self.gbps(num_qubits as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d21_full_stream_is_multiple_gbps_per_qubit() {
        // The paper's motivating number: per-qubit syndrome streaming at
        // realistic cycle times costs ~Gbps.
        let io = IoModel::for_distance(21);
        let per_qubit = io.full_stream_gbps(1);
        assert!(per_qubit > 0.5 && per_qubit < 10.0, "d=21 per-qubit stream {per_qubit} Gbps");
    }

    #[test]
    fn thousand_qubit_machine_needs_terabit_without_btwc() {
        let io = IoModel::for_distance(15);
        let full = io.full_stream_gbps(1000);
        assert!(full > 100.0, "1000-qubit full stream {full} Gbps");
        // With 99% Clique coverage + p99.9 provisioning at ~20 decodes
        // per cycle, the same machine needs only:
        let provisioned = io.gbps(20.0);
        assert!(provisioned < full / 10.0);
    }

    #[test]
    fn gbps_scales_linearly() {
        let io = IoModel::new(1000.0, 100);
        assert!((io.gbps(1.0) - 0.1).abs() < 1e-12);
        assert!((io.gbps(10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_cycle() {
        let _ = IoModel::new(0.0, 10);
    }
}
