//! Deterministic fault injection for the off-chip serial link.
//!
//! Real cryo/room-temperature links flip bits, lose frames, and jitter.
//! [`FaultyLink`] models that as a per-frame fault draw driven by the
//! workspace [`SimRng`]: every transmitted frame rolls, in a fixed
//! order, for **drop → bit flip → truncation → duplication →
//! reordering** — the *first* fault drawn applies (at most one
//! integrity fault per frame), plus an independent delay-jitter roll.
//! One-fault-per-frame keeps injected and observed counts in exact
//! 1:1 correspondence: a receiver classifying each delivery as
//! dropped / corrupt / duplicate / reordered sees precisely the counts
//! the link reports in [`LinkFaultStats`], which the telemetry
//! acceptance pins rely on.
//!
//! Determinism: the link owns its own forked RNG stream and is driven
//! serially by the machine tier (one `transmit` per escalation attempt
//! in qubit order), so the injected fault pattern is bit-reproducible
//! for any seed and any `BTWC_WORKERS` — worker threads live inside
//! the decoder backends, never inside the link. A model with all
//! probabilities zero ([`LinkFaultModel::none`]) draws nothing at all,
//! so a zero-fault link is bit-identical to no link model whatsoever,
//! regardless of its seed.

use btwc_noise::SimRng;

/// Per-frame fault probabilities of a [`FaultyLink`].
///
/// Each field is the probability that the corresponding fault is
/// *rolled* for a frame; integrity faults (everything except `delay`)
/// are mutually exclusive per frame — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaultModel {
    /// Frame lost entirely: nothing is delivered.
    pub drop: f64,
    /// One uniformly-chosen bit of the frame is inverted.
    pub bit_flip: f64,
    /// The frame is cut at a uniformly-chosen byte boundary.
    pub truncate: f64,
    /// The frame is delivered twice (the copy is identical).
    pub duplicate: f64,
    /// The frame arrives outside the receiver's reorder window and is
    /// classified stale (sequence-number reordering).
    pub reorder: f64,
    /// An extra delivery-delay jitter roll (independent of the above).
    pub delay: f64,
    /// Jitter magnitude: a delayed frame waits `1..=max_delay_cycles`
    /// extra cycles.
    pub max_delay_cycles: u64,
}

impl LinkFaultModel {
    /// The perfect link: every probability zero. A [`FaultyLink`] with
    /// this model draws no randomness and injects nothing.
    #[must_use]
    pub fn none() -> Self {
        Self {
            drop: 0.0,
            bit_flip: 0.0,
            truncate: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            delay: 0.0,
            max_delay_cycles: 0,
        }
    }

    /// A uniform model: every fault class (including delay, with a
    /// 4-cycle jitter cap) at probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn uniform(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        Self {
            drop: p,
            bit_flip: p,
            truncate: p,
            duplicate: p,
            reorder: p,
            delay: p,
            max_delay_cycles: 4,
        }
    }

    /// Whether every probability is exactly zero (the fast path that
    /// draws no randomness).
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.drop == 0.0
            && self.bit_flip == 0.0
            && self.truncate == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.delay == 0.0
    }
}

impl Default for LinkFaultModel {
    fn default() -> Self {
        Self::none()
    }
}

/// Injection totals of a [`FaultyLink`] — link-side truth to check
/// receiver-side observations against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkFaultStats {
    /// Frames handed to [`FaultyLink::transmit`].
    pub frames_sent: u64,
    /// Frames dropped (no delivery).
    pub dropped: u64,
    /// Frames with one bit inverted.
    pub bit_flipped: u64,
    /// Frames cut short.
    pub truncated: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames delivered stale (reordered).
    pub reordered: u64,
    /// Frames hit by delay jitter.
    pub delayed: u64,
}

impl LinkFaultStats {
    /// Frames whose *bytes* were damaged (bit flips + truncations) —
    /// what a CRC-checking receiver counts as corrupt.
    #[must_use]
    pub fn corrupted(&self) -> u64 {
        self.bit_flipped + self.truncated
    }
}

/// One frame as it comes off the link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The delivered bytes (possibly corrupted or truncated).
    pub bytes: Vec<u8>,
    /// Whether the frame arrived outside the receiver's reorder
    /// window: a sequence-stale delivery the receiver must discard.
    pub stale: bool,
}

/// Everything one [`FaultyLink::transmit`] produced.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Transmission {
    /// Deliveries in arrival order: empty when the frame was dropped,
    /// two entries when it was duplicated.
    pub deliveries: Vec<Delivery>,
    /// Extra cycles of delay jitter this frame suffered.
    pub delay_cycles: u64,
}

/// A serial link that deterministically injects [`LinkFaultModel`]
/// faults into transmitted frames.
#[derive(Debug, Clone)]
pub struct FaultyLink {
    model: LinkFaultModel,
    rng: SimRng,
    stats: LinkFaultStats,
}

impl FaultyLink {
    /// A link injecting `model` faults from its own RNG stream seeded
    /// by `seed`.
    #[must_use]
    pub fn new(model: LinkFaultModel, seed: u64) -> Self {
        Self { model, rng: SimRng::from_seed(seed), stats: LinkFaultStats::default() }
    }

    /// A perfect link (zero-probability model; the seed is irrelevant
    /// because nothing is ever drawn).
    #[must_use]
    pub fn perfect() -> Self {
        Self::new(LinkFaultModel::none(), 0)
    }

    /// The configured fault model.
    #[must_use]
    pub fn model(&self) -> &LinkFaultModel {
        &self.model
    }

    /// Injection totals so far.
    #[must_use]
    pub fn stats(&self) -> LinkFaultStats {
        self.stats
    }

    /// Sends one frame across the link, rolling the fault model, and
    /// returns what the receiver sees.
    ///
    /// Zero-probability faults are never rolled (no RNG draw), so a
    /// [`LinkFaultModel::none`] link consumes no randomness at all and
    /// always delivers the frame verbatim.
    pub fn transmit(&mut self, frame: &[u8]) -> Transmission {
        self.stats.frames_sent += 1;
        let mut tx = Transmission::default();
        // Independent delay-jitter roll (does not damage the bytes).
        if self.roll(self.model.delay) && self.model.max_delay_cycles > 0 {
            self.stats.delayed += 1;
            tx.delay_cycles = 1 + self.rng.next_u64() % self.model.max_delay_cycles;
        }
        // First integrity fault drawn wins (at most one per frame).
        if self.roll(self.model.drop) {
            self.stats.dropped += 1;
            return tx;
        }
        let mut bytes = frame.to_vec();
        let mut stale = false;
        let mut duplicate = false;
        if self.roll(self.model.bit_flip) && !bytes.is_empty() {
            self.stats.bit_flipped += 1;
            let bit = self.rng.below(bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
        } else if self.roll(self.model.truncate) && !bytes.is_empty() {
            self.stats.truncated += 1;
            bytes.truncate(self.rng.below(bytes.len()));
        } else if self.roll(self.model.duplicate) {
            self.stats.duplicated += 1;
            duplicate = true;
        } else if self.roll(self.model.reorder) {
            self.stats.reordered += 1;
            stale = true;
        }
        tx.deliveries.push(Delivery { bytes: bytes.clone(), stale });
        if duplicate {
            tx.deliveries.push(Delivery { bytes, stale: false });
        }
        tx
    }

    /// Bernoulli roll that skips the RNG entirely at probability zero,
    /// so zero-probability models are draw-free (and therefore
    /// seed-independent).
    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.bernoulli(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Vec<u8> {
        (0u8..64).collect()
    }

    #[test]
    fn perfect_link_is_transparent_and_draws_nothing() {
        let mut a = FaultyLink::perfect();
        let mut b = FaultyLink::new(LinkFaultModel::none(), 0xDEAD_BEEF);
        for _ in 0..100 {
            let ta = a.transmit(&frame());
            let tb = b.transmit(&frame());
            assert_eq!(ta, tb, "zero-fault links must be seed-independent");
            assert_eq!(ta.deliveries.len(), 1);
            assert_eq!(ta.deliveries[0].bytes, frame());
            assert!(!ta.deliveries[0].stale);
            assert_eq!(ta.delay_cycles, 0);
        }
        assert_eq!(a.stats(), LinkFaultStats { frames_sent: 100, ..Default::default() });
    }

    #[test]
    fn same_seed_reproduces_fault_pattern() {
        let model = LinkFaultModel::uniform(0.2);
        let mut a = FaultyLink::new(model, 7);
        let mut b = FaultyLink::new(model, 7);
        for _ in 0..500 {
            assert_eq!(a.transmit(&frame()), b.transmit(&frame()));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn at_most_one_integrity_fault_per_frame() {
        let model = LinkFaultModel::uniform(0.5);
        let mut link = FaultyLink::new(model, 21);
        let mut sent = 0u64;
        for _ in 0..2000 {
            let tx = link.transmit(&frame());
            sent += 1;
            // Dropped: nothing; duplicated: two identical deliveries;
            // otherwise exactly one delivery.
            assert!(tx.deliveries.len() <= 2);
            if tx.deliveries.len() == 2 {
                assert_eq!(tx.deliveries[0].bytes, frame(), "duplicates are of clean frames");
                assert_eq!(tx.deliveries[0].bytes, tx.deliveries[1].bytes);
            }
        }
        let s = link.stats();
        assert_eq!(s.frames_sent, sent);
        // Exclusivity: the per-class injections sum to at most one per frame.
        assert!(s.dropped + s.bit_flipped + s.truncated + s.duplicated + s.reordered <= sent);
        // At p=0.5 per class every class fires often.
        for (name, n) in [
            ("dropped", s.dropped),
            ("bit_flipped", s.bit_flipped),
            ("truncated", s.truncated),
            ("duplicated", s.duplicated),
            ("reordered", s.reordered),
            ("delayed", s.delayed),
        ] {
            assert!(n > 0, "{name} never fired in 2000 frames");
        }
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let model = LinkFaultModel { bit_flip: 1.0, ..LinkFaultModel::none() };
        let mut link = FaultyLink::new(model, 3);
        for _ in 0..100 {
            let tx = link.transmit(&frame());
            let delivered = &tx.deliveries[0].bytes;
            let diff: u32 = delivered.iter().zip(frame()).map(|(a, b)| (a ^ b).count_ones()).sum();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn truncation_shortens_the_frame() {
        let model = LinkFaultModel { truncate: 1.0, ..LinkFaultModel::none() };
        let mut link = FaultyLink::new(model, 5);
        for _ in 0..100 {
            let tx = link.transmit(&frame());
            assert!(tx.deliveries[0].bytes.len() < frame().len());
        }
    }

    #[test]
    fn delay_jitter_is_bounded() {
        let model = LinkFaultModel { delay: 1.0, max_delay_cycles: 7, ..LinkFaultModel::none() };
        let mut link = FaultyLink::new(model, 9);
        for _ in 0..200 {
            let d = link.transmit(&frame()).delay_cycles;
            assert!((1..=7).contains(&d));
        }
        assert_eq!(link.stats().delayed, 200);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn uniform_rejects_bad_probability() {
        let _ = LinkFaultModel::uniform(1.2);
    }
}
