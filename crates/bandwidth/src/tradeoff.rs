//! The bandwidth-reduction vs execution-time trade-off (Fig. 16).

use btwc_noise::SimRng;

use crate::arrivals::ArrivalModel;
use crate::queue::QueueSim;

/// One point on a Fig. 16 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Percentile used for provisioning.
    pub percentile: f64,
    /// Provisioned bandwidth (decodes per cycle).
    pub bandwidth: usize,
    /// Off-chip bandwidth reduction versus shipping every qubit's
    /// syndrome every cycle (`num_qubits / bandwidth`) — the x-axis.
    pub reduction: f64,
    /// Relative execution-time increase from stalling — the y-axis.
    pub execution_time_increase: f64,
    /// Fraction of cycles spent stalled.
    pub stall_fraction: f64,
}

/// Sweeps provisioning percentiles and simulates each point, producing
/// one Fig. 16 curve for the given demand model.
///
/// # Panics
///
/// Panics if `percentiles` is empty or `useful_cycles == 0`.
#[must_use]
pub fn sweep_tradeoff(
    model: &ArrivalModel,
    rng: &mut SimRng,
    percentiles: &[f64],
    useful_cycles: usize,
) -> Vec<TradeoffPoint> {
    assert!(!percentiles.is_empty(), "need at least one percentile");
    assert!(useful_cycles > 0, "need at least one useful cycle");
    let qubits = model.num_qubits() as f64;
    percentiles
        .iter()
        .map(|&pct| {
            let mut prov_rng = rng.fork((pct * 1e6) as u64);
            let bandwidth = model.bandwidth_at_percentile(&mut prov_rng, pct, 20_000);
            let mut run_rng = rng.fork((pct * 1e6) as u64 + 1);
            let mut sim = QueueSim::new(bandwidth);
            let out = sim.run(model, &mut run_rng, useful_cycles);
            TradeoffPoint {
                percentile: pct,
                bandwidth,
                reduction: qubits / bandwidth as f64,
                execution_time_increase: out.execution_time_increase(),
                stall_fraction: out.stall_fraction(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_monotone_tradeoff() {
        // Higher percentile -> more bandwidth -> less reduction but less
        // stalling: the defining shape of Fig. 16.
        let model = ArrivalModel::bernoulli(1000, 0.03);
        let mut rng = SimRng::from_seed(0x16);
        let pts = sweep_tradeoff(&model, &mut rng, &[0.5, 0.9, 0.99, 0.999], 5_000);
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(w[1].bandwidth >= w[0].bandwidth);
            assert!(w[1].reduction <= w[0].reduction + 1e-9);
            assert!(
                w[1].execution_time_increase <= w[0].execution_time_increase + 0.02,
                "stalling should not grow with provisioning"
            );
        }
    }

    #[test]
    fn practical_point_matches_paper_scale() {
        // With ~97% Clique coverage over 1000 qubits, the paper expects
        // order-10x bandwidth reduction at ~10% execution-time cost.
        let model = ArrivalModel::bernoulli(1000, 0.03);
        let mut rng = SimRng::from_seed(0x17);
        let pts = sweep_tradeoff(&model, &mut rng, &[0.999], 20_000);
        let p = pts[0];
        assert!(p.reduction > 5.0, "reduction {}", p.reduction);
        assert!(p.execution_time_increase < 0.10, "increase {}", p.execution_time_increase);
    }

    #[test]
    fn reduction_is_qubits_over_bandwidth() {
        let model = ArrivalModel::bernoulli(200, 0.1);
        let mut rng = SimRng::from_seed(0x18);
        let pts = sweep_tradeoff(&model, &mut rng, &[0.99], 1000);
        let p = pts[0];
        assert!((p.reduction - 200.0 / p.bandwidth as f64).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one percentile")]
    fn empty_percentiles_rejected() {
        let model = ArrivalModel::bernoulli(10, 0.1);
        let mut rng = SimRng::from_seed(0);
        let _ = sweep_tradeoff(&model, &mut rng, &[], 10);
    }
}
