//! Statistical off-chip bandwidth allocation and decode-overflow
//! stalling — the paper's second and third contributions (Sec. 5).
//!
//! The Clique predecoder leaves a rare stream of complex decodes that
//! must cross the refrigerator boundary. Provisioning that link for the
//! *average* complex-decode rate diverges: the stall cycles themselves
//! generate new errors, so the backlog compounds (Fig. 9, top).
//! Provisioning at a high percentile of the per-cycle demand
//! distribution keeps stalls rare and the backlog bounded (Fig. 9,
//! bottom); sweeping the percentile trades bandwidth against execution
//! time (Fig. 16).
//!
//! # Example
//!
//! ```
//! use btwc_bandwidth::{ArrivalModel, QueueSim};
//! use btwc_noise::SimRng;
//!
//! // 1000 logical qubits, each needing off-chip decode 5% of cycles.
//! let arrivals = ArrivalModel::bernoulli(1000, 0.05);
//! let mut rng = SimRng::from_seed(1);
//! // Provision at the 99th percentile of per-cycle demand:
//! let bw = arrivals.bandwidth_at_percentile(&mut rng, 0.99, 10_000);
//! let mut sim = QueueSim::new(bw);
//! let outcome = sim.run(&arrivals, &mut rng, 10_000);
//! assert!(outcome.execution_time_increase() < 0.05);
//! ```

mod analytic;
mod arrivals;
mod fault;
mod io;
mod queue;
mod tradeoff;
mod transport;

pub use analytic::{gaussian_bandwidth, is_stable, normal_quantile};
pub use arrivals::ArrivalModel;
pub use fault::{Delivery, FaultyLink, LinkFaultModel, LinkFaultStats, Transmission};
pub use io::IoModel;
pub use queue::{CycleRecord, QueueSim, RunOutcome};
pub use tradeoff::{sweep_tradeoff, TradeoffPoint};
pub use transport::{
    crc32, DecodeRequest, ParseFrameError, SeqStatus, SequenceTracker, FRAME_MAGIC,
    FRAME_V2_HEADER, FRAME_V2_TRAILER, FRAME_VERSION_V2,
};
