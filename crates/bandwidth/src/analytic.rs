//! Closed-form approximations for provisioning, cross-validated against
//! the cycle-accurate queue simulator.
//!
//! Two results back the paper's Sec. 5 qualitative claims analytically:
//!
//! * **stability**: the queue is positive recurrent iff the provisioned
//!   bandwidth exceeds the mean demand — provisioning *at* the mean
//!   diverges (Fig. 9 top);
//! * **Gaussian provisioning**: for Binomial(Q, q) demand the
//!   percentile rule reduces to `B ≈ μ + z·σ`, giving the provisioned
//!   bandwidth and reduction factor without simulation.

use crate::arrivals::ArrivalModel;

/// Approximate inverse standard-normal CDF (Acklam's rational
/// approximation; |error| < 1.2e-9 over (0, 1)).
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
    // Coefficients for the central and tail regions.
    const A: [f64; 6] = [
        -3.969_683_028_665_38e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Gaussian-approximate provisioning for Bernoulli demand: the
/// bandwidth at `percentile` of Binomial(Q, q) is `μ + z·σ` (rounded
/// up, at least 1).
///
/// # Panics
///
/// Panics if the model is not Bernoulli or the percentile is not in
/// `(0, 1)`.
#[must_use]
pub fn gaussian_bandwidth(model: &ArrivalModel, percentile: f64) -> usize {
    let ArrivalModel::Bernoulli { num_qubits, q } = model else {
        panic!("gaussian provisioning requires a Bernoulli demand model");
    };
    let mu = *num_qubits as f64 * q;
    let sigma = (mu * (1.0 - q)).sqrt();
    let z = normal_quantile(percentile);
    (mu + z * sigma).ceil().max(1.0) as usize
}

/// Whether a provisioned bandwidth yields a *stable* queue (bounded
/// backlog): strictly more service than mean demand.
#[must_use]
pub fn is_stable(model: &ArrivalModel, bandwidth: usize) -> bool {
    (bandwidth as f64) > model.mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueSim;
    use btwc_noise::SimRng;

    #[test]
    fn quantile_matches_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.99) - 2.326_348).abs() < 1e-4);
        assert!((normal_quantile(0.001) + 3.090_232).abs() < 1e-4);
        // Symmetry.
        assert!((normal_quantile(0.25) + normal_quantile(0.75)).abs() < 1e-9);
    }

    #[test]
    fn gaussian_matches_empirical_percentile() {
        let model = ArrivalModel::bernoulli(1000, 0.05);
        let analytic = gaussian_bandwidth(&model, 0.99);
        let mut rng = SimRng::from_seed(3);
        let empirical = model.bandwidth_at_percentile(&mut rng, 0.99, 50_000);
        assert!(analytic.abs_diff(empirical) <= 2, "analytic {analytic} vs empirical {empirical}");
    }

    #[test]
    fn stability_predicts_simulation_behavior() {
        let model = ArrivalModel::bernoulli(1000, 0.05);
        // At the mean: unstable (Fig. 9 top).
        let at_mean = model.mean().round() as usize;
        assert!(!is_stable(&model, at_mean));
        let mut rng = SimRng::from_seed(4);
        let mut sim = QueueSim::new(at_mean);
        let diverging = sim.run(&model, &mut rng, 3_000);
        assert!(diverging.stall_fraction() > 0.3);
        // Slightly above a high percentile: stable and nearly stall-free.
        let above = gaussian_bandwidth(&model, 0.999);
        assert!(is_stable(&model, above));
        let mut rng = SimRng::from_seed(5);
        let mut sim = QueueSim::new(above);
        let stable = sim.run(&model, &mut rng, 10_000);
        assert!(stable.execution_time_increase() < 0.02);
    }

    #[test]
    #[should_panic(expected = "0 < p < 1")]
    fn quantile_rejects_endpoints() {
        let _ = normal_quantile(1.0);
    }

    #[test]
    #[should_panic(expected = "Bernoulli")]
    fn gaussian_rejects_traces() {
        let model = ArrivalModel::trace(vec![1, 2]);
        let _ = gaussian_bandwidth(&model, 0.99);
    }
}
