//! The off-chip decode queue with overflow stalling (Sec. 5.2).

use btwc_noise::SimRng;

use crate::arrivals::ArrivalModel;

/// What happened in one decode cycle (one bar of Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleRecord {
    /// Off-chip decodes newly generated this cycle.
    pub new_decodes: usize,
    /// Decodes carried over from previous cycles (the orange bars).
    pub carryover: usize,
    /// Decodes actually serviced this cycle (≤ bandwidth).
    pub processed: usize,
    /// Whether this cycle was a stall (no gates executed on the qubits).
    pub stalled: bool,
}

/// Aggregate result of a queue run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    records: Vec<CycleRecord>,
    useful_cycles: usize,
    bandwidth: usize,
    diverged: bool,
}

impl RunOutcome {
    /// Per-cycle records, in order.
    #[must_use]
    pub fn records(&self) -> &[CycleRecord] {
        &self.records
    }

    /// Provisioned off-chip bandwidth (decodes per cycle).
    #[must_use]
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    /// Total cycles elapsed (useful + stall).
    #[must_use]
    pub fn total_cycles(&self) -> usize {
        self.records.len()
    }

    /// Cycles in which the program actually advanced.
    #[must_use]
    pub fn useful_cycles(&self) -> usize {
        self.useful_cycles
    }

    /// Number of stall cycles inserted.
    #[must_use]
    pub fn stall_cycles(&self) -> usize {
        self.records.iter().filter(|r| r.stalled).count()
    }

    /// Fraction of all cycles that were stalls.
    #[must_use]
    pub fn stall_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.stall_cycles() as f64 / self.total_cycles() as f64
    }

    /// Relative execution-time increase caused by stalling — the y-axis
    /// of Fig. 16. 0.10 means the program runs 10% longer.
    #[must_use]
    pub fn execution_time_increase(&self) -> f64 {
        if self.useful_cycles == 0 {
            return f64::INFINITY;
        }
        self.total_cycles() as f64 / self.useful_cycles as f64 - 1.0
    }

    /// Largest backlog observed (decodes that had to wait).
    #[must_use]
    pub fn peak_backlog(&self) -> usize {
        self.records.iter().map(|r| r.carryover).max().unwrap_or(0)
    }

    /// Whether [`QueueSim::run`] aborted at its 50× safety cap before
    /// reaching the requested useful cycles — the compounding-backlog
    /// divergence of Fig. 9 (top), surfaced explicitly instead of only
    /// as an enormous [`RunOutcome::execution_time_increase`].
    #[must_use]
    pub fn diverged(&self) -> bool {
        self.diverged
    }
}

/// Cycle-by-cycle queue simulator.
///
/// Semantics per Sec. 5: every cycle (useful *or* stalled) generates
/// fresh off-chip decodes — qubits decohere during stalls too. The link
/// services up to `bandwidth` decodes per cycle. If anything is left
/// pending after servicing, the next cycle is a stall: the program makes
/// no progress until the backlog drains.
#[derive(Debug, Clone)]
pub struct QueueSim {
    bandwidth: usize,
    backlog: usize,
}

impl QueueSim {
    /// A queue behind a link that services `bandwidth` decodes/cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth == 0`.
    #[must_use]
    pub fn new(bandwidth: usize) -> Self {
        assert!(bandwidth > 0, "bandwidth must be positive");
        Self { bandwidth, backlog: 0 }
    }

    /// The link's service rate in decodes per cycle.
    #[must_use]
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    /// Current backlog (pending decodes).
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.backlog
    }

    /// Advances one cycle with `new_decodes` fresh arrivals.
    pub fn step(&mut self, new_decodes: usize) -> CycleRecord {
        let stalled = self.backlog > 0;
        let carryover = self.backlog;
        let total = carryover + new_decodes;
        let processed = total.min(self.bandwidth);
        self.backlog = total - processed;
        CycleRecord { new_decodes, carryover, processed, stalled }
    }

    /// Runs until `useful_cycles` program cycles have completed (stall
    /// cycles do not count as progress), sampling demand from `model`.
    ///
    /// To avoid unbounded divergence when the link is hopelessly
    /// under-provisioned, the run aborts once total cycles exceed
    /// `50 × useful_cycles`; the outcome then reports
    /// [`RunOutcome::diverged`] alongside a correspondingly enormous
    /// execution-time increase.
    pub fn run(
        &mut self,
        model: &ArrivalModel,
        rng: &mut SimRng,
        useful_cycles: usize,
    ) -> RunOutcome {
        let mut records = Vec::new();
        let mut useful = 0usize;
        let cap = useful_cycles.saturating_mul(50).max(1);
        while useful < useful_cycles && records.len() < cap {
            let arrivals = model.sample(rng, records.len());
            let rec = self.step(arrivals);
            if !rec.stalled {
                useful += 1;
            }
            records.push(rec);
        }
        let diverged = useful < useful_cycles;
        RunOutcome { records, useful_cycles: useful, bandwidth: self.bandwidth, diverged }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_arrivals_never_stalls() {
        let mut sim = QueueSim::new(5);
        let model = ArrivalModel::trace(vec![0]);
        let mut rng = SimRng::from_seed(0);
        let out = sim.run(&model, &mut rng, 100);
        assert_eq!(out.stall_cycles(), 0);
        assert_eq!(out.total_cycles(), 100);
        assert!(out.execution_time_increase().abs() < 1e-12);
    }

    #[test]
    fn single_burst_causes_bounded_stalls() {
        let mut sim = QueueSim::new(10);
        // One burst of 35 then quiet: backlog 25 -> 15 -> 5 -> 0.
        let mut trace = vec![0usize; 100];
        trace[0] = 35;
        let model = ArrivalModel::trace(trace);
        let mut rng = SimRng::from_seed(0);
        let out = sim.run(&model, &mut rng, 50);
        assert_eq!(out.stall_cycles(), 3);
        assert_eq!(out.peak_backlog(), 25);
    }

    #[test]
    fn stall_cycles_still_receive_arrivals() {
        let mut sim = QueueSim::new(10);
        // Constant demand of 8 fits; one burst of 30 forces stalls during
        // which the demand of 8 keeps arriving.
        let mut trace = vec![8usize; 50];
        trace[0] = 30;
        let model = ArrivalModel::trace(trace);
        let mut rng = SimRng::from_seed(0);
        let out = sim.run(&model, &mut rng, 40);
        // Backlog: 20 -> 18 -> 16 ... drains at 2/cycle.
        assert_eq!(out.stall_cycles(), 10);
        let first_stall = out.records()[1];
        assert!(first_stall.stalled);
        assert_eq!(first_stall.new_decodes, 8);
        assert_eq!(first_stall.carryover, 20);
    }

    #[test]
    fn mean_provisioning_diverges() {
        // The paper's Fig. 9 top: provisioning at the mean leads to a
        // compounding backlog and near-permanent stalling.
        let model = ArrivalModel::bernoulli(1000, 0.05);
        let mut rng = SimRng::from_seed(7);
        let mean_bw = model.mean().round() as usize;
        let mut sim = QueueSim::new(mean_bw);
        let out = sim.run(&model, &mut rng, 2000);
        assert!(
            out.stall_fraction() > 0.3,
            "mean provisioning should stall heavily, got {}",
            out.stall_fraction()
        );
    }

    #[test]
    fn p99_provisioning_is_practical() {
        // Fig. 9 bottom: the 99th percentile keeps stalls rare.
        let model = ArrivalModel::bernoulli(1000, 0.05);
        let mut rng = SimRng::from_seed(8);
        let bw = model.bandwidth_at_percentile(&mut rng, 0.99, 20_000);
        let mut sim = QueueSim::new(bw);
        let out = sim.run(&model, &mut rng, 20_000);
        assert!(
            out.execution_time_increase() < 0.05,
            "p99 provisioning increase {} too high",
            out.execution_time_increase()
        );
        assert!(out.useful_cycles() == 20_000);
    }

    #[test]
    fn higher_bandwidth_never_hurts() {
        let model = ArrivalModel::bernoulli(500, 0.08);
        let mut increases = Vec::new();
        for bw in [40usize, 48, 56, 64] {
            let mut rng = SimRng::from_seed(99);
            let mut sim = QueueSim::new(bw);
            let out = sim.run(&model, &mut rng, 5000);
            increases.push(out.execution_time_increase());
        }
        for w in increases.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "exec increase must fall with bandwidth");
        }
    }

    #[test]
    fn divergence_is_surfaced_explicitly() {
        // Hopeless under-provisioning: constant demand of 5 against a
        // bandwidth-1 link. The backlog compounds, the 50× cap fires,
        // and the outcome must say so — not only via a huge increase.
        let model = ArrivalModel::trace(vec![5]);
        let mut rng = SimRng::from_seed(0);
        let mut sim = QueueSim::new(1);
        let out = sim.run(&model, &mut rng, 100);
        assert!(out.diverged(), "capped run must report divergence");
        assert!(out.useful_cycles() < 100);
        assert_eq!(out.total_cycles(), 100 * 50, "the cap bounds the run");
        // A healthy run does not.
        let model = ArrivalModel::trace(vec![0]);
        let mut sim = QueueSim::new(1);
        let out = sim.run(&model, &mut rng, 100);
        assert!(!out.diverged());
        assert_eq!(out.useful_cycles(), 100);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = QueueSim::new(0);
    }
}
