//! Per-cycle off-chip decode demand models.

use btwc_noise::{SimRng, SparseFlips};

/// Generates the number of logical qubits requesting an off-chip decode
/// each cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalModel {
    /// Each of `num_qubits` logical qubits independently needs an
    /// off-chip decode with probability `q` per cycle (`q = 1 −`
    /// Clique coverage) — the model behind Figs. 9 and 16.
    Bernoulli {
        /// Number of logical qubits sharing the link.
        num_qubits: usize,
        /// Per-qubit per-cycle off-chip probability.
        q: f64,
    },
    /// Replay of an empirical per-cycle trace (e.g. recorded from the
    /// lifetime simulator), cycled if the run is longer than the trace.
    Trace(Vec<usize>),
}

impl ArrivalModel {
    /// Bernoulli demand over `num_qubits` qubits at rate `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]` or `num_qubits == 0`.
    #[must_use]
    pub fn bernoulli(num_qubits: usize, q: f64) -> Self {
        assert!(num_qubits > 0, "need at least one logical qubit");
        assert!((0.0..=1.0).contains(&q), "probability {q} out of [0,1]");
        ArrivalModel::Bernoulli { num_qubits, q }
    }

    /// Replay of an explicit per-cycle demand trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn trace(counts: Vec<usize>) -> Self {
        assert!(!counts.is_empty(), "trace must contain at least one cycle");
        ArrivalModel::Trace(counts)
    }

    /// Number of logical qubits sharing the link (trace models report
    /// their maximum demand).
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        match self {
            ArrivalModel::Bernoulli { num_qubits, .. } => *num_qubits,
            ArrivalModel::Trace(t) => t.iter().copied().max().unwrap_or(1).max(1),
        }
    }

    /// Mean per-cycle demand.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match self {
            ArrivalModel::Bernoulli { num_qubits, q } => *num_qubits as f64 * q,
            ArrivalModel::Trace(t) => t.iter().sum::<usize>() as f64 / t.len() as f64,
        }
    }

    /// Samples the demand for cycle `t`.
    #[must_use]
    pub fn sample(&self, rng: &mut SimRng, t: usize) -> usize {
        match self {
            ArrivalModel::Bernoulli { num_qubits, q } => {
                SparseFlips::new(rng, *num_qubits, *q).count()
            }
            ArrivalModel::Trace(trace) => trace[t % trace.len()],
        }
    }

    /// Empirically estimates the demand value at `percentile` (in
    /// `[0, 1]`) from `samples` simulated cycles — the provisioning rule
    /// of Sec. 5.1. Returns at least 1.
    ///
    /// # Panics
    ///
    /// Panics if `percentile` is not in `[0, 1]` or `samples == 0`.
    #[must_use]
    pub fn bandwidth_at_percentile(
        &self,
        rng: &mut SimRng,
        percentile: f64,
        samples: usize,
    ) -> usize {
        assert!((0.0..=1.0).contains(&percentile), "percentile out of range");
        assert!(samples > 0, "need at least one sample");
        let mut counts: Vec<usize> = (0..samples).map(|t| self.sample(rng, t)).collect();
        counts.sort_unstable();
        let idx = ((samples - 1) as f64 * percentile).round() as usize;
        counts[idx].max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_mean_matches() {
        let m = ArrivalModel::bernoulli(1000, 0.05);
        assert!((m.mean() - 50.0).abs() < 1e-9);
        let mut rng = SimRng::from_seed(4);
        let total: usize = (0..5000).map(|t| m.sample(&mut rng, t)).sum();
        let mean = total as f64 / 5000.0;
        assert!((mean - 50.0).abs() < 2.0, "empirical mean {mean}");
    }

    #[test]
    fn trace_replays_and_wraps() {
        let m = ArrivalModel::trace(vec![1, 2, 3]);
        let mut rng = SimRng::from_seed(0);
        assert_eq!(m.sample(&mut rng, 0), 1);
        assert_eq!(m.sample(&mut rng, 4), 2);
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.num_qubits(), 3);
    }

    #[test]
    fn percentile_ordering() {
        let m = ArrivalModel::bernoulli(1000, 0.05);
        let mut rng = SimRng::from_seed(9);
        let p50 = m.bandwidth_at_percentile(&mut rng, 0.50, 20_000);
        let p99 = m.bandwidth_at_percentile(&mut rng, 0.99, 20_000);
        let p999 = m.bandwidth_at_percentile(&mut rng, 0.999, 20_000);
        assert!(p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
        // Binomial(1000, 0.05): median ~50, p99 ~ mean + 2.33 sigma ~ 66.
        assert!((45..=55).contains(&p50), "p50 {p50}");
        assert!((60..=75).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn zero_rate_still_provisions_one() {
        let m = ArrivalModel::bernoulli(10, 0.0);
        let mut rng = SimRng::from_seed(2);
        assert_eq!(m.bandwidth_at_percentile(&mut rng, 0.99, 100), 1);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn invalid_probability_rejected() {
        let _ = ArrivalModel::bernoulli(10, 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn empty_trace_rejected() {
        let _ = ArrivalModel::trace(vec![]);
    }
}
