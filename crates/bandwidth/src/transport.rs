//! Wire framing for off-chip decode requests.
//!
//! When a Clique plane raises COMPLEX, the qubit's syndrome window must
//! actually cross the refrigerator boundary. This module defines the
//! byte-level frame a BTWC machine ships per request — the quantity the
//! provisioned link's Gbps budget ([`crate::IoModel`]) is spent on —
//! with encode/decode round-trip guarantees.
//!
//! Frame layout (big endian):
//!
//! ```text
//! [qubit: u32][cycle: u64][rounds: u16][bits_per_round: u16][payload…]
//! ```
//!
//! The payload packs each round's syndrome bits LSB-first, padded to a
//! whole byte per round (hardware serializers work in byte lanes).

use btwc_syndrome::RoundHistory;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// One off-chip decode request: a window of raw syndrome rounds from
/// one logical qubit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeRequest {
    /// Logical qubit id.
    pub qubit: u32,
    /// Machine cycle at which the request was raised.
    pub cycle: u64,
    /// Raw syndrome rounds, oldest first; all the same width.
    pub rounds: Vec<Vec<bool>>,
}

/// Errors produced when parsing a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseFrameError {
    /// The buffer ended before the fixed header was complete.
    TruncatedHeader,
    /// The header is structurally impossible: no well-formed encoder
    /// emits it (the invariants [`DecodeRequest::new`] enforces —
    /// at least one round, at least one bit per round).
    CorruptHeader {
        /// What the header declares that no valid frame can.
        reason: &'static str,
    },
    /// The buffer ended before the declared payload was complete.
    TruncatedPayload {
        /// Bytes expected from the header.
        expected: usize,
        /// Bytes actually available.
        actual: usize,
    },
}

impl std::fmt::Display for ParseFrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseFrameError::TruncatedHeader => write!(f, "frame header truncated"),
            ParseFrameError::CorruptHeader { reason } => {
                write!(f, "frame header corrupt: {reason}")
            }
            ParseFrameError::TruncatedPayload { expected, actual } => {
                write!(f, "frame payload truncated: expected {expected} bytes, got {actual}")
            }
        }
    }
}

impl std::error::Error for ParseFrameError {}

impl DecodeRequest {
    /// Builds a request from a window of rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is empty, rounds are empty or have differing
    /// widths, or a round is wider than `u16::MAX` bits.
    #[must_use]
    pub fn new(qubit: u32, cycle: u64, rounds: Vec<Vec<bool>>) -> Self {
        assert!(!rounds.is_empty(), "a decode request needs at least one round");
        let width = rounds[0].len();
        assert!(width >= 1, "a decode request needs at least one bit per round");
        assert!(width <= usize::from(u16::MAX), "round too wide for the frame format");
        assert!(rounds.iter().all(|r| r.len() == width), "all rounds must have equal width");
        Self { qubit, cycle, rounds }
    }

    /// Frames a decode window straight off a packed [`RoundHistory`] —
    /// the cryogenic-side entry point the machine tier uses when a
    /// Clique plane raises COMPLEX.
    ///
    /// # Panics
    ///
    /// Panics if `window` is empty or wider than the frame format
    /// allows (see [`DecodeRequest::new`]).
    #[must_use]
    pub fn from_history(qubit: u32, cycle: u64, window: &RoundHistory) -> Self {
        let rounds = (0..window.len()).map(|r| window.round(r).to_bools()).collect();
        Self::new(qubit, cycle, rounds)
    }

    /// Replays the received rounds into a caller-owned window (reset
    /// first) — the room-temperature side of the link. The rebuilt
    /// window is bit-identical to the one that was framed, so the
    /// off-chip decoder's matching is unchanged by the wire trip.
    ///
    /// # Panics
    ///
    /// Panics if `window`'s width or capacity cannot hold the rounds.
    pub fn replay_into(&self, window: &mut RoundHistory) {
        assert!(self.rounds.len() <= window.capacity(), "window capacity too small for frame");
        window.reset();
        for round in &self.rounds {
            window.push(round);
        }
    }

    /// Syndrome bits per round.
    #[must_use]
    pub fn bits_per_round(&self) -> usize {
        self.rounds[0].len()
    }

    /// Size of the encoded frame in bytes.
    #[must_use]
    pub fn frame_len(&self) -> usize {
        16 + self.rounds.len() * self.bits_per_round().div_ceil(8)
    }

    /// Serializes the request to its wire frame.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.frame_len());
        buf.put_u32(self.qubit);
        buf.put_u64(self.cycle);
        buf.put_u16(self.rounds.len() as u16);
        buf.put_u16(self.bits_per_round() as u16);
        let stride = self.bits_per_round().div_ceil(8);
        for round in &self.rounds {
            let mut bytes = vec![0u8; stride];
            for (i, &bit) in round.iter().enumerate() {
                if bit {
                    bytes[i / 8] |= 1 << (i % 8);
                }
            }
            buf.put_slice(&bytes);
        }
        buf.freeze()
    }

    /// Parses one frame from `data`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseFrameError`] if the buffer is shorter than the
    /// header or the declared payload, or if the header declares a
    /// frame no valid encoder can produce (zero rounds / zero width).
    pub fn decode(mut data: &[u8]) -> Result<Self, ParseFrameError> {
        if data.len() < 16 {
            return Err(ParseFrameError::TruncatedHeader);
        }
        let qubit = data.get_u32();
        let cycle = data.get_u64();
        let n_rounds = usize::from(data.get_u16());
        let width = usize::from(data.get_u16());
        if n_rounds == 0 {
            return Err(ParseFrameError::CorruptHeader { reason: "zero rounds declared" });
        }
        if width == 0 {
            return Err(ParseFrameError::CorruptHeader { reason: "zero bits per round declared" });
        }
        let stride = width.div_ceil(8);
        let expected = n_rounds * stride;
        if data.len() < expected {
            return Err(ParseFrameError::TruncatedPayload { expected, actual: data.len() });
        }
        let mut rounds = Vec::with_capacity(n_rounds);
        for _ in 0..n_rounds {
            let mut round = vec![false; width];
            let bytes = &data[..stride];
            for (i, r) in round.iter_mut().enumerate() {
                *r = (bytes[i / 8] >> (i % 8)) & 1 == 1;
            }
            data.advance(stride);
            rounds.push(round);
        }
        Ok(Self { qubit, cycle, rounds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecodeRequest {
        DecodeRequest::new(
            7,
            123_456,
            vec![
                vec![true, false, true, false, false, true, false, true, true],
                vec![false; 9],
                vec![true; 9],
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let req = sample();
        let frame = req.encode();
        assert_eq!(frame.len(), req.frame_len());
        let back = DecodeRequest::decode(&frame).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn frame_len_matches_io_model_accounting() {
        // 9 bits/round -> 2 bytes/round; 3 rounds + 16-byte header.
        assert_eq!(sample().frame_len(), 16 + 3 * 2);
    }

    #[test]
    fn truncated_header_is_rejected() {
        let frame = sample().encode();
        assert_eq!(DecodeRequest::decode(&frame[..10]), Err(ParseFrameError::TruncatedHeader));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let frame = sample().encode();
        let cut = frame.len() - 3;
        match DecodeRequest::decode(&frame[..cut]) {
            Err(ParseFrameError::TruncatedPayload { expected, actual }) => {
                assert_eq!(expected, 6);
                assert_eq!(actual, 3);
            }
            other => panic!("expected truncated payload, got {other:?}"),
        }
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let e = ParseFrameError::TruncatedPayload { expected: 6, actual: 3 };
        let msg = e.to_string();
        assert!(msg.starts_with("frame payload truncated"));
    }

    #[test]
    #[should_panic(expected = "equal width")]
    fn ragged_rounds_rejected() {
        let _ = DecodeRequest::new(0, 0, vec![vec![true], vec![true, false]]);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn empty_request_rejected() {
        let _ = DecodeRequest::new(0, 0, vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one bit per round")]
    fn zero_width_request_rejected() {
        // Invariant matching the decoder's CorruptHeader rejection: a
        // zero-width frame must be unencodable, not a round-trip hole.
        let _ = DecodeRequest::new(0, 0, vec![vec![]]);
    }
}
