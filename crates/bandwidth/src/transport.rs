//! Wire framing for off-chip decode requests.
//!
//! When a Clique plane raises COMPLEX, the qubit's syndrome window must
//! actually cross the refrigerator boundary. This module defines the
//! byte-level frame a BTWC machine ships per request — the quantity the
//! provisioned link's Gbps budget ([`crate::IoModel`]) is spent on —
//! with encode/decode round-trip guarantees.
//!
//! Two frame versions exist (both big endian):
//!
//! **v1** — the original header-only framing, kept for compatibility:
//!
//! ```text
//! [qubit: u32][cycle: u64][rounds: u16][bits_per_round: u16][payload…]
//! ```
//!
//! **v2** — the fault-tolerant framing the machine tier ships: a magic
//! and version for self-description, a per-qubit sequence number for
//! duplicate/reorder detection, and a trailing CRC-32 over everything
//! before it, so *any* single-bit corruption of header or payload is
//! caught ([`ParseFrameError::ChecksumMismatch`] or a structural
//! error), never silently decoded into a wrong request:
//!
//! ```text
//! [magic: u16 = 0xB7C2][version: u8 = 2][reserved: u8]
//! [qubit: u32][cycle: u64][seq: u32][rounds: u16][bits_per_round: u16]
//! [payload…][crc32: u32]
//! ```
//!
//! The payload packs each round's syndrome bits LSB-first, padded to a
//! whole byte per round (hardware serializers work in byte lanes).
//! [`DecodeRequest::decode`] discriminates the two versions by the v2
//! magic; v1 qubit ids `>= 0xB7C2_0000` are therefore reserved (their
//! first two header bytes would collide with the magic) — use
//! [`DecodeRequest::decode_v1`] to force the legacy parse.

use btwc_syndrome::RoundHistory;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// First two bytes of every v2 frame.
pub const FRAME_MAGIC: u16 = 0xB7C2;
/// Version byte of the CRC-protected frame format.
pub const FRAME_VERSION_V2: u8 = 2;
/// Fixed v2 header size (magic through bits-per-round), in bytes.
pub const FRAME_V2_HEADER: usize = 24;
/// CRC-32 trailer size, in bytes.
pub const FRAME_V2_TRAILER: usize = 4;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// built at compile time so the workspace stays dependency-free.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data` — the checksum the v2 frame trailer carries.
/// Detects every single-bit error and all burst errors up to 32 bits.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One off-chip decode request: a window of raw syndrome rounds from
/// one logical qubit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeRequest {
    /// Logical qubit id.
    pub qubit: u32,
    /// Machine cycle at which the request was raised.
    pub cycle: u64,
    /// Per-qubit sequence number (v2 frames only; v1 parses yield 0).
    /// Retransmissions of the same request reuse the same number, so
    /// the receiver can tell a duplicate from the next request.
    pub seq: u32,
    /// Raw syndrome rounds, oldest first; all the same width.
    pub rounds: Vec<Vec<bool>>,
}

/// Errors produced when parsing a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseFrameError {
    /// The buffer ended before the fixed header was complete.
    TruncatedHeader,
    /// The header is structurally impossible: no well-formed encoder
    /// emits it (the invariants [`DecodeRequest::new`] enforces —
    /// at least one round, at least one bit per round — plus, for v2,
    /// magic/version/length consistency).
    CorruptHeader {
        /// What the header declares that no valid frame can.
        reason: &'static str,
    },
    /// The buffer ended before the declared payload was complete.
    TruncatedPayload {
        /// Bytes expected from the header.
        expected: usize,
        /// Bytes actually available.
        actual: usize,
    },
    /// The v2 CRC-32 trailer does not match the received bytes: the
    /// frame was corrupted in flight.
    ChecksumMismatch {
        /// Checksum recomputed over the received bytes.
        computed: u32,
        /// Checksum the frame trailer carries.
        received: u32,
    },
    /// A sequence number from the future: frames between `expected`
    /// and `got` were lost (see [`SequenceTracker`]).
    SequenceGap {
        /// The next sequence number the receiver was expecting.
        expected: u32,
        /// The sequence number that actually arrived.
        got: u32,
    },
}

impl std::fmt::Display for ParseFrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseFrameError::TruncatedHeader => write!(f, "frame header truncated"),
            ParseFrameError::CorruptHeader { reason } => {
                write!(f, "frame header corrupt: {reason}")
            }
            ParseFrameError::TruncatedPayload { expected, actual } => {
                write!(f, "frame payload truncated: expected {expected} bytes, got {actual}")
            }
            ParseFrameError::ChecksumMismatch { computed, received } => {
                write!(
                    f,
                    "frame checksum mismatch: computed {computed:#010x}, received {received:#010x}"
                )
            }
            ParseFrameError::SequenceGap { expected, got } => {
                write!(f, "sequence gap: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ParseFrameError {}

impl DecodeRequest {
    /// Builds a request from a window of rounds (sequence number 0; see
    /// [`DecodeRequest::with_seq`]).
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is empty, rounds are empty or have differing
    /// widths, or a round is wider than `u16::MAX` bits.
    #[must_use]
    pub fn new(qubit: u32, cycle: u64, rounds: Vec<Vec<bool>>) -> Self {
        assert!(!rounds.is_empty(), "a decode request needs at least one round");
        let width = rounds[0].len();
        assert!(width >= 1, "a decode request needs at least one bit per round");
        assert!(width <= usize::from(u16::MAX), "round too wide for the frame format");
        assert!(rounds.iter().all(|r| r.len() == width), "all rounds must have equal width");
        Self { qubit, cycle, seq: 0, rounds }
    }

    /// Sets the per-qubit sequence number carried by v2 frames.
    #[must_use]
    pub fn with_seq(mut self, seq: u32) -> Self {
        self.seq = seq;
        self
    }

    /// Frames a decode window straight off a packed [`RoundHistory`] —
    /// the cryogenic-side entry point the machine tier uses when a
    /// Clique plane raises COMPLEX.
    ///
    /// # Panics
    ///
    /// Panics if `window` is empty or wider than the frame format
    /// allows (see [`DecodeRequest::new`]).
    #[must_use]
    pub fn from_history(qubit: u32, cycle: u64, window: &RoundHistory) -> Self {
        let rounds = (0..window.len()).map(|r| window.round(r).to_bools()).collect();
        Self::new(qubit, cycle, rounds)
    }

    /// Replays the received rounds into a caller-owned window (reset
    /// first) — the room-temperature side of the link. The rebuilt
    /// window is bit-identical to the one that was framed, so the
    /// off-chip decoder's matching is unchanged by the wire trip.
    ///
    /// # Panics
    ///
    /// Panics if `window`'s width or capacity cannot hold the rounds.
    pub fn replay_into(&self, window: &mut RoundHistory) {
        assert!(self.rounds.len() <= window.capacity(), "window capacity too small for frame");
        window.reset();
        for round in &self.rounds {
            window.push(round);
        }
    }

    /// Syndrome bits per round.
    #[must_use]
    pub fn bits_per_round(&self) -> usize {
        self.rounds[0].len()
    }

    /// Size of the encoded **v1** frame in bytes.
    #[must_use]
    pub fn frame_len(&self) -> usize {
        16 + self.rounds.len() * self.bits_per_round().div_ceil(8)
    }

    /// Size of the encoded **v2** frame in bytes (24-byte header +
    /// payload + 4-byte CRC trailer).
    #[must_use]
    pub fn frame_len_v2(&self) -> usize {
        FRAME_V2_HEADER + self.rounds.len() * self.bits_per_round().div_ceil(8) + FRAME_V2_TRAILER
    }

    /// Packs the syndrome rounds LSB-first, one byte-padded lane per
    /// round, into `buf`.
    fn put_payload(&self, buf: &mut BytesMut) {
        let stride = self.bits_per_round().div_ceil(8);
        for round in &self.rounds {
            let mut bytes = vec![0u8; stride];
            for (i, &bit) in round.iter().enumerate() {
                if bit {
                    bytes[i / 8] |= 1 << (i % 8);
                }
            }
            buf.put_slice(&bytes);
        }
    }

    /// Serializes the request to its legacy **v1** wire frame (no
    /// integrity protection, no sequence number).
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.frame_len());
        buf.put_u32(self.qubit);
        buf.put_u64(self.cycle);
        buf.put_u16(self.rounds.len() as u16);
        buf.put_u16(self.bits_per_round() as u16);
        self.put_payload(&mut buf);
        buf.freeze()
    }

    /// Serializes the request to its **v2** wire frame: magic, version,
    /// sequence number, payload, and a trailing CRC-32 over everything
    /// before it.
    #[must_use]
    pub fn encode_v2(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.frame_len_v2());
        buf.put_u16(FRAME_MAGIC);
        buf.put_u8(FRAME_VERSION_V2);
        buf.put_u8(0); // reserved
        buf.put_u32(self.qubit);
        buf.put_u64(self.cycle);
        buf.put_u32(self.seq);
        buf.put_u16(self.rounds.len() as u16);
        buf.put_u16(self.bits_per_round() as u16);
        self.put_payload(&mut buf);
        let crc = crc32(&buf);
        buf.put_u32(crc);
        buf.freeze()
    }

    /// Parses one frame from `data`, auto-detecting the version: a
    /// buffer opening with the v2 magic takes the strict v2 path,
    /// anything else the legacy v1 path. v1 qubit ids `>= 0xB7C2_0000`
    /// are reserved (see the module docs); use
    /// [`DecodeRequest::decode_v1`] when the version is known.
    ///
    /// **Caution**: a corrupted v2 magic byte routes the frame to the
    /// CRC-less v1 fallback, which can parse the damaged bytes as a
    /// garbage request instead of erroring. The fallback exists for
    /// genuinely mixed v1/v2 sources only — a receiver of v2-only
    /// traffic must use [`DecodeRequest::decode_v2`] to keep the
    /// every-single-bit-flip-is-detected guarantee.
    ///
    /// # Errors
    ///
    /// Returns [`ParseFrameError`] as [`DecodeRequest::decode_v1`] /
    /// [`DecodeRequest::decode_v2`] do.
    pub fn decode(data: &[u8]) -> Result<Self, ParseFrameError> {
        if data.len() >= 2 && u16::from_be_bytes([data[0], data[1]]) == FRAME_MAGIC {
            Self::decode_v2(data)
        } else {
            Self::decode_v1(data)
        }
    }

    /// Parses one legacy **v1** frame from `data`. Trailing bytes
    /// beyond the declared payload are tolerated (frames may arrive in
    /// a larger buffer).
    ///
    /// # Errors
    ///
    /// Returns [`ParseFrameError`] if the buffer is shorter than the
    /// header or the declared payload, or if the header declares a
    /// frame no valid encoder can produce (zero rounds / zero width).
    pub fn decode_v1(mut data: &[u8]) -> Result<Self, ParseFrameError> {
        if data.len() < 16 {
            return Err(ParseFrameError::TruncatedHeader);
        }
        let qubit = data.get_u32();
        let cycle = data.get_u64();
        let n_rounds = usize::from(data.get_u16());
        let width = usize::from(data.get_u16());
        if n_rounds == 0 {
            return Err(ParseFrameError::CorruptHeader { reason: "zero rounds declared" });
        }
        if width == 0 {
            return Err(ParseFrameError::CorruptHeader { reason: "zero bits per round declared" });
        }
        let stride = width.div_ceil(8);
        let expected = n_rounds * stride;
        if data.len() < expected {
            return Err(ParseFrameError::TruncatedPayload { expected, actual: data.len() });
        }
        let rounds = unpack_rounds(data, n_rounds, width);
        Ok(Self { qubit, cycle, seq: 0, rounds })
    }

    /// Parses one **v2** frame from `data`, strictly: the magic,
    /// version, declared length, and CRC-32 must all check out, and the
    /// buffer must contain *exactly* one frame (no trailing bytes).
    /// Together with the CRC this guarantees any single-bit flip of
    /// header or payload is reported as an error, never silently
    /// decoded into a different request.
    ///
    /// # Errors
    ///
    /// [`ParseFrameError::TruncatedHeader`] /
    /// [`ParseFrameError::TruncatedPayload`] for short buffers,
    /// [`ParseFrameError::CorruptHeader`] for magic/version/shape
    /// violations, [`ParseFrameError::ChecksumMismatch`] when the
    /// trailer disagrees with the received bytes.
    pub fn decode_v2(data: &[u8]) -> Result<Self, ParseFrameError> {
        if data.len() < FRAME_V2_HEADER {
            return Err(ParseFrameError::TruncatedHeader);
        }
        let mut hdr = data;
        let magic = hdr.get_u16();
        if magic != FRAME_MAGIC {
            return Err(ParseFrameError::CorruptHeader { reason: "bad v2 magic" });
        }
        let version = hdr.get_u8();
        if version != FRAME_VERSION_V2 {
            return Err(ParseFrameError::CorruptHeader { reason: "unsupported frame version" });
        }
        let _reserved = hdr.get_u8();
        let qubit = hdr.get_u32();
        let cycle = hdr.get_u64();
        let seq = hdr.get_u32();
        let n_rounds = usize::from(hdr.get_u16());
        let width = usize::from(hdr.get_u16());
        if n_rounds == 0 {
            return Err(ParseFrameError::CorruptHeader { reason: "zero rounds declared" });
        }
        if width == 0 {
            return Err(ParseFrameError::CorruptHeader { reason: "zero bits per round declared" });
        }
        let stride = width.div_ceil(8);
        let expected = n_rounds * stride + FRAME_V2_TRAILER;
        let avail = data.len() - FRAME_V2_HEADER;
        if avail < expected {
            return Err(ParseFrameError::TruncatedPayload { expected, actual: avail });
        }
        if avail > expected {
            return Err(ParseFrameError::CorruptHeader { reason: "frame longer than declared" });
        }
        let body = &data[..data.len() - FRAME_V2_TRAILER];
        let computed = crc32(body);
        // The length checks above guarantee a full trailer, but the
        // no-panic contract for hostile input is kept structurally:
        // a short slice surfaces as a parse error, never an unwrap.
        let received = match data[data.len() - FRAME_V2_TRAILER..].try_into() {
            Ok(trailer) => u32::from_be_bytes(trailer),
            Err(_) => return Err(ParseFrameError::TruncatedHeader),
        };
        if computed != received {
            return Err(ParseFrameError::ChecksumMismatch { computed, received });
        }
        let rounds = unpack_rounds(&body[FRAME_V2_HEADER..], n_rounds, width);
        Ok(Self { qubit, cycle, seq, rounds })
    }
}

/// Unpacks `n_rounds` byte-padded LSB-first rounds of `width` bits.
fn unpack_rounds(mut data: &[u8], n_rounds: usize, width: usize) -> Vec<Vec<bool>> {
    let stride = width.div_ceil(8);
    let mut rounds = Vec::with_capacity(n_rounds);
    for _ in 0..n_rounds {
        let mut round = vec![false; width];
        let bytes = &data[..stride];
        for (i, r) in round.iter_mut().enumerate() {
            *r = (bytes[i / 8] >> (i % 8)) & 1 == 1;
        }
        data.advance(stride);
        rounds.push(round);
    }
    rounds
}

/// What a received sequence number means relative to the stream so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqStatus {
    /// The next expected number: a fresh request (tracker advanced).
    Fresh,
    /// A number already accepted: a duplicated or late (reordered)
    /// delivery — safe to discard.
    Duplicate,
}

/// Receiver-side per-stream sequence bookkeeping: classifies each
/// arriving v2 sequence number as fresh, duplicate, or a gap (lost
/// frames). One tracker per logical qubit on the room-temperature side.
#[derive(Debug, Clone, Default)]
pub struct SequenceTracker {
    next: u32,
}

impl SequenceTracker {
    /// A tracker expecting sequence number 0 first.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The next sequence number this tracker will accept as fresh.
    #[must_use]
    pub fn expected(&self) -> u32 {
        self.next
    }

    /// Classifies `seq`: the expected number advances the tracker and
    /// is [`SeqStatus::Fresh`]; anything older is a
    /// [`SeqStatus::Duplicate`].
    ///
    /// # Errors
    ///
    /// [`ParseFrameError::SequenceGap`] if `seq` is from the future —
    /// the frames in between were lost. The tracker does *not* advance;
    /// the caller decides whether to [`SequenceTracker::resync`].
    pub fn accept(&mut self, seq: u32) -> Result<SeqStatus, ParseFrameError> {
        if seq == self.next {
            self.next = self.next.wrapping_add(1);
            Ok(SeqStatus::Fresh)
        } else if seq < self.next {
            Ok(SeqStatus::Duplicate)
        } else {
            Err(ParseFrameError::SequenceGap { expected: self.next, got: seq })
        }
    }

    /// Forces the tracker past lost frames: the next expected number
    /// becomes `next`.
    pub fn resync(&mut self, next: u32) {
        self.next = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecodeRequest {
        DecodeRequest::new(
            7,
            123_456,
            vec![
                vec![true, false, true, false, false, true, false, true, true],
                vec![false; 9],
                vec![true; 9],
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let req = sample();
        let frame = req.encode();
        assert_eq!(frame.len(), req.frame_len());
        let back = DecodeRequest::decode(&frame).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn v2_roundtrip_preserves_everything_including_seq() {
        let req = sample().with_seq(41);
        let frame = req.encode_v2();
        assert_eq!(frame.len(), req.frame_len_v2());
        let strict = DecodeRequest::decode_v2(&frame).unwrap();
        assert_eq!(strict, req);
        // The auto-detecting parse routes by magic.
        let auto = DecodeRequest::decode(&frame).unwrap();
        assert_eq!(auto, req);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value: CRC32("123456789").
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_len_matches_io_model_accounting() {
        // 9 bits/round -> 2 bytes/round; 3 rounds + 16-byte header.
        assert_eq!(sample().frame_len(), 16 + 3 * 2);
        // v2 adds 8 bytes of magic/version/seq and 4 of CRC.
        assert_eq!(sample().frame_len_v2(), 24 + 3 * 2 + 4);
    }

    #[test]
    fn truncated_header_is_rejected() {
        let frame = sample().encode();
        assert_eq!(DecodeRequest::decode(&frame[..10]), Err(ParseFrameError::TruncatedHeader));
        let v2 = sample().encode_v2();
        assert_eq!(DecodeRequest::decode_v2(&v2[..20]), Err(ParseFrameError::TruncatedHeader));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let frame = sample().encode();
        let cut = frame.len() - 3;
        match DecodeRequest::decode(&frame[..cut]) {
            Err(ParseFrameError::TruncatedPayload { expected, actual }) => {
                assert_eq!(expected, 6);
                assert_eq!(actual, 3);
            }
            other => panic!("expected truncated payload, got {other:?}"),
        }
    }

    #[test]
    fn v2_flipped_bit_fails_checksum() {
        let frame = sample().with_seq(3).encode_v2();
        // Flip one payload bit.
        let mut bad = frame.to_vec();
        bad[FRAME_V2_HEADER] ^= 0x10;
        assert!(matches!(
            DecodeRequest::decode_v2(&bad),
            Err(ParseFrameError::ChecksumMismatch { .. })
        ));
        // Flip one bit of the seq field.
        let mut bad = frame.to_vec();
        bad[16] ^= 0x01;
        assert!(matches!(
            DecodeRequest::decode_v2(&bad),
            Err(ParseFrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn v2_trailing_bytes_are_rejected() {
        let mut frame = sample().encode_v2().to_vec();
        frame.push(0xAA);
        assert_eq!(
            DecodeRequest::decode_v2(&frame),
            Err(ParseFrameError::CorruptHeader { reason: "frame longer than declared" })
        );
    }

    #[test]
    fn v2_bad_magic_and_version_are_rejected() {
        let frame = sample().encode_v2().to_vec();
        let mut bad = frame.clone();
        bad[0] = 0x00;
        assert_eq!(
            DecodeRequest::decode_v2(&bad),
            Err(ParseFrameError::CorruptHeader { reason: "bad v2 magic" })
        );
        let mut bad = frame;
        bad[2] = 9;
        assert_eq!(
            DecodeRequest::decode_v2(&bad),
            Err(ParseFrameError::CorruptHeader { reason: "unsupported frame version" })
        );
    }

    #[test]
    fn sequence_tracker_classifies_fresh_duplicate_gap() {
        let mut tr = SequenceTracker::new();
        assert_eq!(tr.accept(0), Ok(SeqStatus::Fresh));
        assert_eq!(tr.accept(0), Ok(SeqStatus::Duplicate));
        assert_eq!(tr.accept(1), Ok(SeqStatus::Fresh));
        assert_eq!(tr.accept(0), Ok(SeqStatus::Duplicate));
        assert_eq!(tr.accept(5), Err(ParseFrameError::SequenceGap { expected: 2, got: 5 }));
        assert_eq!(tr.expected(), 2, "a gap must not advance the tracker");
        tr.resync(5);
        assert_eq!(tr.accept(5), Ok(SeqStatus::Fresh));
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let e = ParseFrameError::TruncatedPayload { expected: 6, actual: 3 };
        assert!(e.to_string().starts_with("frame payload truncated"));
        let e = ParseFrameError::ChecksumMismatch { computed: 1, received: 2 };
        assert!(e.to_string().starts_with("frame checksum mismatch"));
        let e = ParseFrameError::SequenceGap { expected: 3, got: 9 };
        assert_eq!(e.to_string(), "sequence gap: expected 3, got 9");
    }

    #[test]
    #[should_panic(expected = "equal width")]
    fn ragged_rounds_rejected() {
        let _ = DecodeRequest::new(0, 0, vec![vec![true], vec![true, false]]);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn empty_request_rejected() {
        let _ = DecodeRequest::new(0, 0, vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one bit per round")]
    fn zero_width_request_rejected() {
        // Invariant matching the decoder's CorruptHeader rejection: a
        // zero-width frame must be unencodable, not a round-trip hole.
        let _ = DecodeRequest::new(0, 0, vec![vec![]]);
    }
}
