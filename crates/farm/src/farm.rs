//! The [`DecodeFarm`] service: admission control, slot batching, and
//! telemetry aggregation. This file is on the analyzer's PANIC-HOT list
//! — the dispatch path must stay free of `unwrap`/`expect`/`panic!`.

use btwc_core::{
    ComplexDecoder, DecoderBackend, EscalationJob, RejectReason, ServiceResponse, StabilizerType,
    SurfaceCode,
};
use btwc_pool::Pool;
use btwc_syndrome::{Correction, RoundHistory};
use btwc_telemetry::{Counter, Domain, Gauge, Histogram, MetricsRegistry, Snapshot};

/// Handle to a machine registered with a [`DecodeFarm`].
///
/// Index into the farm's tenant table — plain `Vec` order, so tenant
/// iteration (snapshots, exports) is deterministic by registration
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TenantId(pub usize);

/// One tenant's escalations for the current farm cycle.
#[derive(Debug, Clone, Copy)]
pub struct TenantSubmission<'a> {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Its surviving escalation jobs, in the machine's submission order.
    pub jobs: &'a [EscalationJob],
}

/// A per-tenant `btwc-telemetry-v1` snapshot emitted on the configured
/// cadence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotExport {
    /// The tenant's registered name.
    pub tenant: String,
    /// Farm cycle the snapshot was taken at.
    pub cycle: u64,
    /// Cycle-domain `btwc-telemetry-v1` JSON.
    pub json: String,
}

/// Tuning knobs for a [`DecodeFarm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarmConfig {
    /// Bounded queue capacity: a job whose modeled queue position would
    /// reach this bound is rejected `QueueFull`.
    pub queue_capacity: u64,
    /// Modeled drain rate in decodes per cycle (clamped to ≥ 1). An
    /// admitted job at queue position `p` is charged `p / service_rate`
    /// cycles of queueing delay.
    pub service_rate: u64,
    /// Latency-driven shedding: while the farm's escalation-latency p99
    /// exceeds this bound (in cycles), the effective queue capacity is
    /// halved. `None` disables shedding.
    pub latency_shed_p99: Option<u64>,
    /// Export every tenant's cycle-domain snapshot every this many farm
    /// cycles. `None` disables exports.
    pub snapshot_cadence: Option<u64>,
}

impl FarmConfig {
    /// A service so over-provisioned it is invisible: effectively
    /// unbounded queue, one-cycle drain of any realistic burst, no
    /// shedding, no exports. Under this configuration every job is
    /// admitted with zero modeled delay, so farm outcomes are
    /// bit-identical to the inline machine loop — the configuration the
    /// conformance harness pins.
    #[must_use]
    pub fn generous() -> Self {
        FarmConfig {
            queue_capacity: u64::MAX >> 1,
            service_rate: u64::MAX >> 1,
            latency_shed_p99: None,
            snapshot_cadence: None,
        }
    }

    /// A bounded service: `queue_capacity` outstanding decodes,
    /// draining `service_rate` per cycle.
    #[must_use]
    pub fn bounded(queue_capacity: u64, service_rate: u64) -> Self {
        FarmConfig { queue_capacity, service_rate, latency_shed_p99: None, snapshot_cadence: None }
    }
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig::generous()
    }
}

/// The farm's own cycle-domain metrics (names under `farm.`).
struct FarmMetrics {
    submissions: Counter,
    decoded: Counter,
    batches: Counter,
    batch_size: Histogram,
    escalation_latency: Histogram,
    rejected_queue_full: Counter,
    rejected_deadline: Counter,
    shed_cycles: Counter,
    queue_depth: Gauge,
    queue_depth_hist: Histogram,
}

impl FarmMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        let d = Domain::Cycles;
        FarmMetrics {
            submissions: registry.counter("farm.submissions", d),
            decoded: registry.counter("farm.decoded", d),
            batches: registry.counter("farm.batches", d),
            batch_size: registry.histogram("farm.batch_size", d),
            escalation_latency: registry.histogram("farm.escalation_latency", d),
            rejected_queue_full: registry.counter("farm.rejected_queue_full", d),
            rejected_deadline: registry.counter("farm.rejected_deadline", d),
            shed_cycles: registry.counter("farm.shed_cycles", d),
            queue_depth: registry.gauge("farm.queue_depth", d),
            queue_depth_hist: registry.histogram("farm.queue_depth_hist", d),
        }
    }
}

/// One shared decoder instance serving every tenant with the same
/// (backend, distance, stabilizer) shape.
struct DecoderSlot {
    backend: &'static str,
    distance: u16,
    ty: StabilizerType,
    decoder: Box<dyn ComplexDecoder + Send + Sync>,
    /// Scratch receive windows, one per simultaneous job; grown on
    /// demand so a burst of `k` escalations replays into `k` windows
    /// before the single batched decode.
    wires: Vec<RoundHistory>,
    num_ancillas: usize,
    window_rounds: usize,
}

struct Tenant {
    name: String,
    slot: usize,
    registry: MetricsRegistry,
}

/// A job admitted this cycle, waiting for its slot's batched decode.
struct Admitted<'a> {
    /// Submission index (position in the `service_cycle` argument).
    sub: usize,
    /// Index of this job's response within its submission.
    pos: usize,
    job: &'a EscalationJob,
}

/// The shared decode service `N` machines submit escalations into.
///
/// See the crate docs for the full protocol; the short version is one
/// [`DecodeFarm::service_cycle`] call per lockstep machine cycle, with
/// each tenant's [`btwc_core::PendingCycle`] jobs in and one
/// [`ServiceResponse`] per job out, in order.
pub struct DecodeFarm {
    pool: Pool,
    config: FarmConfig,
    tenants: Vec<Tenant>,
    slots: Vec<DecoderSlot>,
    registry: MetricsRegistry,
    metrics: FarmMetrics,
    /// Modeled queue backlog carried across cycles.
    backlog: u64,
    cycle: u64,
    exports: Vec<SnapshotExport>,
}

impl DecodeFarm {
    /// Creates a farm dispatching on `pool` with the given service
    /// model. Farm-level metrics register into a fresh internal
    /// registry, retrievable via [`DecodeFarm::metrics`].
    #[must_use]
    pub fn new(pool: Pool, config: FarmConfig) -> Self {
        let registry = MetricsRegistry::new();
        let metrics = FarmMetrics::register(&registry);
        DecodeFarm {
            pool,
            config,
            tenants: Vec::new(),
            slots: Vec::new(),
            registry,
            metrics,
            backlog: 0,
            cycle: 0,
            exports: Vec::new(),
        }
    }

    /// Registers a machine as a tenant.
    ///
    /// Tenants with the same (backend, distance, stabilizer) shape
    /// share one decoder slot — their simultaneous escalations batch
    /// into a single [`ComplexDecoder::decode_batch_mut`] call. The
    /// tenant's `registry` is retained for cadence exports and
    /// [`DecodeFarm::aggregate_snapshot`].
    pub fn register_tenant(
        &mut self,
        name: &str,
        code: &SurfaceCode,
        ty: StabilizerType,
        backend: &DecoderBackend,
        window_rounds: usize,
        registry: &MetricsRegistry,
    ) -> TenantId {
        let key = (backend.name(), code.distance(), ty);
        let slot = match self.slots.iter().position(|s| (s.backend, s.distance, s.ty) == key) {
            Some(i) => {
                // Widen the shared scratch windows to the largest
                // window any tenant of this slot replays.
                if window_rounds > self.slots[i].window_rounds {
                    self.slots[i].window_rounds = window_rounds;
                    self.slots[i].wires.clear();
                }
                i
            }
            None => {
                self.slots.push(DecoderSlot {
                    backend: backend.name(),
                    distance: code.distance(),
                    ty,
                    decoder: backend.build(code, ty),
                    wires: Vec::new(),
                    num_ancillas: code.num_ancillas(ty),
                    window_rounds,
                });
                self.slots.len() - 1
            }
        };
        self.tenants.push(Tenant { name: name.to_string(), slot, registry: registry.clone() });
        TenantId(self.tenants.len() - 1)
    }

    /// Runs one farm cycle over every tenant's submissions and returns
    /// one response vector per submission, each aligned with its
    /// `jobs` slice.
    ///
    /// Admission is decided job-by-job in submission order (the modeled
    /// queue position is backlog + jobs already admitted this cycle),
    /// so the responses — and every cycle-domain metric they update —
    /// are bit-identical for any `BTWC_WORKERS` and pool mode: only the
    /// already-admitted batched decodes fan out across workers, and
    /// each decode depends only on its own window contents.
    pub fn service_cycle(
        &mut self,
        submissions: &[TenantSubmission<'_>],
    ) -> Vec<Vec<ServiceResponse>> {
        self.cycle += 1;
        let rate = self.config.service_rate.max(1);
        let capacity = match self.config.latency_shed_p99 {
            Some(bound) if self.metrics.escalation_latency.percentile(99) > bound => {
                self.metrics.shed_cycles.inc();
                (self.config.queue_capacity / 2).max(1)
            }
            _ => self.config.queue_capacity,
        };

        // Admission pass: sequential, in submission order.
        let mut responses: Vec<Vec<ServiceResponse>> = Vec::with_capacity(submissions.len());
        let mut groups: Vec<Vec<Admitted<'_>>> = self.slots.iter().map(|_| Vec::new()).collect();
        let mut admitted = 0u64;
        for (sub_idx, submission) in submissions.iter().enumerate() {
            let mut out = Vec::with_capacity(submission.jobs.len());
            let slot = self
                .tenants
                .get(submission.tenant.0)
                .map(|t| t.slot)
                .filter(|&s| s < self.slots.len());
            for job in submission.jobs {
                self.metrics.submissions.inc();
                let Some(slot) = slot else {
                    // Unregistered tenant id: refuse rather than guess a
                    // decoder shape.
                    self.metrics.rejected_queue_full.inc();
                    out.push(ServiceResponse::Rejected(RejectReason::QueueFull));
                    continue;
                };
                let position = self.backlog + admitted;
                if position >= capacity {
                    self.metrics.rejected_queue_full.inc();
                    out.push(ServiceResponse::Rejected(RejectReason::QueueFull));
                    continue;
                }
                let delay = position / rate;
                if delay > job.deadline_budget() {
                    self.metrics.rejected_deadline.inc();
                    out.push(ServiceResponse::Rejected(RejectReason::DeadlineExceeded));
                    continue;
                }
                admitted += 1;
                self.metrics.escalation_latency.record(job.latency_base() + delay);
                groups[slot].push(Admitted { sub: sub_idx, pos: out.len(), job });
                // Placeholder correction; overwritten after dispatch.
                out.push(ServiceResponse::Decoded {
                    correction: Correction::new(),
                    queue_delay_cycles: delay,
                });
            }
            responses.push(out);
        }

        // Dispatch pass: one batched decode per active slot, slots in
        // parallel on the pool. Corrections land in `corrections[slot]`
        // aligned with `groups[slot]`.
        let mut corrections: Vec<Vec<Correction>> = self.slots.iter().map(|_| Vec::new()).collect();
        {
            let metrics = &self.metrics;
            let mut tasks: Vec<(&mut DecoderSlot, &[Admitted<'_>], &mut Vec<Correction>)> = self
                .slots
                .iter_mut()
                .zip(groups.iter())
                .zip(corrections.iter_mut())
                .filter(|((_, group), _)| !group.is_empty())
                .map(|((slot, group), out)| (slot, group.as_slice(), out))
                .collect();
            if tasks.len() <= 1 || self.pool.workers() == 1 {
                for (slot, group, out) in &mut tasks {
                    decode_group(slot, group, out, metrics);
                }
            } else {
                self.pool.scope(|scope| {
                    for (slot, group, out) in &mut tasks {
                        scope.spawn(move || decode_group(slot, group, out, metrics));
                    }
                });
            }
        }
        for (group, decoded) in groups.iter().zip(&corrections) {
            for (admitted_job, correction) in group.iter().zip(decoded) {
                if let Some(ServiceResponse::Decoded { correction: c, .. }) = responses
                    .get_mut(admitted_job.sub)
                    .and_then(|out| out.get_mut(admitted_job.pos))
                {
                    *c = correction.clone();
                }
            }
        }

        // Queue model tail: the backlog drains `rate` per cycle.
        self.metrics.decoded.add(admitted);
        self.backlog = (self.backlog + admitted).saturating_sub(rate);
        self.metrics.queue_depth.set(self.backlog.min(i64::MAX as u64) as i64);
        self.metrics.queue_depth_hist.record(self.backlog);

        if let Some(cadence) = self.config.snapshot_cadence {
            if cadence > 0 && self.cycle.is_multiple_of(cadence) {
                for tenant in &self.tenants {
                    self.exports.push(SnapshotExport {
                        tenant: tenant.name.clone(),
                        cycle: self.cycle,
                        json: tenant.registry.snapshot_domains(&[Domain::Cycles]).to_json(),
                    });
                }
            }
        }

        responses
    }

    /// Drains the cadence-exported per-tenant snapshots accumulated so
    /// far, oldest first.
    pub fn take_exports(&mut self) -> Vec<SnapshotExport> {
        std::mem::take(&mut self.exports)
    }

    /// One fleet-wide cycle-domain snapshot: the farm's own `farm.*`
    /// metrics merged with every tenant's cycle-domain snapshot, in
    /// registration order.
    #[must_use]
    pub fn aggregate_snapshot(&self) -> Snapshot {
        let mut snapshot = self.registry.snapshot_domains(&[Domain::Cycles]);
        for tenant in &self.tenants {
            snapshot.merge(&tenant.registry.snapshot_domains(&[Domain::Cycles]));
        }
        snapshot
    }

    /// The farm's own metrics registry (the `farm.*` names).
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Current modeled queue backlog (also exported live as the
    /// `farm.queue_depth` gauge).
    #[must_use]
    pub fn queue_depth(&self) -> u64 {
        self.backlog
    }

    /// Farm cycles serviced so far.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Registered tenants.
    #[must_use]
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Distinct decoder slots (deduplicated backend/distance/stabilizer
    /// shapes).
    #[must_use]
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }
}

/// Replays a slot's admitted jobs into its scratch windows and resolves
/// them with one batched decode.
fn decode_group(
    slot: &mut DecoderSlot,
    group: &[Admitted<'_>],
    out: &mut Vec<Correction>,
    metrics: &FarmMetrics,
) {
    metrics.batches.inc();
    metrics.batch_size.record(group.len() as u64);
    // Widen first if some request carries more rounds than the
    // registered window (replay_into asserts capacity).
    let need = group.iter().map(|a| a.job.request().rounds.len()).max().unwrap_or(0);
    if need > slot.window_rounds {
        slot.window_rounds = need;
        slot.wires.clear();
    }
    while slot.wires.len() < group.len() {
        slot.wires.push(RoundHistory::new(slot.num_ancillas, slot.window_rounds));
    }
    for (wire, admitted) in slot.wires.iter_mut().zip(group) {
        admitted.job.request().replay_into(wire);
    }
    let windows: Vec<&RoundHistory> = slot.wires.iter().take(group.len()).collect();
    *out = slot.decoder.decode_batch_mut(&windows);
}
