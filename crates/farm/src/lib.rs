//! The decode farm: one shared off-chip decode service for many
//! machine instances.
//!
//! The paper's decoding hierarchy pays off at scale when many logical
//! qubits escalate concurrently — but a [`btwc_core::BtwcMachine`] used
//! to resolve each escalation inline on its own private backend. This
//! crate is the service tier the ROADMAP's "streaming decode service"
//! item asks for: `N` machines (tenants) run their cycles through
//! [`BtwcMachine::step_deferred`], submit the surviving
//! [`EscalationJob`]s into one [`DecodeFarm`], and fold the returned
//! [`ServiceResponse`]s back with [`BtwcMachine::complete`].
//!
//! Inside the farm, one [`DecodeFarm::service_cycle`] call per machine
//! cycle:
//!
//! * applies **admission control** against a bounded queue — a job is
//!   rejected `QueueFull` when the (modeled) backlog reaches capacity,
//!   or `DeadlineExceeded` when its modeled queueing delay would blow
//!   the escalation's remaining cycle-deadline budget; when the farm's
//!   escalation-latency histogram's p99 exceeds the configured shed
//!   threshold, the effective capacity halves (latency-driven
//!   backpressure);
//! * **batches** simultaneous escalations for the same
//!   backend/distance/stabilizer into one
//!   [`ComplexDecoder::decode_batch_mut`] call (bit-identical to `k`
//!   individual decodes — pinned by this crate's proptest), dispatching
//!   independent decoder slots in parallel on the workspace [`Pool`]'s
//!   persistent workers;
//! * models **queueing like [`QueueSim`]** does for the link: decodes
//!   complete synchronously within the step (so the lockstep driver
//!   stays deterministic for any `BTWC_WORKERS`), while the *modeled*
//!   backlog drains at `service_rate` jobs per cycle and each admitted
//!   job is charged its queue position's delay on the latency
//!   histograms — plus a live `farm.queue_depth` gauge;
//! * **aggregates telemetry**: every tenant registers its
//!   [`MetricsRegistry`]; [`DecodeFarm::aggregate_snapshot`] merges all
//!   tenant cycle-domain snapshots with the farm's own into one fleet
//!   view, and a configurable cadence exports per-tenant
//!   `btwc-telemetry-v1` JSON snapshots ([`DecodeFarm::take_exports`]).
//!
//! The whole tier is pinned by the service-conformance harness in
//! `btwc-sim` (`tests/farm_conformance.rs`): with a generous
//! configuration, per-tenant farm outcomes, stats, and cycle-domain
//! machine telemetry are **bit-identical to the inline single-machine
//! loop** for every builtin backend, any `BTWC_WORKERS`, and any
//! submission interleaving — decode results depend only on window
//! contents because a replayed [`DecodeRequest`] resets its window,
//! which every streaming decoder treats as a rebuild.
//!
//! [`BtwcMachine::step_deferred`]: btwc_core::BtwcMachine::step_deferred
//! [`BtwcMachine::complete`]: btwc_core::BtwcMachine::complete
//! [`EscalationJob`]: btwc_core::EscalationJob
//! [`ServiceResponse`]: btwc_core::ServiceResponse
//! [`ComplexDecoder::decode_batch_mut`]: btwc_core::ComplexDecoder
//! [`QueueSim`]: btwc_bandwidth::QueueSim
//! [`Pool`]: btwc_pool::Pool
//! [`MetricsRegistry`]: btwc_telemetry::MetricsRegistry
//! [`DecodeRequest`]: btwc_bandwidth::DecodeRequest

mod farm;

pub use farm::{DecodeFarm, FarmConfig, SnapshotExport, TenantId, TenantSubmission};
