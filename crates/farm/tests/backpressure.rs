//! Backpressure liveness: saturate the farm queue — tiny capacity and
//! drain rate, a hostile link fault model on every tenant, demand far
//! above service — and the service must not wedge. Every submission
//! resolves *within its own cycle* as either `Decoded` or a rejection
//! the machine immediately degrades (the lockstep loop structurally
//! cannot leave a job pending), and the farm's accounting —
//! `farm.queue_depth` gauge, modeled backlog, rejection and decode
//! counters — must match the observed responses exactly, cycle by
//! cycle.

use btwc_core::RejectReason;
use btwc_core::{
    BtwcMachine, BtwcOutcome, DecoderBackend, LinkFaultModel, ServiceResponse, StabilizerType,
    SurfaceCode,
};
use btwc_farm::{DecodeFarm, FarmConfig, TenantSubmission};
use btwc_noise::{SimRng, SparseFlips};
use btwc_pool::Pool;
use btwc_syndrome::{PackedBits, SyndromeBatch};
use btwc_telemetry::{MetricValue, MetricsRegistry};

const QUBITS: usize = 6;
const CYCLES: u64 = 400;
const QUEUE_CAPACITY: u64 = 3;
const SERVICE_RATE: u64 = 1;

struct Tenant {
    machine: BtwcMachine,
    rng: SimRng,
    errors: Vec<Vec<bool>>,
    batch: SyndromeBatch,
    round: PackedBits,
    n_data: usize,
    n_anc: usize,
}

impl Tenant {
    /// Open-loop hostile workload: errors accumulate (corrections are
    /// never applied back), so complex signatures — and escalations —
    /// keep coming every cycle.
    fn next_batch(&mut self) -> &SyndromeBatch {
        for q in 0..QUBITS {
            for flip in SparseFlips::new(&mut self.rng, self.n_data, 3e-2) {
                self.errors[q][flip] = !self.errors[q][flip];
            }
            let syndrome = self.code().syndrome_of(StabilizerType::X, &self.errors[q]);
            self.round.fill_from_bools(&syndrome);
            for a in SparseFlips::new(&mut self.rng, self.n_anc, 5e-3) {
                self.round.toggle(a);
            }
            self.batch.set_qubit_round(q, &self.round);
        }
        &self.batch
    }

    fn code(&self) -> SurfaceCode {
        SurfaceCode::new(5)
    }
}

fn build_tenant(farm: &mut DecodeFarm, seed: u64) -> Tenant {
    let code = SurfaceCode::new(5);
    let ty = StabilizerType::X;
    let registry = MetricsRegistry::new();
    let machine = BtwcMachine::builder(&code, ty, QUBITS, QUBITS)
        .backend(DecoderBackend::UnionFind)
        // The PR-8 hostile link: corruption/drop/duplication/reordering
        // all enabled, so transport retries and degradations interleave
        // with farm rejections.
        .fault_model(LinkFaultModel::uniform(0.10))
        .link_seed(seed ^ 0xBAD)
        // A tight deadline so the saturated queue's modeled delay blows
        // budgets (DeadlineExceeded), not just capacity (QueueFull).
        .deadline_cycles(2)
        .build();
    farm.register_tenant(
        &format!("hostile-{seed}"),
        &code,
        ty,
        &DecoderBackend::UnionFind,
        20,
        &registry,
    );
    Tenant {
        machine,
        rng: SimRng::from_seed(seed),
        errors: vec![vec![false; code.num_data_qubits()]; QUBITS],
        batch: SyndromeBatch::new(QUBITS, code.num_ancillas(ty)),
        round: PackedBits::new(code.num_ancillas(ty)),
        n_data: code.num_data_qubits(),
        n_anc: code.num_ancillas(ty),
    }
}

#[test]
fn saturated_farm_never_wedges_and_accounts_exactly() {
    let mut farm = DecodeFarm::new(Pool::new(2), FarmConfig::bounded(QUEUE_CAPACITY, SERVICE_RATE));
    let mut tenants: Vec<Tenant> = (0..2).map(|i| build_tenant(&mut farm, 0xA0 + i)).collect();

    // Independent replica of the farm's queue model and counters,
    // rebuilt from the observed responses only.
    let mut expected_backlog = 0u64;
    let mut observed_decoded = 0u64;
    let mut observed_queue_full = 0u64;
    let mut observed_deadline = 0u64;
    let mut observed_submissions = 0u64;

    for _ in 0..CYCLES {
        let pendings: Vec<_> = tenants
            .iter_mut()
            .map(|t| {
                t.next_batch();
                t.machine.step_deferred(&t.batch)
            })
            .collect();
        let submissions: Vec<TenantSubmission<'_>> = pendings
            .iter()
            .enumerate()
            .map(|(i, p)| TenantSubmission { tenant: btwc_farm::TenantId(i), jobs: p.jobs() })
            .collect();
        let responses = farm.service_cycle(&submissions);
        drop(submissions);

        // Liveness: exactly one response per submitted job, this cycle.
        let mut admitted = 0u64;
        for (pending, resp) in pendings.iter().zip(&responses) {
            assert_eq!(resp.len(), pending.jobs().len(), "a submission went unanswered");
            for r in resp {
                observed_submissions += 1;
                match r {
                    ServiceResponse::Decoded { .. } => {
                        admitted += 1;
                        observed_decoded += 1;
                    }
                    ServiceResponse::Rejected(RejectReason::QueueFull) => observed_queue_full += 1,
                    ServiceResponse::Rejected(RejectReason::DeadlineExceeded) => {
                        observed_deadline += 1;
                    }
                }
            }
        }
        expected_backlog = (expected_backlog + admitted).saturating_sub(SERVICE_RATE);
        assert_eq!(
            farm.queue_depth(),
            expected_backlog,
            "modeled backlog diverged from the response stream"
        );

        // Every job resolves within its cycle: folding the responses
        // closes the machine cycle with a definite outcome per qubit
        // (rejections degrade on the spot).
        for ((tenant, pending), resp) in tenants.iter_mut().zip(pendings).zip(responses) {
            let jobs = pending.jobs().len();
            let cycle = tenant.machine.complete(pending, resp);
            assert_eq!(cycle.outcomes.len(), QUBITS);
            if jobs > 0 {
                assert!(
                    cycle
                        .outcomes
                        .iter()
                        .any(|o| matches!(o, BtwcOutcome::OffChip(_) | BtwcOutcome::Degraded(_))),
                    "escalations must resolve as decoded or degraded in their own cycle"
                );
            }
        }
    }

    // The saturation scenario must actually saturate.
    assert!(observed_submissions > CYCLES, "hostile workload produced almost no escalations");
    assert!(observed_queue_full > 0, "queue never filled — not a backpressure test");
    assert!(observed_deadline > 0, "no deadline rejections — tighten the scenario");
    assert!(observed_decoded > 0, "the farm must keep decoding under pressure");

    // Counter exactness: the farm's own metrics equal the replica.
    let snap = farm.metrics().snapshot();
    assert_eq!(snap.get_counter("farm.submissions"), Some(observed_submissions));
    assert_eq!(snap.get_counter("farm.decoded"), Some(observed_decoded));
    assert_eq!(snap.get_counter("farm.rejected_queue_full"), Some(observed_queue_full));
    assert_eq!(snap.get_counter("farm.rejected_deadline"), Some(observed_deadline));
    // Gauge exactness: the live queue-depth gauge is the modeled
    // backlog, exactly.
    assert_eq!(
        snap.get("farm.queue_depth"),
        Some(&MetricValue::Gauge(expected_backlog as i64)),
        "farm.queue_depth gauge diverged from the modeled backlog"
    );
    // And the machines kept full degradation accounting: every
    // rejection surfaced as a degraded decode on some tenant.
    let degraded: u64 = tenants.iter().map(|t| t.machine.transport_stats().degraded_decodes).sum();
    assert!(
        degraded >= observed_queue_full + observed_deadline,
        "every farm rejection must degrade on its machine (transport adds its own)"
    );
}
