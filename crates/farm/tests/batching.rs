//! The batching seam's contract, property-tested: grouping `k`
//! simultaneous escalations into one [`ComplexDecoder::decode_batch_mut`]
//! call is bit-identical to `k` individual
//! [`ComplexDecoder::decode_window_mut`] calls in the same order —
//! flips, weights, and counts must not depend on the grouping, for
//! every builtin backend, including the `k = 1` fast path.

use btwc_core::{DecoderBackend, StabilizerType, SurfaceCode};
use btwc_syndrome::RoundHistory;
use proptest::prelude::*;

const BACKENDS: [DecoderBackend; 4] = [
    DecoderBackend::DenseMwpm,
    DecoderBackend::SparseBlossom,
    DecoderBackend::UnionFind,
    DecoderBackend::Lut,
];

const WINDOW_CAPACITY: usize = 8;

/// `k` windows (1..=5) of 1..=WINDOW_CAPACITY rounds over the d=3
/// X-ancilla count (4) — small enough for the Lut backend, arbitrary
/// enough to hit empty, odd-parity, and dense defect sets.
fn windows_strategy() -> impl Strategy<Value = Vec<Vec<Vec<bool>>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 4),
            1..(WINDOW_CAPACITY + 1),
        ),
        1..6,
    )
}

fn histories(windows: &[Vec<Vec<bool>>], num_ancillas: usize) -> Vec<RoundHistory> {
    windows
        .iter()
        .map(|rounds| {
            let mut h = RoundHistory::new(num_ancillas, WINDOW_CAPACITY);
            for round in rounds {
                h.push(round);
            }
            h
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_decode_is_bit_identical_to_individual_calls(windows in windows_strategy()) {
        let ty = StabilizerType::X;
        let code = SurfaceCode::new(3);
        let hists = histories(&windows, code.num_ancillas(ty));
        let refs: Vec<&RoundHistory> = hists.iter().collect();
        for backend in BACKENDS {
            // One batched call on a fresh decoder…
            let mut batched = backend.build(&code, ty);
            let got = batched.decode_batch_mut(&refs);
            // …versus k individual calls on another fresh decoder.
            let mut individual = backend.build(&code, ty);
            let want: Vec<_> = refs.iter().map(|w| individual.decode_window_mut(w)).collect();
            prop_assert_eq!(got.len(), refs.len(), "{}: one correction per window", backend.name());
            for (k, (g, w)) in got.iter().zip(&want).enumerate() {
                prop_assert_eq!(g.qubits(), w.qubits(), "{} window {k}: flips differ", backend.name());
                prop_assert_eq!(g.weight(), w.weight(), "{} window {k}: weight differs", backend.name());
            }
        }
    }

    #[test]
    fn batching_leaks_no_state_between_windows(windows in windows_strategy()) {
        // Each window of the batch must decode as if it were the
        // decoder's only input ever: compare against a brand-new
        // decoder per window.
        let ty = StabilizerType::X;
        let code = SurfaceCode::new(3);
        let hists = histories(&windows, code.num_ancillas(ty));
        let refs: Vec<&RoundHistory> = hists.iter().collect();
        for backend in BACKENDS {
            let mut batched = backend.build(&code, ty);
            let got = batched.decode_batch_mut(&refs);
            for (k, (g, w)) in got.iter().zip(&refs).enumerate() {
                let fresh = backend.build(&code, ty).decode_window(w);
                prop_assert_eq!(
                    g.qubits(),
                    fresh.qubits(),
                    "{} window {k}: batch position changed the result",
                    backend.name()
                );
            }
        }
    }
}

/// The `k = 1` fast path, pinned explicitly: a singleton batch is the
/// plain window decode.
#[test]
fn singleton_batch_is_the_plain_window_decode() {
    let ty = StabilizerType::X;
    let code = SurfaceCode::new(3);
    let n_anc = code.num_ancillas(ty);
    let mut h = RoundHistory::new(n_anc, WINDOW_CAPACITY);
    h.push(&[true, false, false, true]);
    h.push(&[true, true, false, false]);
    h.push(&[false, true, false, true]);
    for backend in BACKENDS {
        let mut batched = backend.build(&code, ty);
        let got = batched.decode_batch_mut(&[&h]);
        let mut single = backend.build(&code, ty);
        let want = single.decode_window_mut(&h);
        assert_eq!(got.len(), 1, "{}", backend.name());
        assert_eq!(got[0], want, "{}", backend.name());
    }
}
