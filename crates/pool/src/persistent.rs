//! Long-lived parked worker threads backing [`PoolMode::Persistent`].
//!
//! The legacy pool spawns OS threads per [`Pool::scope`] call and joins
//! them before returning. That is correct but pays thread spawn/join on
//! every `map` — ruinous for service workloads like the decode farm,
//! which dispatches one small batch of escalations per machine cycle.
//! This module keeps one set of worker threads alive for the lifetime
//! of the pool: workers park on a [`Condvar`] next to a shared injector
//! queue, a batch submission pushes its tasks and wakes them, and the
//! submitting thread blocks on a per-batch completion latch.
//!
//! The deterministic contract is unchanged: the injector only decides
//! *where* a task runs, never *what* it computes, and `run_batch`
//! returns only after every task of the batch has finished — so scoped
//! borrows stay sound and `map`/`map_reduce` results remain
//! bit-identical to the legacy per-call-spawn schedule for any worker
//! count.
//!
//! [`PoolMode::Persistent`]: crate::PoolMode
//! [`Pool::scope`]: crate::Pool::scope

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// A pool task erased to `'static`.
///
/// Tasks submitted through [`PersistentWorkers::run_batch`] may borrow
/// from the submitting stack frame; the lifetime is erased so they can
/// cross into long-lived worker threads. Soundness rests on the batch
/// latch: `run_batch` does not return until every task of the batch has
/// executed (or been abandoned after a panic), so the borrows never
/// outlive their owners.
type StaticTask = Box<dyn FnOnce() + Send + 'static>;

/// Completion state for one submitted batch.
struct BatchState {
    /// Tasks of this batch not yet finished (executed or abandoned).
    remaining: Mutex<usize>,
    /// Signalled when `remaining` reaches zero.
    done: Condvar,
    /// First panic payload observed in this batch, if any.
    first_panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Once set, the batch's still-queued tasks are abandoned (matching
    /// the legacy pool's panic semantics).
    abort: AtomicBool,
}

/// Queue state guarded by the injector mutex.
struct Injector {
    /// FIFO of `(batch, task)` pairs awaiting a worker.
    queue: VecDeque<(Arc<BatchState>, StaticTask)>,
    /// Set by `Drop`: workers drain the queue and exit.
    shutdown: bool,
}

/// State shared between the submitting thread and the workers.
struct Shared {
    injector: Mutex<Injector>,
    /// Workers park here when the injector is empty.
    work: Condvar,
}

/// A set of long-lived worker threads serving a shared injector queue.
///
/// Dropping the last handle signals shutdown and joins every worker.
pub(crate) struct PersistentWorkers {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for PersistentWorkers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentWorkers").field("workers", &self.handles.len()).finish()
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// Index of the persistent worker running on this thread, if any —
    /// lets the scheduling-domain telemetry wrapper attribute a task to
    /// the thread that executed it.
    static WORKER_INDEX: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// The persistent-worker index of the current thread (`None` off the
/// pool's worker threads).
pub(crate) fn current_worker_index() -> Option<usize> {
    WORKER_INDEX.with(std::cell::Cell::get)
}

impl PersistentWorkers {
    /// Spawns `workers` parked threads serving one injector queue.
    pub(crate) fn spawn(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            injector: Mutex::new(Injector { queue: VecDeque::new(), shutdown: false }),
            work: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("btwc-pool-{w}"))
                    .spawn(move || {
                        WORKER_INDEX.with(|idx| idx.set(Some(w)));
                        worker_loop(&shared);
                    })
                    .expect("spawn persistent pool worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Runs one batch of tasks to completion on the parked workers.
    ///
    /// Blocks until every task has executed (or been abandoned after a
    /// panic); returns the first panic payload, if any, for the caller
    /// to resume. The submitting thread does not execute tasks itself —
    /// tasks must not submit to the same pool (same constraint as the
    /// legacy scheduler, where it would deadlock the worker instead).
    pub(crate) fn run_batch<'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
    ) -> Option<Box<dyn Any + Send>> {
        let batch = Arc::new(BatchState {
            remaining: Mutex::new(tasks.len()),
            done: Condvar::new(),
            first_panic: Mutex::new(None),
            abort: AtomicBool::new(false),
        });
        {
            let mut inj = lock(&self.shared.injector);
            for task in tasks {
                // SAFETY: erasing `'env` to `'static` is sound because
                // this function blocks on the batch latch below — every
                // task has finished (or been dropped unexecuted on the
                // abandon path) before `run_batch` returns, so no task
                // outlives the `'env` borrows it captures.
                let task: StaticTask = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, StaticTask>(task)
                };
                inj.queue.push_back((Arc::clone(&batch), task));
            }
        }
        self.shared.work.notify_all();
        let mut remaining = lock(&batch.remaining);
        while *remaining > 0 {
            remaining = batch.done.wait(remaining).unwrap_or_else(PoisonError::into_inner);
        }
        drop(remaining);
        let mut first_panic = lock(&batch.first_panic);
        first_panic.take()
    }
}

impl Drop for PersistentWorkers {
    fn drop(&mut self) {
        lock(&self.shared.injector).shutdown = true;
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            // A worker thread panicking outside a task would poison
            // nothing here — task panics are caught below, so join only
            // fails on catastrophic runtime errors; ignore to keep Drop
            // non-panicking.
            let _ = handle.join();
        }
    }
}

/// Park on the injector, execute tasks, signal batch latches.
fn worker_loop(shared: &Shared) {
    loop {
        let next = {
            let mut inj = lock(&shared.injector);
            loop {
                if let Some(pair) = inj.queue.pop_front() {
                    break Some(pair);
                }
                if inj.shutdown {
                    break None;
                }
                inj = shared.work.wait(inj).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some((batch, task)) = next else { return };
        // det: abort only matters on the panic path, which abandons the
        // batch — no result depends on which task observes the flag.
        if batch.abort.load(Ordering::Relaxed) {
            // Abandoned batch: drop the task (and anything it captured)
            // *before* releasing the latch, so `run_batch` never returns
            // while a task body or destructor is still live.
            drop(task);
        } else if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
            lock(&batch.first_panic).get_or_insert(payload);
            // det: sticky flag on the propagate-panic path; the batch
            // produces no result, so ordering cannot reach one.
            batch.abort.store(true, Ordering::Relaxed);
        }
        let mut remaining = lock(&batch.remaining);
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            batch.done.notify_all();
        }
    }
}
