//! Work-stealing thread pool for the Monte Carlo sweep engines.
//!
//! The workspace's simulation hot paths fan out over a `(p, d)` grid:
//! cheap points (d = 3) finish orders of magnitude before expensive ones
//! (d ≥ 13), so the previous per-point `std::thread::scope` schedule
//! left cores idle at every point boundary and re-paid thread spawn and
//! per-worker decoder construction at each of them. This crate is a
//! small vendored work-stealing pool (the build environment has no
//! crates.io access, so rayon is unavailable) that takes the *whole*
//! task set at once and lets idle workers steal across point
//! boundaries:
//!
//! * **per-worker LIFO deques** — each worker owns a contiguous block of
//!   the submitted tasks and pops from the back of its own deque;
//! * **random stealing** — an empty worker picks a random victim and
//!   steals the victim's *oldest* task (front of the deque), the one
//!   farthest from the owner's working set;
//! * **scoped spawn** — tasks may borrow from the caller's stack
//!   ([`Pool::scope`] joins every task before returning), and a panic in
//!   any task aborts the remaining work and resumes on the caller;
//! * **deterministic map/reduce** — [`Pool::map`] returns results in
//!   submission order and [`Pool::map_reduce`] folds them in shard
//!   order, so outputs are **bit-identical regardless of worker count**.
//!   Callers split work into *fixed* shards (independent of the worker
//!   count) with forked RNG streams keyed by shard index; the pool only
//!   decides *where* each shard runs, never *what* it computes.
//!
//! The `BTWC_WORKERS` environment variable overrides every requested
//! worker count (see [`Pool::new`]) — CI runs the test suite once with
//! `BTWC_WORKERS=1` to catch any accidental worker-count dependence.
//!
//! Two scheduling modes execute the same contract ([`PoolMode`],
//! default `Persistent`, overridable via `BTWC_POOL_MODE` or pinned
//! with [`Pool::with_mode`]): **persistent** keeps one set of parked
//! worker threads alive across calls (a condvar injector queue — no
//! per-`map` thread spawn, the decode farm's service path), **legacy**
//! spawns scoped threads per call. Results are bit-identical across
//! modes and worker counts; only scheduling-domain telemetry differs.
//!
//! # Example
//!
//! ```
//! use btwc_pool::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

mod deque;
mod persistent;
mod pool;

pub use pool::{Pool, PoolMode, Scope, POOL_MODE_ENV, WORKERS_ENV};
