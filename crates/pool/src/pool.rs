//! The work-stealing pool and its scoped-spawn surface.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use btwc_telemetry::{Counter, CounterFamily, Domain, MetricsRegistry};

use crate::deque::TaskDeque;
use crate::persistent::PersistentWorkers;

/// One unit of work scheduled onto the pool. Tasks may borrow from the
/// submitting stack frame (`'env`): the pool joins every task before
/// [`Pool::scope`] returns, so the borrows never outlive their owners.
type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Environment variable overriding every requested worker count.
///
/// Results are bit-identical for any worker count by construction, so
/// forcing `BTWC_WORKERS=1` across a test run is a pure scheduling
/// change — CI uses it to catch accidental worker-count dependence.
pub const WORKERS_ENV: &str = "BTWC_WORKERS";

fn env_workers() -> Option<usize> {
    std::env::var(WORKERS_ENV).ok()?.parse::<usize>().ok().filter(|&w| w > 0)
}

/// Environment variable overriding the default worker scheduling mode
/// (`legacy` or `persistent`); explicit [`Pool::with_mode`] calls still
/// win, so tests pinning a mode stay pinned.
pub const POOL_MODE_ENV: &str = "BTWC_POOL_MODE";

fn env_mode() -> Option<PoolMode> {
    match std::env::var(POOL_MODE_ENV).ok()?.as_str() {
        "legacy" => Some(PoolMode::Legacy),
        "persistent" => Some(PoolMode::Persistent),
        _ => None,
    }
}

/// How a [`Pool`] turns a task set into running threads.
///
/// Both modes honour the same contract — `map` results in submission
/// order, `map_reduce` folded in shard order, first panic resumed on
/// the caller — so switching modes is a pure scheduling change and
/// every result is bit-identical across them (pinned by the
/// determinism suites).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMode {
    /// Spawn worker threads per [`Pool::scope`] / [`Pool::map`] call
    /// via `std::thread::scope` and join them before returning. Best
    /// when a pool runs one huge task set (a whole sweep grid).
    Legacy,
    /// Long-lived workers parked on a condvar next to a shared injector
    /// queue, spawned lazily at the first threaded run and joined when
    /// the last pool clone drops. Removes per-call thread spawn/join —
    /// the win for service workloads submitting many small batches
    /// (the decode farm's per-cycle dispatch).
    Persistent,
}

/// A work-stealing thread pool over scoped tasks.
///
/// The pool is a scheduling *policy* with two execution modes
/// ([`PoolMode`]): `Persistent` (the default) keeps one set of parked
/// worker threads alive across calls, `Legacy` spawns threads per
/// [`Pool::scope`] / [`Pool::map`] call via `std::thread::scope`.
/// Either way every task is joined before the submitting call returns
/// (so tasks may borrow), and submitting the whole workload of a sweep
/// as one task set is what keeps every core busy — stealing (legacy)
/// or the shared injector (persistent) balances cheap tasks against
/// expensive ones with no barrier in between.
#[derive(Debug, Clone)]
pub struct Pool {
    workers: usize,
    mode: PoolMode,
    telemetry: Option<PoolTelemetry>,
    /// Lazily-spawned persistent workers, shared across pool clones
    /// (clones schedule onto the same threads). Never touched in
    /// legacy mode.
    persistent: Arc<OnceLock<PersistentWorkers>>,
}

/// Scheduling-domain metric handles recorded by the worker loop. All of
/// these depend on thread timing (who steals what), so they live in
/// [`Domain::Scheduling`] and are excluded from determinism snapshots.
#[derive(Debug, Clone)]
struct PoolTelemetry {
    /// Tasks a worker popped from its own deque.
    tasks_local: Counter,
    /// Tasks a worker stole from a victim's deque.
    tasks_stolen: Counter,
    /// Tasks executed inline on the caller (single-worker or tiny runs).
    tasks_inline: Counter,
    /// Tasks executed per worker index — the per-shard imbalance view.
    worker_tasks: CounterFamily,
}

impl Pool {
    /// A pool with `workers` workers, unless the [`WORKERS_ENV`]
    /// environment variable overrides the count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        Self {
            workers: env_workers().unwrap_or(workers),
            mode: env_mode().unwrap_or(PoolMode::Persistent),
            telemetry: None,
            persistent: Arc::new(OnceLock::new()),
        }
    }

    /// A pool sized to the machine: [`WORKERS_ENV`] if set, otherwise
    /// the available parallelism (capped at 16 — the sweep engines'
    /// shards are coarse enough that wider pools only add steal
    /// traffic).
    #[must_use]
    pub fn auto() -> Self {
        let fallback = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
            .min(16);
        Self {
            workers: env_workers().unwrap_or(fallback),
            mode: env_mode().unwrap_or(PoolMode::Persistent),
            telemetry: None,
            persistent: Arc::new(OnceLock::new()),
        }
    }

    /// The worker count this pool schedules onto.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The scheduling mode this pool executes with.
    #[must_use]
    pub fn mode(&self) -> PoolMode {
        self.mode
    }

    /// Pins the scheduling mode, overriding the [`POOL_MODE_ENV`]
    /// default. Call before the pool's first threaded run — once the
    /// persistent workers have spawned, clones share them regardless.
    #[must_use]
    pub fn with_mode(mut self, mode: PoolMode) -> Self {
        self.mode = mode;
        self
    }

    /// Attach a metrics registry: the pool records tasks executed
    /// locally vs. stolen vs. inline, plus a per-worker task-count
    /// family (`pool.worker_tasks`) exposing shard imbalance. All pool
    /// metrics are scheduling-domain — real but not reproducible across
    /// runs. Call before sharing the pool (e.g. before wrapping in
    /// `Arc`); cloned pools share the same counters.
    pub fn attach_telemetry(&mut self, registry: &MetricsRegistry) {
        self.telemetry = Some(PoolTelemetry {
            tasks_local: registry.counter("pool.tasks_local", Domain::Scheduling),
            tasks_stolen: registry.counter("pool.tasks_stolen", Domain::Scheduling),
            tasks_inline: registry.counter("pool.tasks_inline", Domain::Scheduling),
            worker_tasks: registry.counter_family(
                "pool.worker_tasks",
                Domain::Scheduling,
                self.workers,
            ),
        });
    }

    /// Builder form of [`Pool::attach_telemetry`].
    #[must_use]
    pub fn with_telemetry(mut self, registry: &MetricsRegistry) -> Self {
        self.attach_telemetry(registry);
        self
    }

    /// Collects tasks from `build`, then runs them all to completion
    /// with work stealing.
    ///
    /// Tasks may borrow anything alive across the `scope` call (the
    /// pool joins them before returning). Execution order is
    /// unspecified — tasks communicate results through the locations
    /// they capture, keyed by something fixed at spawn time (an index,
    /// a slot), never through completion order.
    ///
    /// # Panics
    ///
    /// If a task panics, the remaining queued tasks are abandoned and
    /// the first panic payload is resumed on the caller once every
    /// in-flight task has finished.
    pub fn scope<'env>(&self, build: impl FnOnce(&mut Scope<'env>)) {
        let mut scope = Scope { tasks: Vec::new() };
        build(&mut scope);
        self.run(scope.tasks);
    }

    /// Applies `f` to every item, in parallel, returning results in
    /// item order — bit-identical for any worker count (the pool only
    /// decides *where* each call runs; `f(i, &items[i])` itself must be
    /// deterministic in `i`, which the sim engines guarantee by forking
    /// RNG streams keyed by shard index).
    pub fn map<T, R>(&self, items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        self.map_indices(items.len(), |i| f(i, &items[i]))
    }

    /// [`Pool::map`] over the index range `0..n`.
    pub fn map_indices<R: Send>(&self, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        if self.workers == 1 || n <= 1 {
            // Inline on the caller: no threads, no boxing — the
            // `BTWC_WORKERS=1` CI pass and tiny task sets take this
            // path, and produce the same results by construction.
            if let Some(t) = &self.telemetry {
                t.tasks_inline.add(n as u64);
            }
            return (0..n).map(f).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        self.scope(|s| {
            for (i, slot) in slots.iter().enumerate() {
                let f = &f;
                s.spawn(move || {
                    let r = f(i);
                    *slot.lock().expect("result slot") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("result slot").expect("every task ran"))
            .collect()
    }

    /// Chunked reduce: runs `f(shard)` for `0..shards` in parallel and
    /// folds the results **in shard order** — deterministic even for
    /// non-commutative `merge`.
    pub fn map_reduce<R, A>(
        &self,
        shards: usize,
        f: impl Fn(usize) -> R + Sync,
        init: A,
        merge: impl FnMut(A, R) -> A,
    ) -> A
    where
        R: Send,
    {
        self.map_indices(shards, f).into_iter().fold(init, merge)
    }

    /// Executes a task set in the pool's scheduling mode.
    fn run(&self, tasks: Vec<Task<'_>>) {
        let n = tasks.len();
        if n == 0 {
            return;
        }
        let workers = self.workers.min(n);
        if workers == 1 {
            if let Some(t) = &self.telemetry {
                t.tasks_inline.add(n as u64);
            }
            for task in tasks {
                task();
            }
            return;
        }
        match self.mode {
            PoolMode::Persistent => self.run_persistent(tasks),
            PoolMode::Legacy => self.run_legacy(tasks, workers),
        }
    }

    /// Executes a task set on the long-lived parked workers, spawning
    /// them on first use.
    fn run_persistent(&self, tasks: Vec<Task<'_>>) {
        let workers = self.persistent.get_or_init(|| PersistentWorkers::spawn(self.workers));
        let tasks: Vec<Task<'_>> = match &self.telemetry {
            None => tasks,
            Some(t) => tasks
                .into_iter()
                .map(|task| {
                    let t = t.clone();
                    let wrapped: Task<'_> = Box::new(move || {
                        // Injector pops count as "local" (there is no
                        // stealing in persistent mode — one shared
                        // queue); the per-worker family still exposes
                        // imbalance via the executing thread's index.
                        t.tasks_local.inc();
                        if let Some(w) = crate::persistent::current_worker_index() {
                            t.worker_tasks.inc(w);
                        }
                        task();
                    });
                    wrapped
                })
                .collect(),
        };
        if let Some(payload) = workers.run_batch(tasks) {
            resume_unwind(payload);
        }
    }

    /// Executes a task set with per-call spawned threads, per-worker
    /// LIFO deques, and random stealing.
    fn run_legacy(&self, tasks: Vec<Task<'_>>, workers: usize) {
        let n = tasks.len();
        // Block distribution: worker w starts owning the contiguous
        // index run [w·n/W, (w+1)·n/W) — neighbouring tasks (same grid
        // point, consecutive shards) start on the same worker, and a
        // thief stealing from the front of a victim peels off the start
        // of an untouched run.
        let mut blocks: Vec<Vec<Task<'_>>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            blocks[i * workers / n].push(task);
        }
        let deques: Vec<TaskDeque<Task<'_>>> = blocks.into_iter().map(TaskDeque::preload).collect();
        let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let abort = AtomicBool::new(false);
        std::thread::scope(|s| {
            for w in 0..workers {
                let deques = &deques;
                let first_panic = &first_panic;
                let abort = &abort;
                let telemetry = self.telemetry.as_ref();
                s.spawn(move || {
                    let mut rng = splitmix64(w as u64);
                    // det: abort only matters on the panic path, which
                    // aborts the whole run — no result depends on which
                    // cycle a worker observes the flag.
                    while !abort.load(Ordering::Relaxed) {
                        let task = match deques[w].pop() {
                            Some(task) => {
                                if let Some(t) = telemetry {
                                    t.tasks_local.inc();
                                    t.worker_tasks.inc(w);
                                }
                                task
                            }
                            None => match steal(deques, w, &mut rng) {
                                Some(task) => {
                                    if let Some(t) = telemetry {
                                        t.tasks_stolen.inc();
                                        t.worker_tasks.inc(w);
                                    }
                                    task
                                }
                                // Every deque was empty: tasks never
                                // spawn new tasks mid-run, so no more
                                // work will appear.
                                None => break,
                            },
                        };
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                            let mut first =
                                first_panic.lock().unwrap_or_else(PoisonError::into_inner);
                            first.get_or_insert(payload);
                            // det: sets a sticky flag on the
                            // propagate-panic path; the run produces no
                            // result, so ordering cannot reach one.
                            abort.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        });
        if let Some(payload) = first_panic.into_inner().unwrap_or_else(PoisonError::into_inner) {
            resume_unwind(payload);
        }
    }
}

/// One steal attempt round: scan every other worker starting from a
/// random victim, taking the first available front task.
fn steal<'env>(
    deques: &[TaskDeque<Task<'env>>],
    thief: usize,
    rng: &mut u64,
) -> Option<Task<'env>> {
    let n = deques.len();
    *rng = splitmix64(*rng);
    let start = (*rng % n as u64) as usize;
    for k in 0..n {
        let victim = (start + k) % n;
        if victim != thief {
            if let Some(task) = deques[victim].steal() {
                return Some(task);
            }
        }
    }
    None
}

/// Collects tasks for one [`Pool::scope`] run.
///
/// Spawns are *deferred*: tasks queue here while the build closure
/// runs and start executing (with stealing) once it returns. Tasks may
/// borrow anything outliving the `scope` call; they cannot themselves
/// spawn further tasks.
pub struct Scope<'env> {
    tasks: Vec<Task<'env>>,
}

impl<'env> Scope<'env> {
    /// Queues a task for this scope's run.
    pub fn spawn(&mut self, f: impl FnOnce() + Send + 'env) {
        self.tasks.push(Box::new(f));
    }

    /// Number of tasks queued so far.
    #[must_use]
    pub fn spawned(&self) -> usize {
        self.tasks.len()
    }
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope").field("tasks", &self.tasks.len()).finish()
    }
}

/// SplitMix64 finalizer — drives victim selection; scheduling-only, so
/// its quality never affects results.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (0..100).collect();
        let out = pool.map(&items, |i, &x| x * 2 + i as u64);
        let expected: Vec<u64> = (0..100).map(|x| x * 3).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn map_handles_empty_and_single() {
        let pool = Pool::new(8);
        assert_eq!(pool.map(&[] as &[u64], |_, &x| x), Vec::<u64>::new());
        assert_eq!(pool.map(&[7u64], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn map_reduce_folds_in_shard_order() {
        let pool = Pool::new(4);
        // String concatenation is non-commutative: any out-of-order
        // merge would scramble the digits.
        let s = pool.map_reduce(10, |i| i.to_string(), String::new(), |acc, d| acc + &d);
        assert_eq!(s, "0123456789");
    }

    #[test]
    fn scope_tasks_borrow_caller_state() {
        let pool = Pool::new(4);
        let totals = Mutex::new(vec![0u64; 8]);
        pool.scope(|s| {
            for i in 0..8 {
                let totals = &totals;
                s.spawn(move || totals.lock().expect("totals")[i] += i as u64);
            }
        });
        assert_eq!(totals.into_inner().expect("totals"), (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn oversubscribed_pool_completes() {
        // More workers than tasks: the pool clamps to the task count.
        let pool = Pool::new(16);
        let out = pool.map_indices(3, |i| i * i);
        assert_eq!(out, vec![0, 1, 4]);
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn zero_workers_rejected() {
        let _ = Pool::new(0);
    }

    #[test]
    fn persistent_matches_legacy_results() {
        // Same task set, both scheduling modes: identical outputs.
        let items: Vec<u64> = (0..257).collect();
        let legacy = Pool::new(4).with_mode(PoolMode::Legacy);
        let persistent = Pool::new(4).with_mode(PoolMode::Persistent);
        let f = |i: usize, x: &u64| x.wrapping_mul(0x9E37) ^ i as u64;
        assert_eq!(legacy.map(&items, f), persistent.map(&items, f));
    }

    #[test]
    fn persistent_workers_survive_many_batches() {
        // The whole point of persistent mode: one spawn, many runs.
        let pool = Pool::new(4).with_mode(PoolMode::Persistent);
        for round in 0..100u64 {
            let out = pool.map_indices(8, |i| round * 8 + i as u64);
            assert_eq!(out, (round * 8..round * 8 + 8).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn persistent_clones_share_workers() {
        let pool = Pool::new(4).with_mode(PoolMode::Persistent);
        let warm = pool.map_indices(16, |i| i);
        assert_eq!(warm.len(), 16);
        let clone = pool.clone();
        assert!(Arc::ptr_eq(&pool.persistent, &clone.persistent));
        assert_eq!(clone.map_indices(4, |i| i * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn persistent_panic_propagates_payload() {
        let pool = Pool::new(4).with_mode(PoolMode::Persistent);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_indices(32, |i| {
                if i == 13 {
                    panic!("persistent task 13 failed");
                }
                i
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "persistent task 13 failed");
        // The pool stays usable after a panicked batch.
        assert_eq!(pool.map_indices(3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn persistent_scope_tasks_borrow_caller_state() {
        // The lifetime-erasure safety argument in practice: tasks
        // borrow the caller's stack and the latch joins them before
        // `scope` returns.
        let pool = Pool::new(4).with_mode(PoolMode::Persistent);
        let totals = Mutex::new(vec![0u64; 8]);
        pool.scope(|s| {
            for i in 0..8 {
                let totals = &totals;
                s.spawn(move || totals.lock().expect("totals")[i] += i as u64);
            }
        });
        assert_eq!(totals.into_inner().expect("totals"), (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn mode_env_parses() {
        assert_eq!(Pool::new(4).with_mode(PoolMode::Legacy).mode(), PoolMode::Legacy);
        assert_eq!(Pool::new(4).mode(), PoolMode::Persistent);
    }

    #[test]
    fn telemetry_accounts_for_every_task_persistent() {
        // Persistent mode counts every injector pop as "local"; the
        // per-worker family must still sum to the threaded share.
        let registry = MetricsRegistry::new();
        let pool = Pool::new(4).with_mode(PoolMode::Persistent).with_telemetry(&registry);
        let n = 64u64;
        let out = pool.map_indices(n as usize, |i| i as u64);
        assert_eq!(out.iter().sum::<u64>(), n * (n - 1) / 2);
        let snap = registry.snapshot();
        let local = snap.get_counter("pool.tasks_local").unwrap();
        let stolen = snap.get_counter("pool.tasks_stolen").unwrap();
        let inline = snap.get_counter("pool.tasks_inline").unwrap();
        assert_eq!(local + stolen + inline, n);
        match snap.get("pool.worker_tasks").unwrap() {
            btwc_telemetry::MetricValue::Values(per_worker) => {
                assert_eq!(per_worker.iter().sum::<u64>(), local + stolen);
            }
            other => panic!("unexpected metric value {other:?}"),
        }
    }

    #[test]
    fn telemetry_accounts_for_every_task() {
        // The local/stolen/inline split is scheduling-dependent, but the
        // total must equal the number of tasks executed, and the
        // per-worker family must sum to the threaded (non-inline) share.
        let registry = MetricsRegistry::new();
        let pool = Pool::new(4).with_mode(PoolMode::Legacy).with_telemetry(&registry);
        let n = 64u64;
        let out = pool.map_indices(n as usize, |i| i as u64);
        assert_eq!(out.iter().sum::<u64>(), n * (n - 1) / 2);
        let snap = registry.snapshot();
        let local = snap.get_counter("pool.tasks_local").unwrap();
        let stolen = snap.get_counter("pool.tasks_stolen").unwrap();
        let inline = snap.get_counter("pool.tasks_inline").unwrap();
        assert_eq!(local + stolen + inline, n);
        match snap.get("pool.worker_tasks").unwrap() {
            btwc_telemetry::MetricValue::Values(per_worker) => {
                assert_eq!(per_worker.iter().sum::<u64>(), local + stolen);
            }
            other => panic!("unexpected metric value {other:?}"),
        }
    }
}
