//! Per-worker task deques: LIFO for the owner, FIFO for thieves.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// A two-ended task queue owned by one worker.
///
/// The owner pushes and pops at the *back* (LIFO — the most recently
/// queued task is the one whose inputs are hottest in cache); thieves
/// take from the *front* (FIFO — the oldest task, farthest from the
/// owner's working set, and under block distribution the start of a
/// still-untouched run of work).
///
/// A `Mutex<VecDeque>` rather than a lock-free Chase–Lev deque: the
/// pool schedules coarse Monte Carlo shards (milliseconds to seconds of
/// work each), so queue operations are nowhere near the contention
/// regime that justifies atomics.
pub(crate) struct TaskDeque<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> TaskDeque<T> {
    /// A deque preloaded with the owner's initial block of tasks.
    pub(crate) fn preload(tasks: Vec<T>) -> Self {
        Self { queue: Mutex::new(VecDeque::from(tasks)) }
    }

    /// Owner pop: the most recently queued task (back).
    pub(crate) fn pop(&self) -> Option<T> {
        self.lock().pop_back()
    }

    /// Thief pop: the oldest queued task (front).
    pub(crate) fn steal(&self) -> Option<T> {
        self.lock().pop_front()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        // Tasks never panic while holding the queue lock (panics are
        // caught around task execution), but recover from poisoning
        // anyway: a queue of not-yet-run tasks is always consistent.
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let d = TaskDeque::preload(vec![1, 2, 3, 4]);
        assert_eq!(d.pop(), Some(4), "owner takes the newest");
        assert_eq!(d.steal(), Some(1), "thief takes the oldest");
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.steal(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
    }
}
