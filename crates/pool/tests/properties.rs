//! Pool property suite: parallel map equals serial map on arbitrary
//! inputs, results are independent of the worker count, and task panics
//! propagate to the caller.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use btwc_pool::Pool;
use proptest::prelude::*;

/// A deterministic but index-sensitive mixing function — any scheduling
/// bug that reorders or drops results scrambles it.
fn mix(i: usize, x: u64) -> u64 {
    let mut z = x ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

proptest! {
    #[test]
    fn parallel_map_equals_serial_map(
        items in proptest::collection::vec(any::<u64>(), 0..200),
        workers in 1usize..9,
    ) {
        let serial: Vec<u64> = items.iter().enumerate().map(|(i, &x)| mix(i, x)).collect();
        let pooled = Pool::new(workers).map(&items, |i, &x| mix(i, x));
        prop_assert_eq!(pooled, serial);
    }

    #[test]
    fn map_reduce_is_worker_count_independent(
        items in proptest::collection::vec(any::<u64>(), 1..100),
    ) {
        // Fold with a non-commutative merge (shift-and-xor): only an
        // exact in-shard-order reduction reproduces it for every
        // worker count.
        let reduce = |pool: &Pool| {
            pool.map_reduce(
                items.len(),
                |i| mix(i, items[i]),
                0u64,
                |acc, r| acc.rotate_left(7) ^ r,
            )
        };
        let one = reduce(&Pool::new(1));
        for workers in [2, 3, 8] {
            prop_assert_eq!(reduce(&Pool::new(workers)), one, "workers={}", workers);
        }
    }
}

#[test]
fn worker_panic_propagates_payload() {
    let pool = Pool::new(4);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            for i in 0..16 {
                s.spawn(move || {
                    if i == 11 {
                        panic!("shard {i} exploded");
                    }
                });
            }
        });
    }));
    let payload = result.expect_err("a task panic must propagate");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
        .expect("panic payload should be a message");
    assert_eq!(msg, "shard 11 exploded");
}

#[test]
fn worker_panic_propagates_from_map() {
    let pool = Pool::new(2);
    let items: Vec<u64> = (0..32).collect();
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.map(&items, |_, &x| {
            assert!(x != 20, "poisoned item");
            x
        })
    }));
    assert!(result.is_err(), "map must re-raise task panics");
}

#[test]
fn panic_aborts_remaining_tasks() {
    // After the first panic the pool abandons queued work — with one
    // worker and a poisoned first task, no later task may run.
    let ran_after = Mutex::new(0u32);
    let result = catch_unwind(AssertUnwindSafe(|| {
        Pool::new(1).scope(|s| {
            s.spawn(|| panic!("first task dies"));
            for _ in 0..8 {
                let ran_after = &ran_after;
                s.spawn(move || *ran_after.lock().expect("counter") += 1);
            }
        });
    }));
    assert!(result.is_err());
    assert_eq!(*ran_after.lock().expect("counter"), 0, "no task may run after a panic");
}

#[test]
fn stealing_covers_unbalanced_blocks() {
    // One task (the first) is vastly heavier than the rest; the
    // remaining tasks must still all complete (stolen by idle workers)
    // and land in their own slots.
    let pool = Pool::new(8);
    let out = pool.map_indices(64, |i| {
        if i == 0 {
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        i as u64
    });
    assert_eq!(out, (0..64).collect::<Vec<u64>>());
}
