//! `BTWC_WORKERS` override behaviour.
//!
//! Kept in its own integration-test binary: mutating the process
//! environment is only safe when no other test in the same process
//! reads it concurrently.

use btwc_pool::{Pool, WORKERS_ENV};

#[test]
fn env_var_overrides_requested_worker_count() {
    std::env::set_var(WORKERS_ENV, "1");
    assert_eq!(Pool::new(8).workers(), 1, "override wins over the request");
    assert_eq!(Pool::auto().workers(), 1, "override wins over auto-sizing");

    std::env::set_var(WORKERS_ENV, "0");
    assert_eq!(Pool::new(3).workers(), 3, "zero is ignored, not honoured");

    std::env::set_var(WORKERS_ENV, "not-a-number");
    assert_eq!(Pool::new(5).workers(), 5, "garbage is ignored");

    std::env::remove_var(WORKERS_ENV);
    assert_eq!(Pool::new(2).workers(), 2);

    // Results stay bit-identical whatever the override says — that is
    // the contract that makes the override safe to apply globally.
    let items: Vec<u64> = (0..50).collect();
    let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
    std::env::set_var(WORKERS_ENV, "1");
    assert_eq!(Pool::new(8).map(&items, |_, &x| x * x), expect);
    std::env::remove_var(WORKERS_ENV);
    assert_eq!(Pool::new(8).map(&items, |_, &x| x * x), expect);
}
