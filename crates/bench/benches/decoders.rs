//! Criterion micro-benchmarks of the decode kernels: the per-cycle cost
//! of the Clique decision, the MWPM matching, the synthesized SFQ
//! netlist, and the AFS compressors. These are the "decoder overheads"
//! the paper's Sec. 7.4 argues about, measured in software.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use btwc_afs::{Compressor, DynamicCompressor, SparseRepr};
use btwc_bench::baseline::{
    coverage_sweep_per_point, sample_noisy_rounds, sample_noisy_window, BoolVecHistory,
};
use btwc_bench::{sweep_throughput_axes, SWEEP_BENCH_WORKERS};
use btwc_clique::{CliqueDecoder, CliqueFrontend};
use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_mwpm::blossom::minimum_weight_perfect_matching;
use btwc_mwpm::MwpmDecoder;
use btwc_noise::{NoiseModel, PhenomenologicalNoise, SimRng};
use btwc_sfq::{synthesize_clique, NetlistState};
use btwc_sim::{coverage_sweep, logical_error_rate, DecoderKind, ShotConfig};
use btwc_sparse::SparseDecoder;
use btwc_syndrome::{DetectionEvent, PackedBits, RoundHistory, Syndrome};
use btwc_uf::UnionFindDecoder;

fn random_syndrome(rng: &mut SimRng, code: &SurfaceCode, p: f64) -> Syndrome {
    let noise = PhenomenologicalNoise::uniform(p);
    let mut errors = vec![false; code.num_data_qubits()];
    noise.sample_data_into(rng, &mut errors);
    Syndrome::from_bits(code.syndrome_of(StabilizerType::X, &errors))
}

/// The tentpole comparison: the packed word-parallel sticky-filter path
/// versus the seed's `Vec<bool>` byte-per-bit path, on identical round
/// streams (d = 11, p = 2e-3 raw rounds). The packed side also runs the
/// full Clique frontend (filter + decision) to show the end-to-end
/// per-cycle cost.
fn bench_sticky_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("sticky_filter");
    let d = 11u16;
    let code = SurfaceCode::new(d);
    let n_anc = code.num_ancillas(StabilizerType::X);
    let rounds_bool = sample_noisy_rounds(&code, 512, 2e-3, 7);
    let rounds_packed: Vec<PackedBits> =
        rounds_bool.iter().map(|r| PackedBits::from_bools(r)).collect();

    group.bench_function("boolvec_baseline", |b| {
        let mut h = BoolVecHistory::new(n_anc, 2);
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % rounds_bool.len();
            h.push(&rounds_bool[i]);
            black_box(h.sticky(2))
        });
    });
    group.bench_function("packed", |b| {
        let mut h = RoundHistory::new(n_anc, 2);
        let mut out = Syndrome::new(n_anc);
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % rounds_packed.len();
            h.push_packed(&rounds_packed[i]);
            h.sticky_into(2, &mut out);
            black_box(out.weight())
        });
    });
    group.bench_function("packed_full_frontend", |b| {
        let mut fe = CliqueFrontend::new(&code, StabilizerType::X);
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % rounds_packed.len();
            black_box(fe.push_round_packed(&rounds_packed[i]))
        });
    });
    group.finish();
}

/// The d = 11 LER shot loop (paper Fig. 14's workload at its largest
/// distance) — the acceptance kernel for the packed rewrite.
fn bench_ler_shots_d11(c: &mut Criterion) {
    let mut group = c.benchmark_group("ler_shots_d11");
    group.sample_size(10);
    for kind in [DecoderKind::MwpmOnly, DecoderKind::CliquePlusMwpm] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let cfg = ShotConfig::new(11, 2e-3).with_shots(20).with_seed(seed);
                    black_box(logical_error_rate(&cfg, kind))
                });
            },
        );
    }
    group.finish();
}

fn bench_clique_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("clique_decode");
    for d in [3u16, 9, 15, 21] {
        let code = SurfaceCode::new(d);
        let decoder = CliqueDecoder::new(&code, StabilizerType::X);
        let mut rng = SimRng::from_seed(1);
        let syndromes: Vec<Syndrome> =
            (0..256).map(|_| random_syndrome(&mut rng, &code, 2e-3)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % syndromes.len();
                black_box(decoder.decode(&syndromes[i]))
            });
        });
    }
    group.finish();
}

fn bench_mwpm_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("mwpm_decode_window");
    group.sample_size(20);
    for d in [5u16, 9, 13] {
        let code = SurfaceCode::new(d);
        let decoder = MwpmDecoder::new(&code, StabilizerType::X);
        let noise = PhenomenologicalNoise::uniform(5e-3);
        let mut rng = SimRng::from_seed(2);
        let n_anc = code.num_ancillas(StabilizerType::X);
        // Build a d-round noisy window.
        let mut window = RoundHistory::new(n_anc, usize::from(d) + 1);
        let mut errors = vec![false; code.num_data_qubits()];
        let mut meas = vec![false; n_anc];
        for _ in 0..usize::from(d) {
            noise.sample_data_into(&mut rng, &mut errors);
            noise.sample_measurement_into(&mut rng, &mut meas);
            let mut round = code.syndrome_of(StabilizerType::X, &errors);
            for (r, &m) in round.iter_mut().zip(&meas) {
                *r ^= m;
            }
            window.push(&round);
        }
        window.push(&code.syndrome_of(StabilizerType::X, &errors));
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| black_box(decoder.decode_window(&window)));
        });
    }
    group.finish();
}

/// The off-chip scaling comparison: dense all-pairs blossom versus
/// sparse region-collision matching on identical noisy windows at the
/// paper's operational error rate. The dense side pays O(n³) in the
/// event count per decode; the sparse side merges colliding regions and
/// matches only inside the resulting clusters, so it wins from d = 13
/// up (the acceptance bar).
fn bench_sparse_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_vs_dense");
    group.sample_size(20);
    for d in [5u16, 9, 13, 17, 21] {
        let code = SurfaceCode::new(d);
        let ty = StabilizerType::X;
        let dense = MwpmDecoder::new(&code, ty);
        let sparse = SparseDecoder::new(&code, ty);
        let mut rng = SimRng::from_seed(8);
        let windows: Vec<RoundHistory> = (0..16)
            .map(|_| sample_noisy_window(&code, ty, 1e-3, usize::from(d), &mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::new("dense", d), &d, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % windows.len();
                black_box(dense.decode_window(&windows[i]))
            });
        });
        group.bench_with_input(BenchmarkId::new("sparse", d), &d, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % windows.len();
                black_box(sparse.decode_window(&windows[i]))
            });
        });
    }
    group.finish();
}

/// The chained-cluster regime: operational-rate windows (p = 5e-3) at
/// d ∈ {17, 21}, where a window's events routinely merge into a few
/// large clusters. This is exactly where the pre-in-solver sparse path
/// lost: its ≥ 3-event clusters fell back to a dense blossom whose
/// tables scale with the cluster, so one chained cluster dragged the
/// decode back to dense cost. The in-solver sparse blossom matches the
/// same clusters on their collision edges alone.
fn bench_chained_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("chained_cluster");
    group.sample_size(10);
    for d in [17u16, 21] {
        let code = SurfaceCode::new(d);
        let ty = StabilizerType::X;
        let dense = MwpmDecoder::new(&code, ty);
        let sparse = SparseDecoder::new(&code, ty);
        let mut rng = SimRng::from_seed(0xC4A1);
        let windows: Vec<RoundHistory> = (0..16)
            .map(|_| sample_noisy_window(&code, ty, 5e-3, usize::from(d), &mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::new("dense", d), &d, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % windows.len();
                black_box(dense.decode_window(&windows[i]))
            });
        });
        group.bench_with_input(BenchmarkId::new("sparse", d), &d, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % windows.len();
                black_box(sparse.decode_window(&windows[i]))
            });
        });
    }
    group.finish();
}

/// The streaming comparison: the incremental sliding-window sparse
/// decode (persistent regions, collision edges, and memoized cluster
/// matchings across slides) versus a from-scratch sparse decode of
/// every window position, on one continuous p = 5e-3 trace (a 6d-round
/// window sliding `slide` rounds per decode — matching the
/// `streaming_benches` operating point of the bench bin). Slide-by-1
/// is the streaming regime; slide-by-d forces deep slide compaction.
/// Each arm pre-fills and decodes the window once so the measurement
/// starts from the steady state.
fn bench_streaming_decode(c: &mut Criterion) {
    use btwc_bench::baseline::sample_streaming_trace;

    let mut group = c.benchmark_group("streaming_decode");
    group.sample_size(10);
    let ty = StabilizerType::X;
    for d in [13u16, 17, 21] {
        let code = SurfaceCode::new(d);
        let n_anc = code.num_ancillas(ty);
        let w = 6 * usize::from(d);
        let trace = sample_streaming_trace(&code, 512, 5e-3, 4, 0x57E4 + u64::from(d));
        let packed: Vec<PackedBits> = trace.iter().map(|r| PackedBits::from_bools(r)).collect();
        for slide in [1usize, usize::from(d)] {
            group.bench_with_input(
                BenchmarkId::new(format!("incremental_slide{slide}"), d),
                &d,
                |b, _| {
                    let mut dec = SparseDecoder::new(&code, ty);
                    let mut window = RoundHistory::new(n_anc, w);
                    let mut i = 0;
                    for _ in 0..w {
                        window.push_packed(&packed[i]);
                        i = (i + 1) % packed.len();
                    }
                    black_box(dec.decode_stream_weighted(&window).1);
                    b.iter(|| {
                        for _ in 0..slide {
                            window.push_packed(&packed[i]);
                            i = (i + 1) % packed.len();
                        }
                        black_box(dec.decode_stream_weighted(&window).1)
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("fromscratch_slide{slide}"), d),
                &d,
                |b, _| {
                    let mut dec = SparseDecoder::new(&code, ty);
                    let mut window = RoundHistory::new(n_anc, w);
                    let mut i = 0;
                    for _ in 0..w {
                        window.push_packed(&packed[i]);
                        i = (i + 1) % packed.len();
                    }
                    black_box(dec.decode_window_weighted(&window).1);
                    b.iter(|| {
                        for _ in 0..slide {
                            window.push_packed(&packed[i]);
                            i = (i + 1) % packed.len();
                        }
                        black_box(dec.decode_window_weighted(&window).1)
                    });
                },
            );
        }
    }
    group.finish();
}

/// The sweep *schedule* comparison: one mixed-distance `(p, d)` grid at
/// a fixed per-point cycle budget, run under the pre-pool per-point
/// scoped-thread schedule (a barrier plus `SWEEP_BENCH_WORKERS` thread
/// spawns and pipeline constructions at every point) versus the
/// whole-grid work-stealing pool (every `(point, shard)` task submitted
/// at once). The same per-point cycle budget on both sides — the
/// measured delta is pure scheduling.
fn bench_sweep_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_throughput");
    group.sample_size(10);
    let (rates, distances) = sweep_throughput_axes();
    let cycles = 2_000u64;
    // Resolve the effective count once: a `BTWC_WORKERS` override would
    // otherwise apply to the pool arm only (the scoped baseline spawns
    // raw threads), skewing the comparison.
    let workers = btwc_pool::Pool::new(SWEEP_BENCH_WORKERS).workers();
    group.bench_function("scoped_per_point", |b| {
        b.iter(|| black_box(coverage_sweep_per_point(&rates, &distances, cycles, 11, workers)));
    });
    group.bench_function("pooled_whole_grid", |b| {
        b.iter(|| black_box(coverage_sweep(&rates, &distances, cycles, 11, workers)));
    });
    group.finish();
}

/// The machine-tier comparison: one batched [`BtwcMachine::step`]
/// (word-parallel sticky filtering across all qubits, transport-framed
/// escalations) versus the per-qubit reference loop
/// (`BtwcDecoder::process_round_packed` per qubit plus a hand-stepped
/// queue) on identical pre-generated streams. The batched side is
/// pinned bit-identical to the loop (`machine_equivalence.rs`), so the
/// measured delta is pure reorganization.
fn bench_machine_step(c: &mut Criterion) {
    use btwc_bandwidth::QueueSim;
    use btwc_bench::machine_step_workload;
    use btwc_core::{BtwcDecoder, BtwcMachine};

    let mut group = c.benchmark_group("machine_step");
    let d = 9u16;
    for qubits in [64usize, 256] {
        let (code, batches, rounds) = machine_step_workload(d, qubits, 512, 1e-3, 0xBA7C);
        group.bench_with_input(BenchmarkId::new("per_qubit_loop", qubits), &qubits, |b, _| {
            let mut decoders: Vec<BtwcDecoder> = (0..qubits)
                .map(|_| BtwcDecoder::builder(&code, StabilizerType::X).build())
                .collect();
            let mut queue = QueueSim::new(qubits);
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % rounds.len();
                let mut offchip = 0usize;
                for (dec, round) in decoders.iter_mut().zip(&rounds[i]) {
                    offchip += usize::from(dec.process_round_packed(round).went_offchip());
                }
                black_box(queue.step(offchip))
            });
        });
        group.bench_with_input(BenchmarkId::new("batched", qubits), &qubits, |b, _| {
            let mut machine =
                BtwcMachine::builder(&code, StabilizerType::X, qubits, qubits).build();
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % batches.len();
                black_box(machine.step(&batches[i]).offchip_requests)
            });
        });
    }
    group.finish();
}

fn bench_blossom_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("blossom_matching");
    group.sample_size(20);
    for n in [8usize, 16, 32, 64] {
        let mut rng = SimRng::from_seed(3);
        let w: Vec<Vec<i64>> =
            (0..n).map(|_| (0..n).map(|_| (rng.next_u64() % 50) as i64).collect()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(minimum_weight_perfect_matching(n, |u, v| Some(w[u.min(v)][u.max(v)])))
            });
        });
    }
    group.finish();
}

fn bench_mwpm_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("mwpm_decode_events");
    group.sample_size(30);
    let code = SurfaceCode::new(11);
    let decoder = MwpmDecoder::new(&code, StabilizerType::X);
    let n_anc = code.num_ancillas(StabilizerType::X);
    for events in [4usize, 12, 24, 48] {
        let mut rng = SimRng::from_seed(4);
        let evs: Vec<DetectionEvent> = (0..events)
            .map(|_| DetectionEvent { ancilla: rng.below(n_anc), round: rng.below(11) })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(events), &events, |b, _| {
            b.iter(|| black_box(decoder.decode_events(&evs)));
        });
    }
    group.finish();
}

fn bench_uf_decode(c: &mut Criterion) {
    // The hierarchical-tier ablation kernel: union-find on the same
    // windows the MWPM bench decodes.
    let mut group = c.benchmark_group("uf_decode_window");
    group.sample_size(20);
    for d in [5u16, 9, 13] {
        let code = SurfaceCode::new(d);
        let decoder = UnionFindDecoder::new(&code, StabilizerType::X);
        let noise = PhenomenologicalNoise::uniform(5e-3);
        let mut rng = SimRng::from_seed(2);
        let n_anc = code.num_ancillas(StabilizerType::X);
        let mut window = RoundHistory::new(n_anc, usize::from(d) + 1);
        let mut errors = vec![false; code.num_data_qubits()];
        let mut meas = vec![false; n_anc];
        for _ in 0..usize::from(d) {
            noise.sample_data_into(&mut rng, &mut errors);
            noise.sample_measurement_into(&mut rng, &mut meas);
            let mut round = code.syndrome_of(StabilizerType::X, &errors);
            for (r, &m) in round.iter_mut().zip(&meas) {
                *r ^= m;
            }
            window.push(&round);
        }
        window.push(&code.syndrome_of(StabilizerType::X, &errors));
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| black_box(decoder.decode_window(&window)));
        });
    }
    group.finish();
}

fn bench_sfq_netlist_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("sfq_netlist_cycle");
    for d in [3u16, 9, 15] {
        let code = SurfaceCode::new(d);
        let synth = synthesize_clique(&code, StabilizerType::X, 2);
        let nl = synth.netlist().clone();
        let mut rng = SimRng::from_seed(5);
        let inputs: Vec<bool> = (0..synth.num_ancillas()).map(|_| rng.bernoulli(0.05)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter_batched(
                || NetlistState::new(&nl),
                |mut st| black_box(st.step(&nl, &inputs)),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_afs_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("afs_compression");
    let code = SurfaceCode::new(15);
    let n = code.num_ancillas(StabilizerType::X);
    let sparse = SparseRepr::new(n);
    let dynamic = DynamicCompressor::new(n);
    let mut rng = SimRng::from_seed(6);
    let syndromes: Vec<Syndrome> =
        (0..256).map(|_| random_syndrome(&mut rng, &code, 2e-3)).collect();
    group.bench_function("sparse_repr", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % syndromes.len();
            black_box(sparse.encode(&syndromes[i]))
        });
    });
    group.bench_function("dynamic", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % syndromes.len();
            black_box(dynamic.encode(&syndromes[i]))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sticky_filter,
    bench_ler_shots_d11,
    bench_clique_decode,
    bench_mwpm_decode,
    bench_sparse_vs_dense,
    bench_chained_cluster,
    bench_streaming_decode,
    bench_sweep_throughput,
    bench_machine_step,
    bench_blossom_scaling,
    bench_mwpm_events,
    bench_uf_decode,
    bench_sfq_netlist_cycle,
    bench_afs_compression
);
criterion_main!(benches);
