//! Criterion benches covering each paper artifact's regeneration
//! kernel — one group per table/figure, sized to finish quickly while
//! exercising exactly the code paths the `fig*` binaries run at scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use btwc_bandwidth::{sweep_tradeoff, ArrivalModel, QueueSim};
use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_noise::SimRng;
use btwc_sfq::{cell_library, synthesize_clique, CellKind, CostModel};
use btwc_sim::{
    afs_comparison, logical_error_rate, DecoderKind, LifetimeConfig, LifetimeSim, ShotConfig,
};

/// Table 1 — cell library lookups (trivially fast; included so every
/// paper artifact has a bench target).
fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_cell_library", |b| {
        b.iter(|| {
            for kind in CellKind::all() {
                black_box(cell_library(kind));
            }
        });
    });
}

/// Fig. 4 / Fig. 11 / Fig. 12 — the lifetime-simulation kernel.
fn bench_fig04_11_12_lifetime(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig04_11_12_lifetime_cycles");
    group.sample_size(10);
    for (p, d) in [(1e-3, 7u16), (5e-3, 13u16)] {
        let id = format!("p{p:.0e}_d{d}");
        group.bench_with_input(BenchmarkId::from_parameter(id), &(p, d), |b, &(p, d)| {
            b.iter(|| {
                let cfg = LifetimeConfig::new(d, p).with_cycles(2_000).with_seed(1);
                black_box(LifetimeSim::new(&cfg).run())
            });
        });
    }
    group.finish();
}

/// Fig. 13 — the AFS-vs-Clique reduction computation.
fn bench_fig13_afs(c: &mut Criterion) {
    let cfg = LifetimeConfig::new(9, 1e-3).with_cycles(20_000).with_seed(2);
    let stats = LifetimeSim::new(&cfg).run();
    c.bench_function("fig13_afs_comparison", |b| {
        b.iter(|| black_box(afs_comparison(9, 1e-3, &stats)));
    });
}

/// Fig. 14 — the shot-decoding kernel, both pipelines.
fn bench_fig14_shots(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_shots");
    group.sample_size(10);
    for kind in [DecoderKind::MwpmOnly, DecoderKind::CliquePlusMwpm] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let cfg = ShotConfig::new(5, 6e-3).with_shots(200).with_seed(3);
                    black_box(logical_error_rate(&cfg, kind))
                });
            },
        );
    }
    group.finish();
}

/// Fig. 15 — synthesis + costing.
fn bench_fig15_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_synthesis");
    group.sample_size(10);
    for d in [5u16, 11] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| {
                let synth = synthesize_clique(&SurfaceCode::new(d), StabilizerType::X, 2);
                black_box(CostModel::default().report(synth.netlist()))
            });
        });
    }
    group.finish();
}

/// Fig. 9 — the stall-queue kernel.
fn bench_fig09_queue(c: &mut Criterion) {
    let model = ArrivalModel::bernoulli(1000, 0.05);
    c.bench_function("fig09_queue_10k_cycles", |b| {
        b.iter(|| {
            let mut rng = SimRng::from_seed(4);
            let mut sim = QueueSim::new(66);
            black_box(sim.run(&model, &mut rng, 10_000))
        });
    });
}

/// Fig. 16 — the percentile-sweep kernel.
fn bench_fig16_sweep(c: &mut Criterion) {
    let model = ArrivalModel::bernoulli(1000, 0.03);
    c.bench_function("fig16_tradeoff_sweep", |b| {
        b.iter(|| {
            let mut rng = SimRng::from_seed(5);
            black_box(sweep_tradeoff(&model, &mut rng, &[0.9, 0.99], 5_000))
        });
    });
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig04_11_12_lifetime,
    bench_fig13_afs,
    bench_fig14_shots,
    bench_fig15_synthesis,
    bench_fig09_queue,
    bench_fig16_sweep
);
criterion_main!(benches);
