//! Reference implementations kept as comparison baselines: the seed's
//! `Vec<bool>` byte-per-bit syndrome path (for the packed-bitset
//! benchmarks) and the pre-pool per-point scoped-thread sweep schedule
//! (for the `sweep_throughput` benchmarks) — both used by
//! `benches/decoders.rs`, the `bench` binary, and equivalence tests.

use std::collections::VecDeque;

use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_noise::{NoiseModel, PhenomenologicalNoise, SimRng};
use btwc_sim::{CoveragePoint, LifetimeConfig, LifetimeSim, LifetimeStats};
use btwc_syndrome::RoundHistory;

/// The pre-pool sweep schedule, kept verbatim as the `sweep_throughput`
/// baseline: every grid point runs its own `std::thread::scope`, the
/// point's cycles split evenly across `workers` threads (each paying
/// thread spawn plus its own full pipeline construction), with a
/// barrier at every point boundary — cheap d = 3 points hold the grid
/// loop hostage to nothing, expensive d ≥ 13 points get no help from
/// cores that already finished other points. Also reproduces the old
/// schedule's cross-point seed reuse (every point the same root seed).
#[must_use]
pub fn coverage_sweep_per_point(
    error_rates: &[f64],
    distances: &[u16],
    cycles: u64,
    seed: u64,
    workers: usize,
) -> Vec<CoveragePoint> {
    assert!(workers > 0, "need at least one worker");
    let mut out = Vec::with_capacity(error_rates.len() * distances.len());
    for &p in error_rates {
        for &d in distances {
            let cfg = LifetimeConfig::new(d, p).with_cycles(cycles).with_seed(seed);
            let per = cfg.cycles / workers as u64;
            let extra = cfg.cycles % workers as u64;
            let root = SimRng::from_seed(cfg.seed);
            let mut merged: Option<LifetimeStats> = None;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let mut wcfg = cfg;
                        wcfg.cycles = per + u64::from((w as u64) < extra);
                        wcfg.seed = root.fork(w as u64).seed();
                        scope.spawn(move || LifetimeSim::new(&wcfg).run())
                    })
                    .collect();
                for h in handles {
                    let stats = h.join().expect("worker panicked");
                    match &mut merged {
                        None => merged = Some(stats),
                        Some(m) => m.merge(&stats),
                    }
                }
            });
            let stats = merged.expect("at least one worker ran");
            out.push(CoveragePoint {
                distance: d,
                physical_error_rate: p,
                coverage: stats.coverage(),
                nonzero_onchip: stats.nonzero_onchip_fraction(),
                offchip_fraction: stats.offchip_fraction(),
            });
        }
    }
    out
}

/// A deterministic stream of raw syndrome rounds (accumulating data
/// errors plus per-round transient measurement flips) — the shared
/// workload of the sticky-filter benchmarks, so the Criterion bench
/// and the `bench` binary measure the identical round stream.
#[must_use]
pub fn sample_noisy_rounds(code: &SurfaceCode, count: usize, p: f64, seed: u64) -> Vec<Vec<bool>> {
    let n_anc = code.num_ancillas(StabilizerType::X);
    let noise = PhenomenologicalNoise::uniform(p);
    let mut rng = SimRng::from_seed(seed);
    let mut errors = vec![false; code.num_data_qubits()];
    let mut meas = vec![false; n_anc];
    (0..count)
        .map(|_| {
            noise.sample_data_into(&mut rng, &mut errors);
            noise.sample_measurement_into(&mut rng, &mut meas);
            let mut round = code.syndrome_of(StabilizerType::X, &errors);
            for (r, &m) in round.iter_mut().zip(&meas) {
                *r ^= m;
            }
            round
        })
        .collect()
}

/// A steady-state streaming trace of raw syndrome rounds: accumulating
/// data errors with per-round transient measurement flips, with the
/// error state cleared every `segment` rounds — the effect of a
/// correction landing, which is what keeps a deployed stream's
/// syndrome sparse. (Without the clearing, errors random-walk to
/// saturation and every late round is half-lit — a regime no
/// functioning decoder ever sees.) The workload of the
/// `streaming_decode` benchmarks.
///
/// # Panics
///
/// Panics if `segment == 0`.
#[must_use]
pub fn sample_streaming_trace(
    code: &SurfaceCode,
    count: usize,
    p: f64,
    segment: usize,
    seed: u64,
) -> Vec<Vec<bool>> {
    assert!(segment > 0, "segment must be positive");
    let n_anc = code.num_ancillas(StabilizerType::X);
    let noise = PhenomenologicalNoise::uniform(p);
    let mut rng = SimRng::from_seed(seed);
    let mut errors = vec![false; code.num_data_qubits()];
    let mut meas = vec![false; n_anc];
    (0..count)
        .map(|t| {
            if t % segment == 0 {
                errors.fill(false);
            }
            noise.sample_data_into(&mut rng, &mut errors);
            noise.sample_measurement_into(&mut rng, &mut meas);
            let mut round = code.syndrome_of(StabilizerType::X, &errors);
            for (r, &m) in round.iter_mut().zip(&meas) {
                *r ^= m;
            }
            round
        })
        .collect()
}

/// One shot-protocol decode window: `rounds` rounds of accumulating
/// data errors with independent transient measurement flips, closed by
/// a perfect readout round — the workload of the `sparse_vs_dense` and
/// `chained_cluster` decode benchmarks. Delegates to the shared
/// [`btwc_testutil`] generator, so the benchmarks measure the *same*
/// window distribution the differential fuzz suites verify exactness
/// on.
#[must_use]
pub fn sample_noisy_window(
    code: &SurfaceCode,
    ty: StabilizerType,
    p: f64,
    rounds: usize,
    rng: &mut SimRng,
) -> RoundHistory {
    btwc_testutil::noisy_window(code, ty, p, rounds, rng).0
}

/// The pre-packing round window: one heap-allocated `Vec<bool>` per
/// round, bit-at-a-time sticky filtering — byte loads, no word
/// parallelism, one allocation per pushed round.
#[derive(Debug, Clone)]
pub struct BoolVecHistory {
    num_ancillas: usize,
    capacity: usize,
    rounds: VecDeque<Vec<bool>>,
}

impl BoolVecHistory {
    /// A window over `num_ancillas` ancillas retaining `capacity` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(num_ancillas: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "round history needs capacity >= 1");
        Self { num_ancillas, capacity, rounds: VecDeque::with_capacity(capacity + 1) }
    }

    /// Appends a round (allocating, as the seed did).
    ///
    /// # Panics
    ///
    /// Panics if the width mismatches.
    pub fn push(&mut self, round: &[bool]) {
        assert_eq!(round.len(), self.num_ancillas, "round width mismatch");
        self.rounds.push_back(round.to_vec());
        if self.rounds.len() > self.capacity {
            self.rounds.pop_front();
        }
    }

    /// Bit-at-a-time `k`-round sticky filter (the seed's inner loop).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > capacity`.
    #[must_use]
    pub fn sticky(&self, k: usize) -> Vec<bool> {
        assert!(k >= 1 && k <= self.capacity, "sticky window {k} out of range");
        let mut out = vec![false; self.num_ancillas];
        if self.rounds.len() < k {
            return out;
        }
        let start = self.rounds.len() - k;
        for (i, o) in out.iter_mut().enumerate() {
            *o = (start..self.rounds.len()).all(|r| self.rounds[r][i]);
        }
        out
    }

    /// Forgets all retained rounds.
    pub fn reset(&mut self) {
        self.rounds.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btwc_syndrome::RoundHistory;

    #[test]
    fn baseline_agrees_with_packed_history() {
        // The baseline is only a fair comparison if it computes the
        // same function as the packed implementation.
        let (n, cap) = (70usize, 4usize);
        let mut baseline = BoolVecHistory::new(n, cap);
        let mut packed = RoundHistory::new(n, cap);
        let mut state = 0xD1CEu64;
        for _ in 0..16 {
            let round: Vec<bool> = (0..n)
                .map(|_| {
                    state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    (state >> 33) & 1 == 1
                })
                .collect();
            baseline.push(&round);
            packed.push(&round);
            for k in 1..=cap {
                assert_eq!(baseline.sticky(k), packed.sticky(k).to_bools(), "k={k}");
            }
        }
    }
}
