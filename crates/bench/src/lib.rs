//! Shared scaffolding for the figure-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation (Sec. 7) has a
//! binary in `src/bin/` that regenerates its rows/series:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — ERSFQ cell library |
//! | `fig04` | Fig. 4 — syndrome distribution across (p, LER, d) scenarios |
//! | `fig09` | Fig. 9 — per-cycle off-chip decodes, 50th vs 99th pct provisioning |
//! | `fig11` | Fig. 11 — Clique on-chip coverage vs code distance |
//! | `fig12` | Fig. 12 — non-all-zeros fraction of on-chip decodes |
//! | `fig13` | Fig. 13 — off-chip data reduction: Clique vs AFS |
//! | `fig14` | Fig. 14 — logical error rate: baseline vs Clique+baseline |
//! | `fig15` | Fig. 15 — Clique SFQ power/area/latency (+ NISQ+ anchors) |
//! | `fig16` | Fig. 16 — bandwidth reduction vs execution-time increase |
//!
//! All binaries accept the `BTWC_SCALE` environment variable (a float,
//! default 1.0) to scale Monte Carlo budgets up or down, and print
//! machine-readable Markdown tables.

pub mod baseline;

use btwc_syndrome::{PackedBits, SyndromeBatch};

/// Scales a default Monte Carlo budget by the `BTWC_SCALE` environment
/// variable (min 0.01, so `BTWC_SCALE=0.05` gives quick smoke runs).
#[must_use]
pub fn scaled(default: u64) -> u64 {
    let scale = std::env::var("BTWC_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .max(0.01);
    ((default as f64 * scale) as u64).max(100)
}

/// Number of worker threads for parallel sweeps: the pool's auto
/// sizing, i.e. `BTWC_WORKERS` if set, else the available parallelism
/// (capped at 16).
#[must_use]
pub fn workers() -> usize {
    btwc_pool::Pool::auto().workers()
}

/// The `sweep_throughput` comparison grid: a mixed-distance `(p, d)`
/// sweep where cheap d = 3 points sit next to expensive d = 13 ones —
/// the workload whose per-point barriers the whole-grid pool schedule
/// removes. Low error rates keep the off-chip matcher out of the
/// measurement, so the timed quantity is the *schedule* (spawns,
/// per-worker pipeline constructions, barriers), not decoder work.
/// Returns `(error_rates, distances)`.
#[must_use]
pub fn sweep_throughput_axes() -> (Vec<f64>, Vec<u16>) {
    (vec![2.5e-5, 5e-5, 1e-4, 2e-4], vec![3, 7, 13])
}

/// Worker count for the `sweep_throughput` schedule comparison: fixed
/// (not machine-sized) so both schedules are compared at the same
/// operational width — the widest pool the determinism tests pin.
pub const SWEEP_BENCH_WORKERS: usize = 8;

/// The `machine_step` comparison workload: `cycles` machine-wide
/// rounds for `qubits` logical qubits at distance `d`, under transient
/// (measurement-style) noise — each ancilla lit independently with
/// probability `p` per cycle. Transient noise keeps the stream in the
/// filter-dominated regime the machine tier optimizes (most qubits
/// quiet, occasional sticky leaks escalating off-chip), so the timed
/// quantity is the per-cycle *filter* machinery, not decoder work.
///
/// Returns the code, the pre-transposed per-cycle [`SyndromeBatch`]es
/// (the batched machine's input), and the identical rounds pre-split
/// per qubit (the per-qubit reference loop's input) — ingestion is off
/// the clock for both sides.
#[must_use]
pub fn machine_step_workload(
    d: u16,
    qubits: usize,
    cycles: usize,
    p: f64,
    seed: u64,
) -> (btwc_lattice::SurfaceCode, Vec<SyndromeBatch>, Vec<Vec<PackedBits>>) {
    let code = btwc_lattice::SurfaceCode::new(d);
    let n_anc = code.num_ancillas(btwc_lattice::StabilizerType::X);
    let mut rng = btwc_noise::SimRng::from_seed(seed);
    let mut batches = Vec::with_capacity(cycles);
    let mut rounds = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        let mut batch = SyndromeBatch::new(qubits, n_anc);
        let mut per_qubit = Vec::with_capacity(qubits);
        for q in 0..qubits {
            let bits: Vec<bool> = (0..n_anc).map(|_| rng.bernoulli(p)).collect();
            batch.set_qubit_round_bools(q, &bits);
            per_qubit.push(PackedBits::from_bools(&bits));
        }
        batches.push(batch);
        rounds.push(per_qubit);
    }
    (code, batches, rounds)
}

/// The paper's Fig. 4 scenarios: `(physical error rate, target logical
/// error rate label, code distance)`.
#[must_use]
pub fn fig4_scenarios() -> Vec<(f64, &'static str, u16)> {
    vec![
        (5e-3, "1E-5", 25),
        (5e-3, "1E-12", 81),
        (1e-3, "1E-5", 7),
        (1e-3, "1E-12", 21),
        (5e-4, "1E-5", 5),
        (5e-4, "1E-12", 15),
    ]
}

/// The Fig. 11/12/13 sweep axes: error rates and code distances.
#[must_use]
pub fn coverage_axes() -> (Vec<f64>, Vec<u16>) {
    (vec![1e-2, 5e-3, 1e-3, 5e-4, 1e-4], vec![3, 5, 7, 9, 11, 13, 15, 17, 19, 21])
}

/// The Fig. 16 scenarios: `(physical error rate, code distance)`.
#[must_use]
pub fn fig16_scenarios() -> Vec<(f64, u16)> {
    vec![(5e-3, 13), (1e-3, 11), (1e-2, 13)]
}

/// Prints a Markdown table: a header row then aligned data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let head: Vec<String> = headers.iter().zip(&widths).map(|(h, w)| format!("{h:>w$}")).collect();
    println!("| {} |", head.join(" | "));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("| {} |", sep.join(" | "));
    for row in rows {
        let cells: Vec<String> = row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
        println!("| {} |", cells.join(" | "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_respects_minimum() {
        // Without the env var the default passes through.
        std::env::remove_var("BTWC_SCALE");
        assert_eq!(scaled(10_000), 10_000);
    }

    #[test]
    fn scenario_tables_are_populated() {
        assert_eq!(fig4_scenarios().len(), 6);
        let (ps, ds) = coverage_axes();
        assert!(ps.len() >= 4 && ds.len() >= 8);
        assert_eq!(fig16_scenarios().len(), 3);
    }

    #[test]
    fn workers_is_positive() {
        assert!(workers() >= 1);
    }
}
