//! Table 1: the ERSFQ cell library used for decoder synthesis.

use btwc_bench::print_table;
use btwc_sfq::{cell_library, CellKind};

fn main() {
    println!("# Table 1 — ERSFQ cell library\n");
    let rows: Vec<Vec<String>> = CellKind::all()
        .into_iter()
        .map(|kind| {
            let spec = cell_library(kind);
            vec![
                format!("{kind:?}"),
                format!("{:.1}", spec.delay_ps),
                format!("{:.0}", spec.area_um2),
                format!("{}", spec.jj_count),
            ]
        })
        .collect();
    print_table(&["Cell", "Delay (ps)", "Area (um2)", "JJ Count"], &rows);
}
