//! Fig. 11: fraction of decodes handled on-chip by Clique, versus code
//! distance, for several physical error rates.

use btwc_bench::{coverage_axes, print_table, scaled, workers};
use btwc_sim::coverage_sweep_iid;

fn main() {
    println!("# Fig. 11 — Clique on-chip coverage (%)\n");
    let (ps, ds) = coverage_axes();
    let trials = scaled(1_000_000);
    let points = coverage_sweep_iid(&ps, &ds, trials, 0xF1611, workers());
    let mut headers = vec!["d".to_owned()];
    headers.extend(ps.iter().map(|p| format!("p={p:.0e}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = ds
        .iter()
        .map(|&d| {
            let mut row = vec![d.to_string()];
            for &p in &ps {
                let pt = points
                    .iter()
                    .find(|pt| pt.distance == d && pt.physical_error_rate == p)
                    .expect("sweep covers the grid");
                row.push(format!("{:.2}", pt.coverage * 100.0));
            }
            row
        })
        .collect();
    print_table(&header_refs, &rows);
    println!("\n({trials} iid trials per point; paper methodology — see EXPERIMENTS.md)");
}
