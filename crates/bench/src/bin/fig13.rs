//! Fig. 13: average off-chip data reduction — Clique versus AFS sparse
//! syndrome compression — as a function of code distance (log scale in
//! the paper; we print the raw factors).

use btwc_bench::{print_table, scaled, workers};
use btwc_sim::{afs_comparison, LifetimeConfig, LifetimeSim};

fn main() {
    println!("# Fig. 13 — average off-chip data reduction (x)\n");
    let ps = [5e-3, 1e-3, 5e-4];
    let ds: [u16; 7] = [3, 5, 7, 9, 11, 15, 21];
    let cycles = scaled(150_000);
    let mut rows = Vec::new();
    for &d in &ds {
        let mut row = vec![d.to_string()];
        for &p in &ps {
            let cfg = LifetimeConfig::new(d, p).with_cycles(cycles).with_seed(0xF1613);
            let stats = LifetimeSim::run_parallel(&cfg, workers());
            let cmp = afs_comparison(d, p, &stats);
            row.push(format!("{:.1}", cmp.afs_reduction));
            let clique = if cmp.clique_reduction.is_finite() {
                format!("{:.0}", cmp.clique_reduction)
            } else {
                "inf".to_owned()
            };
            row.push(clique);
        }
        rows.push(row);
        eprintln!("done: d={d}");
    }
    let headers = [
        "d",
        "AFS p=5e-3",
        "Clique p=5e-3",
        "AFS p=1e-3",
        "Clique p=1e-3",
        "AFS p=5e-4",
        "Clique p=5e-4",
    ];
    print_table(&headers, &rows);
    println!("\n({cycles} cycles per point; Clique=inf means no complex decode was observed)");
}
