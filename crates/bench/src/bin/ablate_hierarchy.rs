//! Ablation: decoder-hierarchy tiers (paper Sec. 8.1, future work 2).
//!
//! Compares the exact MWPM matcher against the union-find decoder as
//! the heavyweight tier behind Clique: logical error rate and software
//! decode throughput on identical windows. The expected shape: UF is
//! markedly faster with a modest accuracy cost — the classic
//! speed/accuracy rung between Clique and blossom matching.

use std::time::Instant;

use btwc_bench::{print_table, scaled};
use btwc_lattice::{StabilizerType, SurfaceCode};
use btwc_mwpm::MwpmDecoder;
use btwc_noise::{SimRng, SparseFlips};
use btwc_sim::ErrorTracker;
use btwc_syndrome::{Correction, RoundHistory};
use btwc_uf::UnionFindDecoder;

enum Tier<'a> {
    Mwpm(&'a MwpmDecoder),
    Uf(&'a UnionFindDecoder),
}

impl Tier<'_> {
    fn decode(&self, w: &RoundHistory) -> Correction {
        match self {
            Tier::Mwpm(d) => d.decode_window(w),
            Tier::Uf(d) => d.decode_window(w),
        }
    }
}

fn measure(d: u16, p: f64, shots: u64, tier_is_uf: bool, seed: u64) -> (f64, f64) {
    let ty = StabilizerType::X;
    let code = SurfaceCode::new(d);
    let mwpm = MwpmDecoder::new(&code, ty);
    let uf = UnionFindDecoder::new(&code, ty);
    let tier = if tier_is_uf { Tier::Uf(&uf) } else { Tier::Mwpm(&mwpm) };
    let mut tracker = ErrorTracker::new(&code, ty);
    let n_anc = code.num_ancillas(ty);
    let n_data = code.num_data_qubits();
    let mut rng = SimRng::from_seed(seed);
    let rounds = usize::from(d);
    let mut window = RoundHistory::new(n_anc, rounds + 1);
    let mut round = btwc_syndrome::PackedBits::new(n_anc);
    let mut fails = 0u64;
    let mut decode_time = std::time::Duration::ZERO;
    for _ in 0..shots {
        tracker.reset();
        window.reset();
        for _ in 0..rounds {
            for q in SparseFlips::new(&mut rng, n_data, p) {
                tracker.flip(q);
            }
            round.copy_from(tracker.syndrome());
            for a in SparseFlips::new(&mut rng, n_anc, p) {
                round.toggle(a);
            }
            window.push_packed(&round);
        }
        window.push_packed(tracker.syndrome());
        let t0 = Instant::now();
        let c = tier.decode(&window);
        decode_time += t0.elapsed();
        tracker.apply(c.qubits());
        fails += u64::from(code.is_logical_error(ty, tracker.errors()));
    }
    let ler = fails as f64 / shots as f64;
    let us_per_decode = decode_time.as_secs_f64() * 1e6 / shots as f64;
    (ler, us_per_decode)
}

fn main() {
    println!("# Ablation — heavyweight tier: exact MWPM vs union-find\n");
    let shots = scaled(8_000);
    let mut rows = Vec::new();
    for (d, p) in [(5u16, 8e-3), (7, 8e-3), (9, 8e-3), (11, 1.2e-2)] {
        let (mwpm_ler, mwpm_us) = measure(d, p, shots, false, 0xAB1);
        let (uf_ler, uf_us) = measure(d, p, shots, true, 0xAB1);
        rows.push(vec![
            d.to_string(),
            format!("{p:.1e}"),
            format!("{mwpm_ler:.2e}"),
            format!("{uf_ler:.2e}"),
            format!("{mwpm_us:.1}"),
            format!("{uf_us:.1}"),
            format!("{:.1}x", mwpm_us / uf_us.max(1e-9)),
        ]);
        eprintln!("done: d={d}");
    }
    print_table(&["d", "p", "MWPM LER", "UF LER", "MWPM us/dec", "UF us/dec", "UF speedup"], &rows);
    println!("\n({shots} shots per point; decode time is the off-chip window decode only)");
}
